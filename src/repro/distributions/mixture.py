"""Gaussian mixture distributions with EM fitting and AIC/BIC selection.

Section 4.3 of the paper uses Gaussian mixtures as the "more flexible"
parametric family for compressing sample-based (particle) tuple-level
distributions, e.g. when an object has just moved and its particle
cloud is spread over two locations.  The number of mixture components
is chosen with standard model-selection criteria (AIC / BIC).

Section 5.1 fits Gaussian mixtures to characteristic functions to
approximate the result distribution of a SUM over a window of tuples.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .base import (
    DistributionError,
    ScalarDistribution,
    as_rng,
    normalize_weights,
)
from .gaussian import Gaussian

__all__ = ["GaussianMixture", "fit_gmm_em", "select_components"]

_SQRT_2PI = math.sqrt(2.0 * math.pi)


class GaussianMixture(ScalarDistribution):
    """A finite mixture of one-dimensional Gaussians.

    Parameters
    ----------
    weights:
        Mixing proportions; normalised to sum to one.
    means:
        Component means.
    sigmas:
        Component standard deviations (all strictly positive).
    """

    __slots__ = ("weights", "means", "sigmas")

    def __init__(
        self,
        weights: Sequence[float],
        means: Sequence[float],
        sigmas: Sequence[float],
    ):
        weights_arr = normalize_weights(weights)
        means_arr = np.asarray(means, dtype=float)
        sigmas_arr = np.asarray(sigmas, dtype=float)
        if not (weights_arr.shape == means_arr.shape == sigmas_arr.shape):
            raise DistributionError("weights, means and sigmas must have the same length")
        if weights_arr.size == 0:
            raise DistributionError("a mixture needs at least one component")
        if np.any(sigmas_arr <= 0.0) or not np.all(np.isfinite(sigmas_arr)):
            raise DistributionError("all component sigmas must be positive and finite")
        if not np.all(np.isfinite(means_arr)):
            raise DistributionError("all component means must be finite")
        self.weights = weights_arr
        self.means = means_arr
        self.sigmas = sigmas_arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_components(cls, components: Iterable[Tuple[float, Gaussian]]) -> GaussianMixture:
        """Build a mixture from ``(weight, Gaussian)`` pairs."""
        comps = list(components)
        if not comps:
            raise DistributionError("a mixture needs at least one component")
        return cls(
            [w for w, _ in comps],
            [g.mu for _, g in comps],
            [g.sigma for _, g in comps],
        )

    @classmethod
    def single(cls, gaussian: Gaussian) -> GaussianMixture:
        """Wrap a single Gaussian as a one-component mixture."""
        return cls([1.0], [gaussian.mu], [gaussian.sigma])

    @property
    def n_components(self) -> int:
        return int(self.weights.size)

    def components(self) -> List[Tuple[float, Gaussian]]:
        """Return the mixture as a list of ``(weight, Gaussian)`` pairs."""
        return [
            (float(w), Gaussian(float(m), float(s)))
            for w, m, s in zip(self.weights, self.means, self.sigmas)
        ]

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        xs = np.atleast_1d(x)[..., None]
        z = (xs - self.means) / self.sigmas
        comp = np.exp(-0.5 * z * z) / (self.sigmas * _SQRT_2PI)
        out = comp @ self.weights
        return float(out[0]) if x.ndim == 0 else out

    def cdf(self, x):
        from scipy.special import erf

        x = np.asarray(x, dtype=float)
        xs = np.atleast_1d(x)[..., None]
        comp = 0.5 * (1.0 + erf((xs - self.means) / (self.sigmas * math.sqrt(2.0))))
        out = comp @ self.weights
        return float(out[0]) if x.ndim == 0 else out

    def mean(self) -> float:
        return float(np.dot(self.weights, self.means))

    def variance(self) -> float:
        mu = self.mean()
        second_moment = np.dot(self.weights, self.sigmas ** 2 + self.means ** 2)
        return float(second_moment - mu ** 2)

    def sample(self, size: int = 1, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        choices = rng.choice(self.n_components, size=size, p=self.weights)
        return rng.normal(self.means[choices], self.sigmas[choices])

    def support(self) -> Tuple[float, float]:
        lo = float(np.min(self.means - 12.0 * self.sigmas))
        hi = float(np.max(self.means + 12.0 * self.sigmas))
        return (lo, hi)

    def characteristic_function(self, t):
        t = np.asarray(t, dtype=float)
        ts = np.atleast_1d(t)[..., None]
        comp = np.exp(1j * self.means * ts - 0.5 * (self.sigmas ** 2) * ts * ts)
        out = comp @ self.weights.astype(complex)
        return complex(out[0]) if t.ndim == 0 else out

    # ------------------------------------------------------------------
    # Algebra and model quality
    # ------------------------------------------------------------------
    def shift(self, offset: float) -> GaussianMixture:
        """Return the distribution of ``X + offset``."""
        return GaussianMixture(self.weights, self.means + offset, self.sigmas)

    def scale(self, factor: float) -> GaussianMixture:
        """Return the distribution of ``factor * X`` (factor != 0)."""
        if factor == 0.0:
            raise DistributionError("scaling a mixture by zero collapses it to a point mass")
        return GaussianMixture(self.weights, self.means * factor, self.sigmas * abs(factor))

    def convolve_gaussian(self, other: Gaussian) -> GaussianMixture:
        """Return the distribution of the sum with an independent Gaussian."""
        sigmas = np.sqrt(self.sigmas ** 2 + other.sigma ** 2)
        return GaussianMixture(self.weights, self.means + other.mu, sigmas)

    def convolve(self, other: GaussianMixture) -> GaussianMixture:
        """Return the mixture of the sum with an independent mixture.

        The result has ``n * m`` components; callers aggregating long
        windows should periodically re-compress (e.g. via EM refit) to
        keep the component count bounded.
        """
        if isinstance(other, Gaussian):
            return self.convolve_gaussian(other)
        if not isinstance(other, GaussianMixture):
            raise TypeError("convolve expects a GaussianMixture or Gaussian")
        weights = np.outer(self.weights, other.weights).ravel()
        means = np.add.outer(self.means, other.means).ravel()
        variances = np.add.outer(self.sigmas ** 2, other.sigmas ** 2).ravel()
        return GaussianMixture(weights, means, np.sqrt(variances))

    def log_likelihood(self, data: Sequence[float], weights: Sequence[float] | None = None) -> float:
        """Return the (optionally weighted) log-likelihood of ``data``."""
        data = np.asarray(data, dtype=float)
        dens = np.maximum(self.pdf(data), 1e-300)
        logs = np.log(dens)
        if weights is None:
            return float(np.sum(logs))
        w = np.asarray(weights, dtype=float)
        if w.shape != data.shape:
            raise ValueError("weights must match data shape")
        return float(np.sum(w * logs))

    def n_parameters(self) -> int:
        """Return the number of free parameters (for AIC/BIC)."""
        return 3 * self.n_components - 1

    def aic(self, data: Sequence[float], weights: Sequence[float] | None = None) -> float:
        """Akaike Information Criterion on ``data`` (lower is better)."""
        n_eff = _effective_sample_size(data, weights)
        ll = self.log_likelihood(data, weights)
        if weights is not None:
            ll *= n_eff / float(np.sum(np.asarray(weights, dtype=float)))
        return 2.0 * self.n_parameters() - 2.0 * ll

    def bic(self, data: Sequence[float], weights: Sequence[float] | None = None) -> float:
        """Bayesian Information Criterion on ``data`` (lower is better)."""
        n_eff = _effective_sample_size(data, weights)
        ll = self.log_likelihood(data, weights)
        if weights is not None:
            ll *= n_eff / float(np.sum(np.asarray(weights, dtype=float)))
        return self.n_parameters() * math.log(max(n_eff, 2.0)) - 2.0 * ll

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"GaussianMixture(k={self.n_components}, mean={self.mean():.4g})"


def _effective_sample_size(data: Sequence[float], weights: Sequence[float] | None) -> float:
    data = np.asarray(data, dtype=float)
    if weights is None:
        return float(data.size)
    w = np.asarray(weights, dtype=float)
    total = float(np.sum(w))
    if total <= 0:
        raise DistributionError("weights must sum to a positive value")
    return float(total ** 2 / np.sum(w ** 2))


def fit_gmm_em(
    data: Sequence[float],
    n_components: int,
    weights: Sequence[float] | None = None,
    max_iter: int = 200,
    tol: float = 1e-7,
    rng: np.random.Generator | int | None = None,
    min_sigma: float = 1e-6,
) -> GaussianMixture:
    """Fit a :class:`GaussianMixture` to (optionally weighted) samples by EM.

    Weighted data corresponds to the particle representation of a
    tuple-level distribution: ``{(x_i, w_i)}``.  Minimising
    ``KL(p_hat || q)`` over the mixture family is equivalent to
    maximising the weighted log-likelihood, which EM does.

    Parameters
    ----------
    data:
        Sample values.
    n_components:
        Number of mixture components (``>= 1``).
    weights:
        Optional non-negative sample weights; default is uniform.
    max_iter, tol:
        EM stopping criteria (iterations / relative log-likelihood change).
    rng:
        Random generator or seed for the k-means++-style initialisation.
    min_sigma:
        Lower bound on component standard deviations to avoid collapse.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise DistributionError("EM requires a non-empty one-dimensional sample")
    if n_components < 1:
        raise DistributionError("n_components must be at least 1")
    if weights is None:
        w = np.full(data.size, 1.0 / data.size)
    else:
        w = normalize_weights(weights)
        if w.shape != data.shape:
            raise DistributionError("weights must match data shape")

    if n_components == 1:
        mu = float(np.dot(w, data))
        var = float(np.dot(w, (data - mu) ** 2))
        return GaussianMixture([1.0], [mu], [max(math.sqrt(var), min_sigma)])

    rng = as_rng(rng)
    # Initialise means by weighted quantiles so the components spread over
    # the data; initial sigma is the overall spread.
    order = np.argsort(data)
    cum = np.cumsum(w[order])
    targets = (np.arange(n_components) + 0.5) / n_components
    idx = np.searchsorted(cum, targets)
    idx = np.clip(idx, 0, data.size - 1)
    means = data[order][idx].astype(float)
    means += rng.normal(0.0, 1e-9 + 1e-6 * (np.std(data) + 1.0), size=n_components)
    overall_mu = float(np.dot(w, data))
    overall_sigma = math.sqrt(float(np.dot(w, (data - overall_mu) ** 2)))
    sigmas = np.full(n_components, max(overall_sigma, min_sigma))
    mix = np.full(n_components, 1.0 / n_components)

    prev_ll = -np.inf
    for _ in range(max_iter):
        # E step: responsibilities.
        z = (data[:, None] - means) / sigmas
        log_comp = -0.5 * z * z - np.log(sigmas * _SQRT_2PI) + np.log(np.maximum(mix, 1e-300))
        log_norm = np.logaddexp.reduce(log_comp, axis=1)
        resp = np.exp(log_comp - log_norm[:, None])
        ll = float(np.dot(w, log_norm))

        # M step with sample weights folded in.
        wr = resp * w[:, None]
        comp_mass = wr.sum(axis=0)
        comp_mass = np.maximum(comp_mass, 1e-300)
        mix = comp_mass / comp_mass.sum()
        means = (wr * data[:, None]).sum(axis=0) / comp_mass
        variances = (wr * (data[:, None] - means) ** 2).sum(axis=0) / comp_mass
        sigmas = np.sqrt(np.maximum(variances, min_sigma ** 2))

        if abs(ll - prev_ll) <= tol * (1.0 + abs(ll)):
            break
        prev_ll = ll

    return GaussianMixture(mix, means, sigmas)


def select_components(
    data: Sequence[float],
    weights: Sequence[float] | None = None,
    max_components: int = 4,
    criterion: str = "bic",
    rng: np.random.Generator | int | None = None,
) -> GaussianMixture:
    """Fit mixtures with 1..``max_components`` components and pick the best.

    The selection criterion is AIC or BIC as described in Section 4.3:
    both "attempt to choose a number of components that explain the data
    well while penalizing models that require many mixture components".
    """
    criterion = criterion.lower()
    if criterion not in ("aic", "bic"):
        raise ValueError(f"criterion must be 'aic' or 'bic', got {criterion!r}")
    if max_components < 1:
        raise ValueError("max_components must be at least 1")
    best: GaussianMixture | None = None
    best_score = np.inf
    for k in range(1, max_components + 1):
        candidate = fit_gmm_em(data, k, weights=weights, rng=rng)
        score = candidate.bic(data, weights) if criterion == "bic" else candidate.aic(data, weights)
        if score < best_score - 1e-12:
            best = candidate
            best_score = score
    assert best is not None  # max_components >= 1 guarantees at least one fit
    return best
