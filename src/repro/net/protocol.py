"""Message kinds and codecs of the repro.net wire protocol.

The protocol has two halves sharing one frame format
(:mod:`repro.net.framing`):

**Query service** (client ↔ :class:`~repro.net.server.StreamServer`) —
request/response verbs plus server-pushed subscription results:

====================  =============================================  =======================
request               header fields                                  reply
====================  =============================================  =======================
``HELLO``             ``client``                                     ``OK`` (server info)
``DECLARE``           ``name, values, uncertain, family, rate_hint`` ``OK``
``REGISTER``          ``name, cql``                                  ``OK`` (``sharded``)
``DROP`` / ``PAUSE``
/ ``RESUME``          ``name``                                       ``OK``
``INGEST``            ``source, seq, count`` + batch payload         ``ACK`` (``seq, count``)
``FLUSH``             —                                              ``OK``
``SUBSCRIBE``         ``query, resume`` (optional seq)               ``OK`` then ``RESULT``*
``STATS``             ``query`` (optional)                           ``OK`` (``stats`` rows)
``EXPLAIN``           ``query`` (optional)                           ``OK`` (``text``)
``CHECKPOINT``        ``dir, mode`` (optional)                       ``OK`` (``checkpoint``)
``METRICS``           ``query`` (optional)                           ``OK`` (``metrics``)
``TRACE``             ``limit, clear`` (optional)                    ``OK`` (``spans``)
``HEALTH``            —                                              ``OK`` (``health``)
``BYE``               —                                              ``OK``, then close
====================  =============================================  =======================

When the server was constructed with ``auth_token=...``, ``HELLO`` must
carry a matching ``token`` field and must precede every other verb on
the connection (``BYE`` excepted); a mismatch is answered with an
``ERROR`` frame of code ``AuthError`` and the connection is closed.

``RESULT`` frames carry ``query, seq, count, dropped`` plus an encoded
tuple batch; ``ERROR`` frames carry ``code`` (the server-side exception
class name) and ``message``.  Ingest is pipelined: a client may keep up
to its ack window of ``INGEST`` frames in flight before reading the
matching ``ACK`` frames (which arrive in send order).

**Shard transport** (coordinator ↔ :class:`~repro.net.shard.ShardServer`)
— the sharded runtime's worker protocol
(:mod:`repro.runtime.worker`) mapped 1:1 onto frames, so a shard
reached over TCP speaks exactly the message tuples a forked shard
exchanges over its queue pair.  :func:`encode_worker_message` /
:func:`decode_worker_message` are that mapping.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from .errors import ProtocolError
from .framing import encode_frame

__all__ = [
    "HELLO",
    "DECLARE",
    "REGISTER",
    "DROP",
    "PAUSE",
    "RESUME",
    "INGEST",
    "FLUSH",
    "SUBSCRIBE",
    "STATS",
    "EXPLAIN",
    "BYE",
    "CHECKPOINT",
    "METRICS",
    "TRACE",
    "HEALTH",
    "OK",
    "ERROR",
    "ACK",
    "RESULT",
    "END",
    "SHARD_ATTACH",
    "parse_address",
    "kind_name",
    "error_frame",
    "encode_worker_message",
    "decode_worker_message",
]

# Client → server requests.
HELLO = 0x01
DECLARE = 0x02
REGISTER = 0x03
DROP = 0x04
PAUSE = 0x05
RESUME = 0x06
INGEST = 0x07
FLUSH = 0x08
SUBSCRIBE = 0x09
STATS = 0x0A
EXPLAIN = 0x0B
BYE = 0x0C
CHECKPOINT = 0x0D
METRICS = 0x0E
TRACE = 0x0F
HEALTH = 0x10

# Server → client replies / pushes.
OK = 0x40
ERROR = 0x41
ACK = 0x42
RESULT = 0x43
END = 0x44

# Shard transport: the coordinator announces which shard slot the
# remote runner fills; everything after that is worker-protocol tuples.
SHARD_ATTACH = 0x60
_SHARD_CHUNK = 0x61
_SHARD_FLUSH = 0x62
_SHARD_STATS = 0x63
_SHARD_STOP = 0x64
_SHARD_SNAPSHOT = 0x65
_SHARD_RESTORE = 0x66
_SHARD_RESULTS = 0x71
_SHARD_FLUSHED = 0x72
_SHARD_STATS_REPLY = 0x73
_SHARD_ERROR = 0x74
_SHARD_SNAPSHOT_REPLY = 0x75
_SHARD_RESTORED = 0x76

_KIND_NAMES = {
    value: name
    for name, value in globals().items()
    if name.isupper() and isinstance(value, int)
}
_KIND_NAMES.update(
    {
        _SHARD_CHUNK: "SHARD_CHUNK",
        _SHARD_FLUSH: "SHARD_FLUSH",
        _SHARD_STATS: "SHARD_STATS",
        _SHARD_STOP: "SHARD_STOP",
        _SHARD_SNAPSHOT: "SHARD_SNAPSHOT",
        _SHARD_RESTORE: "SHARD_RESTORE",
        _SHARD_RESULTS: "SHARD_RESULTS",
        _SHARD_FLUSHED: "SHARD_FLUSHED",
        _SHARD_STATS_REPLY: "SHARD_STATS_REPLY",
        _SHARD_ERROR: "SHARD_ERROR",
        _SHARD_SNAPSHOT_REPLY: "SHARD_SNAPSHOT_REPLY",
        _SHARD_RESTORED: "SHARD_RESTORED",
    }
)


def parse_address(address) -> Tuple[str, int]:
    """Accept ``"host:port"`` (IPv6 in brackets) or a ``(host, port)`` pair."""
    if isinstance(address, tuple) and len(address) == 2:
        return str(address[0]), int(address[1])
    if isinstance(address, str):
        host, sep, port = address.rpartition(":")
        if sep and port.isdigit():
            return host.strip("[]"), int(port)
    raise ProtocolError(
        f"cannot parse address {address!r}; use 'host:port' or a (host, port) pair"
    )


def kind_name(kind: int) -> str:
    """Human-readable name of a frame kind (for errors and logs)."""
    return _KIND_NAMES.get(kind, f"UNKNOWN(0x{kind:02x})")


def error_frame(exc: BaseException) -> bytes:
    """Encode an exception as an ``ERROR`` frame (class name + message)."""
    return encode_frame(ERROR, {"code": type(exc).__name__, "message": str(exc)})


# ----------------------------------------------------------------------
# Shard-transport message codec
# ----------------------------------------------------------------------
def encode_worker_message(message: Tuple) -> bytes:
    """Encode one worker-protocol message tuple as a frame.

    The tuple shapes are those documented in
    :mod:`repro.runtime.worker`; batch payloads stay opaque bytes (they
    are already wire-encoded), small fields ride in the header.
    """
    kind = message[0]
    if kind == "chunk":
        _, source, chunk_id, payload = message
        return encode_frame(_SHARD_CHUNK, {"source": source, "chunk": chunk_id}, payload)
    if kind == "flush":
        return encode_frame(_SHARD_FLUSH, {"token": message[1]})
    if kind == "stats":
        if len(message) == 1:  # the request; the reply is ("stats", shard, rows)
            return encode_frame(_SHARD_STATS)
        _, shard, rows = message
        return encode_frame(_SHARD_STATS_REPLY, {"shard": shard, "rows": rows})
    if kind == "stop":
        return encode_frame(_SHARD_STOP)
    if kind == "snapshot":
        if len(message) == 2:  # the request; the reply carries the payload
            return encode_frame(_SHARD_SNAPSHOT, {"token": message[1]})
        _, shard, token, payload = message
        return encode_frame(
            _SHARD_SNAPSHOT_REPLY, {"shard": shard, "token": token}, payload
        )
    if kind == "restore":
        _, token, payload = message
        return encode_frame(_SHARD_RESTORE, {"token": token}, payload)
    if kind == "restored":
        _, shard, token = message
        return encode_frame(_SHARD_RESTORED, {"shard": shard, "token": token})
    if kind == "results":
        # 5-tuple (no spans) and 6-tuple (trailing span list) are both
        # valid; spans ride in the header only when a sampled trace
        # produced some, so unsampled traffic pays nothing on the wire.
        shard, chunk_id, payload, watermark = message[1:5]
        header = {"shard": shard, "chunk": chunk_id, "watermark": _json_float(watermark)}
        if len(message) > 5 and message[5]:
            header["spans"] = list(message[5])
        return encode_frame(_SHARD_RESULTS, header, payload)
    if kind == "flushed":
        _, shard, token, payload = message
        return encode_frame(_SHARD_FLUSHED, {"shard": shard, "token": token}, payload)
    if kind == "error":
        _, shard, trace = message
        return encode_frame(_SHARD_ERROR, {"shard": shard, "traceback": trace})
    raise ProtocolError(f"cannot encode worker message kind {kind!r}")


def decode_worker_message(kind: int, header: Dict[str, Any], payload: bytes) -> Tuple:
    """Decode a shard-transport frame back into a worker message tuple."""
    if kind == _SHARD_CHUNK:
        return ("chunk", header["source"], header["chunk"], payload)
    if kind == _SHARD_FLUSH:
        return ("flush", header["token"])
    if kind == _SHARD_STATS:
        return ("stats",)
    if kind == _SHARD_STOP:
        return ("stop",)
    if kind == _SHARD_SNAPSHOT:
        return ("snapshot", header["token"])
    if kind == _SHARD_RESTORE:
        return ("restore", header["token"], payload)
    if kind == _SHARD_SNAPSHOT_REPLY:
        return ("snapshot", header["shard"], header["token"], payload)
    if kind == _SHARD_RESTORED:
        return ("restored", header["shard"], header["token"])
    if kind == _SHARD_RESULTS:
        return (
            "results",
            header["shard"],
            header["chunk"],
            payload,
            _parse_float(header["watermark"]),
            header.get("spans") or [],
        )
    if kind == _SHARD_FLUSHED:
        return ("flushed", header["shard"], header["token"], payload)
    if kind == _SHARD_STATS_REPLY:
        return ("stats", header["shard"], [tuple(row) for row in header["rows"]])
    if kind == _SHARD_ERROR:
        return ("error", header["shard"], header["traceback"])
    raise ProtocolError(f"unexpected frame kind {kind_name(kind)} on a shard transport")


def _json_float(value: float):
    """JSON has no ±inf/NaN literals; watermarks start at -inf."""
    if value != value:
        return "nan"
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return value


def _parse_float(value) -> float:
    return float(value)  # float() parses the "inf"/"-inf"/"nan" strings too
