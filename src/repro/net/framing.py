"""Length-prefixed binary framing shared by every repro.net conversation.

One frame is::

    magic   2 bytes   b"RN"
    version 1 byte    protocol version (currently 1)
    kind    1 byte    message kind (see :mod:`repro.net.protocol`)
    hlen    4 bytes   little-endian header length in bytes
    plen    4 bytes   little-endian payload length in bytes
    header  hlen bytes   UTF-8 JSON object (control fields)
    payload plen bytes   opaque bytes (tuple batches via
                         :func:`repro.streams.serialization.encode_batch_wire`)

Control data rides in the JSON header — small, debuggable, and
schema-free — while bulk tuple data rides in the binary payload using
the columnar/row batch codec the sharded runtime already speaks, so a
tuple crossing a machine boundary costs the same bytes whether it goes
to a forked worker or over TCP.

The module gives both blocking-socket and asyncio readers over the same
:func:`encode_frame`; limits (`MAX_HEADER`, ``max_payload``) are
enforced *before* allocation so a corrupt or hostile length field
cannot balloon memory.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from .errors import ConnectionClosed, ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_HEADER",
    "DEFAULT_MAX_PAYLOAD",
    "encode_frame",
    "parse_frame",
    "FrameReader",
    "BufferedFrameSocket",
    "read_frame_async",
    "recv_frame",
    "send_frame",
]

PROTOCOL_VERSION = 1

_MAGIC = b"RN"
_PRELUDE = struct.Struct("<2sBBII")

#: Hard cap on the JSON header — control data is always small.
MAX_HEADER = 1 << 20
#: Default cap on a frame payload (one encoded tuple batch).
DEFAULT_MAX_PAYLOAD = 64 << 20

Frame = Tuple[int, Dict[str, Any], bytes]


def encode_frame(kind: int, header: Optional[Dict[str, Any]] = None, payload: bytes = b"") -> bytes:
    """Encode one frame; ``header`` is JSON-encoded, ``payload`` raw bytes."""
    raw_header = b"" if not header else json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(raw_header) > MAX_HEADER:
        raise ProtocolError(f"frame header of {len(raw_header)} bytes exceeds {MAX_HEADER}")
    return (
        _PRELUDE.pack(_MAGIC, PROTOCOL_VERSION, kind, len(raw_header), len(payload))
        + raw_header
        + payload
    )


def parse_frame(buffer, max_payload: int = DEFAULT_MAX_PAYLOAD) -> Frame:
    """Parse one complete frame from an in-memory buffer, copy-free.

    ``buffer`` is bytes or a memoryview holding *exactly* one frame
    (the shared-memory shard transport stores whole frames as ring
    records).  The payload is returned as a zero-copy slice of
    ``buffer`` — for a memoryview input it aliases the caller's memory
    and follows its lifetime rules.
    """
    view = buffer if isinstance(buffer, memoryview) else memoryview(buffer)
    if len(view) < _PRELUDE.size:
        raise ProtocolError(f"truncated frame: {len(view)} bytes")
    kind, hlen, plen = _parse_prelude(bytes(view[: _PRELUDE.size]), max_payload)
    total = _PRELUDE.size + hlen + plen
    if len(view) != total:
        raise ProtocolError(
            f"frame record declares {total} bytes but holds {len(view)}"
        )
    header = _decode_header(bytes(view[_PRELUDE.size : _PRELUDE.size + hlen]))
    return kind, header, view[_PRELUDE.size + hlen : total]


def _parse_prelude(prelude: bytes, max_payload: int) -> Tuple[int, int, int]:
    magic, version, kind, hlen, plen = _PRELUDE.unpack(prelude)
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {_MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version} (speak {PROTOCOL_VERSION})")
    if hlen > MAX_HEADER:
        raise ProtocolError(f"frame header of {hlen} bytes exceeds {MAX_HEADER}")
    if plen > max_payload:
        raise ProtocolError(f"frame payload of {plen} bytes exceeds the {max_payload} limit")
    return kind, hlen, plen


def _decode_header(raw: bytes) -> Dict[str, Any]:
    if not raw:
        return {}
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(f"frame header must be a JSON object, got {type(header).__name__}")
    return header


class FrameReader:
    """Incremental frame parser over an append-only byte buffer.

    Both the blocking and non-blocking socket paths feed received
    chunks to :meth:`feed` and pull complete frames with :meth:`next_frame`;
    partial frames simply stay buffered until more bytes arrive.
    """

    def __init__(self, max_payload: int = DEFAULT_MAX_PAYLOAD):
        self._buffer = bytearray()
        self._max_payload = max_payload

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def next_frame(self) -> Optional[Frame]:
        """Return one complete frame, or ``None`` if more bytes are needed."""
        if len(self._buffer) < _PRELUDE.size:
            return None
        kind, hlen, plen = _parse_prelude(bytes(self._buffer[: _PRELUDE.size]), self._max_payload)
        total = _PRELUDE.size + hlen + plen
        if len(self._buffer) < total:
            return None
        header = _decode_header(bytes(self._buffer[_PRELUDE.size : _PRELUDE.size + hlen]))
        payload = bytes(self._buffer[_PRELUDE.size + hlen : total])
        del self._buffer[:total]
        return kind, header, payload


# ----------------------------------------------------------------------
# Blocking-socket helpers (StreamClient, shard transport)
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, n: int, mid_frame: bool) -> bytes:
    """Read exactly ``n`` bytes or raise; EOF mid-frame is a protocol error."""
    chunks = bytearray()
    while len(chunks) < n:
        try:
            chunk = sock.recv(n - len(chunks))
        except socket.timeout as exc:
            raise TimeoutError("timed out waiting for a frame") from exc
        if not chunk:
            if chunks or mid_frame:
                raise ProtocolError("connection closed in the middle of a frame")
            raise ConnectionClosed("peer closed the connection")
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock: socket.socket, max_payload: int = DEFAULT_MAX_PAYLOAD) -> Frame:
    """Blocking read of one frame from a socket."""
    prelude = _recv_exact(sock, _PRELUDE.size, mid_frame=False)
    kind, hlen, plen = _parse_prelude(prelude, max_payload)
    header = _decode_header(_recv_exact(sock, hlen, mid_frame=True)) if hlen else {}
    payload = _recv_exact(sock, plen, mid_frame=True) if plen else b""
    return kind, header, payload


def send_frame(
    sock: socket.socket,
    kind: int,
    header: Optional[Dict[str, Any]] = None,
    payload: bytes = b"",
) -> None:
    """Blocking write of one frame to a socket."""
    sock.sendall(encode_frame(kind, header, payload))


class BufferedFrameSocket:
    """Frame reads over a blocking socket that survive per-call timeouts.

    A bare ``recv_frame`` discards partially-read bytes when a timeout
    fires mid-frame, permanently desynchronizing the stream for any
    caller that catches ``TimeoutError`` and retries.  This wrapper
    keeps partial bytes in a :class:`FrameReader` across calls, so a
    timed-out read resumes exactly where it stopped.
    """

    def __init__(self, sock: socket.socket, max_payload: int = DEFAULT_MAX_PAYLOAD):
        self._sock = sock
        self._reader = FrameReader(max_payload)

    def recv_frame(self, timeout: Optional[float] = None) -> Frame:
        """Read one frame; ``timeout`` bounds the whole call.

        Raises ``TimeoutError`` with any partial frame still buffered
        (safe to retry), ``ConnectionClosed`` on EOF between frames and
        ``ProtocolError`` on EOF inside one.
        """
        import time

        frame = self._reader.next_frame()
        if frame is not None:
            return frame
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is None:
                self._sock.settimeout(None)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("timed out waiting for a frame")
                self._sock.settimeout(remaining)
            try:
                data = self._sock.recv(1 << 16)
            except socket.timeout as exc:
                raise TimeoutError("timed out waiting for a frame") from exc
            if not data:
                if self._reader.buffered:
                    raise ProtocolError("connection closed in the middle of a frame")
                raise ConnectionClosed("peer closed the connection")
            self._reader.feed(data)
            frame = self._reader.next_frame()
            if frame is not None:
                return frame


# ----------------------------------------------------------------------
# asyncio helper (StreamServer, AsyncStreamClient)
# ----------------------------------------------------------------------
async def read_frame_async(reader, max_payload: int = DEFAULT_MAX_PAYLOAD) -> Frame:
    """Read one frame from an ``asyncio.StreamReader``."""
    import asyncio

    try:
        prelude = await reader.readexactly(_PRELUDE.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed("peer closed the connection") from exc
        raise ProtocolError("connection closed in the middle of a frame") from exc
    kind, hlen, plen = _parse_prelude(prelude, max_payload)
    try:
        header = _decode_header(await reader.readexactly(hlen)) if hlen else {}
        payload = await reader.readexactly(plen) if plen else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed in the middle of a frame") from exc
    return kind, header, payload
