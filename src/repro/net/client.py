"""Wire-protocol clients for :class:`~repro.net.server.StreamServer`.

Two clients cover the two calling styles:

* :class:`StreamClient` — a synchronous blocking-socket client for
  scripts, receptor ingest loops and tests.  Every verb is one method;
  :meth:`StreamClient.ingest` is *pipelined*: it keeps up to a window
  of encoded batches in flight before reading the matching acks, so a
  single connection sustains high tuple rates despite round-trip
  latency.
* :class:`AsyncStreamClient` — the same surface under asyncio, for
  callers that already live on an event loop.

Subscriptions use a **dedicated connection** per query
(:meth:`StreamClient.subscribe` / :meth:`AsyncStreamClient.subscribe`):
after the subscribe handshake the server owns the connection and pushes
``RESULT`` frames, which keeps both client implementations free of
frame demultiplexing.  A subscription object iterates result batches
(lists of :class:`~repro.streams.tuples.StreamTuple`) and raises
:class:`~repro.net.errors.SlowConsumerError` if the server applied its
disconnect policy.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro import obs
from repro.recovery.replay import ReplayGapError
from repro.streams.batch import TupleBatch
from repro.streams.serialization import decode_batch, encode_batch_wire
from repro.streams.tuples import StreamTuple

from . import protocol
from .errors import (
    AuthError,
    ConnectionClosed,
    NetError,
    ProtocolError,
    RemoteError,
    SlowConsumerError,
)
from .framing import (
    DEFAULT_MAX_PAYLOAD,
    BufferedFrameSocket,
    encode_frame,
    read_frame_async,
    send_frame,
)

__all__ = ["StreamClient", "Subscription", "AsyncStreamClient", "AsyncSubscription"]

#: Default tuples per INGEST frame.
DEFAULT_INGEST_BATCH = 512
#: Default unacked frames allowed in flight while ingesting.
DEFAULT_ACK_WINDOW = 32


def _ack_stride(window: int) -> int:
    """Frames between ack requests: sample the window, don't saturate it.

    With one ACK per frame, large batches make the ack stream itself
    the bottleneck — the server alternates between ingesting and
    writing acks, and the client between sending and reading them.
    Requesting an ack every ``window // 4`` frames keeps at least four
    flow-control samples inside every window (so backpressure still
    engages well before the window closes) while cutting the reply
    traffic by the same factor.
    """
    return max(1, window // 4)


def _raise_error(header: Dict[str, Any]) -> None:
    """Map a server ERROR frame to the most specific client exception."""
    code = header.get("code", "Error")
    message = header.get("message", "")
    if code == "SlowConsumerError":
        raise SlowConsumerError(message)
    if code == "AuthError":
        raise AuthError(message)
    if code == "ReplayGapError":
        raise ReplayGapError.from_message(message)
    raise RemoteError(code, message)


def _check_reply(kind: int, header: Dict[str, Any], expected: int) -> Dict[str, Any]:
    if kind == protocol.ERROR:
        _raise_error(header)
    if kind != expected:
        raise ProtocolError(
            f"expected a {protocol.kind_name(expected)} reply, "
            f"got {protocol.kind_name(kind)}"
        )
    return header


def _chunks(tuples: Iterable[StreamTuple], size: int) -> Iterator[List[StreamTuple]]:
    chunk: List[StreamTuple] = []
    for item in tuples:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class StreamClient:
    """Synchronous client for a running :class:`~repro.net.server.StreamServer`.

    Parameters
    ----------
    address:
        ``"host:port"`` or a ``(host, port)`` pair.
    timeout:
        Socket timeout for every blocking operation, in seconds.
    token:
        Shared secret for servers started with ``auth_token=...``; the
        client authenticates the connection with an eager ``HELLO``
        before any other verb.
    """

    def __init__(
        self,
        address,
        timeout: float = 30.0,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        token: Optional[str] = None,
    ):
        self._address = protocol.parse_address(address)
        self._timeout = timeout
        self._max_payload = max_payload
        self._token = token
        self._sock = socket.create_connection(self._address, timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Buffered reads: a timed-out read keeps its partial frame and
        # can be retried without desynchronizing the stream.
        self._frames = BufferedFrameSocket(self._sock, max_payload)
        self._closed = False
        #: Rendered analyzer diagnostics from the most recent register().
        self.last_register_warnings: list = []
        #: Send→ACK round-trip seconds of every ack-requesting frame in
        #: the most recent ingest() call (ingest→ACK latency samples).
        self.last_ingest_ack_latencies: List[float] = []
        if token is not None:
            self.hello()  # authenticate before any other verb

    def _hello_header(self, client: str) -> Dict[str, Any]:
        header: Dict[str, Any] = {"client": client}
        if self._token is not None:
            header["token"] = self._token
        return header

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        kind: int,
        header: Optional[Dict[str, Any]] = None,
        payload: bytes = b"",
        expected: int = protocol.OK,
    ) -> Tuple[Dict[str, Any], bytes]:
        send_frame(self._sock, kind, header, payload)
        reply_kind, reply_header, reply_payload = self._frames.recv_frame(self._timeout)
        return _check_reply(reply_kind, reply_header, expected), reply_payload

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def hello(self) -> Dict[str, Any]:
        """Server info: known streams and registered queries."""
        header, _ = self._request(protocol.HELLO, self._hello_header("repro.net sync"))
        return header

    def declare_stream(
        self,
        name: str,
        values: Optional[Iterable[str]] = None,
        uncertain=None,
        family: Optional[str] = None,
        rate_hint: Optional[float] = None,
    ) -> None:
        """Declare a named input stream (see ``QuerySession.create_stream``)."""
        self._request(
            protocol.DECLARE,
            {
                "name": name,
                "values": list(values) if values is not None else None,
                "uncertain": _jsonable_uncertain(uncertain),
                "family": family,
                "rate_hint": rate_hint,
            },
        )

    def register(self, name: str, cql: str, strict: bool = False) -> bool:
        """Register a CQL query; returns True when it runs sharded.

        ``strict=True`` asks the server to refuse queries with semantic
        errors (typo'd columns, broken windows, ...).  Any analyzer
        findings the server reports are kept in
        :attr:`last_register_warnings` after the call.
        """
        request = {"name": name, "cql": cql}
        if strict:
            request["strict"] = True
        header, _ = self._request(protocol.REGISTER, request)
        self.last_register_warnings = list(header.get("warnings", ()))
        return bool(header.get("sharded", False))

    def drop(self, name: str) -> None:
        self._request(protocol.DROP, {"name": name})

    def pause(self, name: str) -> None:
        self._request(protocol.PAUSE, {"name": name})

    def resume(self, name: str) -> None:
        self._request(protocol.RESUME, {"name": name})

    def ingest(
        self,
        source: str,
        tuples: Iterable[StreamTuple],
        batch_size: int = DEFAULT_INGEST_BATCH,
        window: int = DEFAULT_ACK_WINDOW,
        trace: Optional[int] = None,
    ) -> int:
        """Ship tuples into a named stream; returns the acked tuple count.

        Tuples are chunked into batches of ``batch_size``, encoded with
        the columnar wire codec, and pipelined: up to ``window`` frames
        ride unacknowledged before the sender blocks.  ACKs are
        *batched* — only every :func:`_ack_stride`-th frame (and always
        the last one) requests an acknowledgement, and each ACK's
        ``count`` covers every unacknowledged tuple before it — so
        large batches no longer stall on a reply per frame.  ACKs
        arrive strictly in send order, so a missing ack still pins the
        lost span.

        ``trace`` is an optional caller-chosen trace id the server
        stamps on every chunk of this call (minted server-side when
        omitted); the send→ACK round trip of each ack-requesting frame
        lands in :attr:`last_ingest_ack_latencies` either way.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        stride = _ack_stride(window)
        in_flight: deque = deque()  # (seq, covered frames, send instant)
        self.last_ingest_ack_latencies = []
        acked = 0
        seq = 0
        outstanding = 0  # frames sent and not yet covered by an ack
        uncovered = 0  # frames since the last ack-requesting frame
        try:
            chunks = _chunks(tuples, batch_size)
            chunk = next(chunks, None)
            while chunk is not None:
                upcoming = next(chunks, None)
                seq += 1
                want_ack = upcoming is None or seq % stride == 0
                ingest_header = {
                    "source": source,
                    "seq": seq,
                    "count": len(chunk),
                    "ack": want_ack,
                }
                if trace is not None:
                    ingest_header["trace"] = int(trace)
                send_frame(
                    self._sock,
                    protocol.INGEST,
                    ingest_header,
                    encode_batch_wire(TupleBatch(chunk)),
                )
                outstanding += 1
                uncovered += 1
                if want_ack:
                    in_flight.append((seq, uncovered, time.perf_counter()))
                    uncovered = 0
                while outstanding >= window and in_flight:
                    count, covered = self._read_ack(in_flight)
                    acked += count
                    outstanding -= covered
                chunk = upcoming
            while in_flight:
                count, covered = self._read_ack(in_flight)
                acked += count
                outstanding -= covered
        except RemoteError:
            # With batched acks, unacked frames get no reply at all —
            # counting replies cannot realign the connection.  Instead
            # raise a barrier: send HELLO and discard replies until its
            # answer (the only reply without a ``seq``) arrives, leaving
            # the connection request-aligned for callers that catch the
            # error and keep using it.
            self._resync()
            raise
        return acked

    def _read_ack(self, in_flight: deque) -> Tuple[int, int]:
        kind, header, _ = self._frames.recv_frame(self._timeout)
        header = _check_reply(kind, header, protocol.ACK)
        expected_seq, covered, sent_at = in_flight.popleft()
        latency = time.perf_counter() - sent_at
        if header.get("seq") != expected_seq:
            raise ProtocolError(
                f"ingest ack out of order: expected seq {expected_seq}, "
                f"got {header.get('seq')}"
            )
        self.last_ingest_ack_latencies.append(latency)
        obs.get_registry().histogram("repro_ingest_ack_latency_seconds").observe(latency)
        return int(header.get("count", 0)), covered

    def _resync(self) -> None:
        """Realign after a mid-pipeline error (see ``ingest``)."""
        try:
            send_frame(self._sock, protocol.HELLO, self._hello_header("repro.net sync"))
            while True:
                _, header, _ = self._frames.recv_frame(self._timeout)
                if "seq" not in header:
                    return  # the HELLO reply: everything before it drained
        except (NetError, OSError, TimeoutError):
            pass  # connection is actually gone; nothing to resync

    def flush(self) -> None:
        """Close out partial windows server-side (``QuerySession.flush``)."""
        self._request(protocol.FLUSH)

    def statistics(self, query: Optional[str] = None) -> Dict[str, Any]:
        """Per-box statistics rows plus server frame/tuple counters."""
        header, _ = self._request(protocol.STATS, {"query": query})
        return header

    def explain(self, query: Optional[str] = None) -> str:
        header, _ = self._request(protocol.EXPLAIN, {"query": query})
        return str(header.get("text", ""))

    def metrics(self, query: Optional[str] = None) -> Dict[str, Any]:
        """The server's metrics-registry snapshot (see :mod:`repro.obs`).

        Returns the ``METRICS`` reply header: ``"metrics"`` holds the
        registry snapshot; with ``query`` set, ``"observed"`` adds that
        query's latency/operator report
        (``QuerySession.observed_stats``).
        """
        header, _ = self._request(protocol.METRICS, {"query": query})
        return header

    def trace(self, limit: Optional[int] = None, keep: bool = False) -> Dict[str, Any]:
        """Drain the server's span buffer (flight-recorder export).

        Returns the ``TRACE`` reply header: ``"spans"`` is the list of
        span dicts (feed it to
        :func:`repro.obs.export_chrome_trace`), ``"sample"`` the
        server's sampling denominator.  ``keep=True`` peeks without
        draining; ``limit`` returns only the newest N spans.
        """
        header, _ = self._request(protocol.TRACE, {"limit": limit, "keep": keep})
        return header

    def health(self) -> Dict[str, Any]:
        """Evaluate and fetch the server's health-rule status.

        Each call records a history tick server-side, so a poller at
        ~1 Hz both feeds the time-series ring and reads the verdicts:
        ``"health"`` holds ``firing``/``pending`` name lists plus a
        per-rule description, ``"ticks"`` the ring's fill level.
        """
        header, _ = self._request(protocol.HEALTH)
        return header

    def checkpoint(self, directory: str, mode: str = "auto") -> int:
        """Write a durable server-side checkpoint; returns its id.

        ``directory`` is a path on the *server's* filesystem; ``mode``
        is ``"auto"``, ``"full"`` or ``"delta"`` (see
        ``QuerySession.checkpoint``).
        """
        header, _ = self._request(protocol.CHECKPOINT, {"dir": directory, "mode": mode})
        return int(header.get("checkpoint", 0))

    def subscribe(
        self,
        query: str,
        timeout: Optional[float] = None,
        resume_from: Optional[int] = None,
    ) -> Subscription:
        """Open a dedicated server-push connection for a query's results.

        ``resume_from`` is the last result seq this consumer has seen
        (``Subscription.last_seq`` of a previous subscription): the
        server first replays every result after it, then continues
        live.  Raises :class:`~repro.recovery.ReplayGapError` when the
        server's bounded replay log has already trimmed past that
        position.
        """
        return Subscription(
            self._address,
            query,
            timeout=self._timeout if timeout is None else timeout,
            max_payload=self._max_payload,
            token=self._token,
            resume_from=resume_from,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._request(protocol.BYE)
        except (OSError, ProtocolError, ConnectionClosed, RemoteError, TimeoutError):
            pass  # closing anyway
        finally:
            self._sock.close()

    def __enter__(self) -> StreamClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Subscription:
    """A server-push result stream for one query (dedicated connection).

    Iterating yields one list of :class:`StreamTuple` per ``RESULT``
    frame; iteration ends when the connection closes.  :attr:`dropped`
    tracks the cumulative results the server discarded for this
    subscriber under the drop-oldest policy.  :attr:`last_seq` is the
    query-level seq of the newest result received — hand it to
    ``subscribe(..., resume_from=last_seq)`` after a disconnect to
    resume without gaps or duplicates.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        query: str,
        timeout: float = 30.0,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        token: Optional[str] = None,
        resume_from: Optional[int] = None,
    ):
        self.query = query
        self.dropped = 0
        self.last_seq = 0
        self._max_payload = max_payload
        self._default_timeout = timeout
        self._sock = socket.create_connection(address, timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._frames = BufferedFrameSocket(self._sock, max_payload)
        self._closed = False
        if token is not None:
            send_frame(
                self._sock,
                protocol.HELLO,
                {"client": "repro.net sync", "token": token},
            )
            kind, header, _ = self._frames.recv_frame(timeout)
            _check_reply(kind, header, protocol.OK)
        subscribe_header: Dict[str, Any] = {"query": query}
        if resume_from is not None:
            subscribe_header["resume"] = int(resume_from)
        send_frame(self._sock, protocol.SUBSCRIBE, subscribe_header)
        kind, header, _ = self._frames.recv_frame(timeout)
        _check_reply(kind, header, protocol.OK)
        self.last_seq = int(header.get("seq", 0))

    def recv(self, timeout: Optional[float] = None) -> List[StreamTuple]:
        """Block for the next result batch; raises on close or slow-consumer."""
        if self._closed:
            raise ConnectionClosed("this subscription is closed")
        # The per-call timeout never sticks: the buffered reader sets it
        # per read, and a timed-out read keeps its partial frame.
        kind, header, payload = self._frames.recv_frame(
            self._default_timeout if timeout is None else timeout
        )
        if kind == protocol.END:
            self.last_seq = int(header.get("seq", self.last_seq))
            self.close()
            raise ConnectionClosed(f"query {self.query!r} was dropped on the server")
        if kind == protocol.ERROR:
            self.close()
            _raise_error(header)
        if kind != protocol.RESULT:
            raise ProtocolError(
                f"expected a RESULT frame, got {protocol.kind_name(kind)}"
            )
        self.dropped = int(header.get("dropped", 0))
        self.last_seq = int(header.get("seq", self.last_seq))
        return decode_batch(payload).to_tuples()

    def take(self, count: int, timeout: float = 30.0) -> List[StreamTuple]:
        """Collect result tuples until ``count`` arrived (or raise on timeout)."""
        collected: List[StreamTuple] = []
        while len(collected) < count:
            collected.extend(self.recv(timeout=timeout))
        return collected

    def __iter__(self) -> Iterator[List[StreamTuple]]:
        while True:
            try:
                yield self.recv()
            except ConnectionClosed:
                return

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> Subscription:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _jsonable_uncertain(uncertain):
    """Normalize the ``uncertain`` declaration for the JSON header."""
    if uncertain is None:
        return None
    if isinstance(uncertain, dict):
        return {
            name: (list(stat) if stat is not None else None)
            for name, stat in uncertain.items()
        }
    return list(uncertain)


# ----------------------------------------------------------------------
# asyncio client
# ----------------------------------------------------------------------
class AsyncStreamClient:
    """Asyncio client mirroring :class:`StreamClient` verb-for-verb.

    >>> client = await AsyncStreamClient.connect("127.0.0.1:9201")
    >>> await client.register("q1", "SELECT ...")
    >>> await client.ingest("rfid", tuples)
    >>> await client.close()
    """

    def __init__(
        self,
        reader,
        writer,
        address,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        token: Optional[str] = None,
    ):
        self._reader = reader
        self._writer = writer
        self._address = address
        self._max_payload = max_payload
        self._token = token
        self._closed = False
        #: Rendered analyzer diagnostics from the most recent register().
        self.last_register_warnings: list = []
        #: Send→ACK round-trip seconds from the most recent ingest().
        self.last_ingest_ack_latencies: List[float] = []

    @classmethod
    async def connect(
        cls,
        address,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        token: Optional[str] = None,
    ) -> AsyncStreamClient:
        import asyncio

        host, port = protocol.parse_address(address)
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, (host, port), max_payload, token=token)
        if token is not None:
            await client.hello()  # authenticate before any other verb
        return client

    def _hello_header(self) -> Dict[str, Any]:
        header: Dict[str, Any] = {"client": "repro.net async"}
        if self._token is not None:
            header["token"] = self._token
        return header

    async def _request(
        self,
        kind: int,
        header: Optional[Dict[str, Any]] = None,
        payload: bytes = b"",
        expected: int = protocol.OK,
    ) -> Tuple[Dict[str, Any], bytes]:
        self._writer.write(encode_frame(kind, header, payload))
        await self._writer.drain()
        reply_kind, reply_header, reply_payload = await read_frame_async(
            self._reader, self._max_payload
        )
        return _check_reply(reply_kind, reply_header, expected), reply_payload

    async def hello(self) -> Dict[str, Any]:
        header, _ = await self._request(protocol.HELLO, self._hello_header())
        return header

    async def declare_stream(
        self,
        name: str,
        values: Optional[Iterable[str]] = None,
        uncertain=None,
        family: Optional[str] = None,
        rate_hint: Optional[float] = None,
    ) -> None:
        await self._request(
            protocol.DECLARE,
            {
                "name": name,
                "values": list(values) if values is not None else None,
                "uncertain": _jsonable_uncertain(uncertain),
                "family": family,
                "rate_hint": rate_hint,
            },
        )

    async def register(self, name: str, cql: str, strict: bool = False) -> bool:
        request = {"name": name, "cql": cql}
        if strict:
            request["strict"] = True
        header, _ = await self._request(protocol.REGISTER, request)
        self.last_register_warnings = list(header.get("warnings", ()))
        return bool(header.get("sharded", False))

    async def drop(self, name: str) -> None:
        await self._request(protocol.DROP, {"name": name})

    async def pause(self, name: str) -> None:
        await self._request(protocol.PAUSE, {"name": name})

    async def resume(self, name: str) -> None:
        await self._request(protocol.RESUME, {"name": name})

    async def ingest(
        self,
        source: str,
        tuples: Iterable[StreamTuple],
        batch_size: int = DEFAULT_INGEST_BATCH,
        window: int = DEFAULT_ACK_WINDOW,
        trace: Optional[int] = None,
    ) -> int:
        """Pipelined ingest with batched acks (see :meth:`StreamClient.ingest`)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        stride = _ack_stride(window)
        in_flight: deque = deque()  # (seq, covered frames, send instant)
        self.last_ingest_ack_latencies = []
        acked = 0
        seq = 0
        outstanding = 0
        uncovered = 0
        try:
            chunks = _chunks(tuples, batch_size)
            chunk = next(chunks, None)
            while chunk is not None:
                upcoming = next(chunks, None)
                seq += 1
                want_ack = upcoming is None or seq % stride == 0
                ingest_header = {
                    "source": source,
                    "seq": seq,
                    "count": len(chunk),
                    "ack": want_ack,
                }
                if trace is not None:
                    ingest_header["trace"] = int(trace)
                self._writer.write(
                    encode_frame(
                        protocol.INGEST,
                        ingest_header,
                        encode_batch_wire(TupleBatch(chunk)),
                    )
                )
                await self._writer.drain()
                outstanding += 1
                uncovered += 1
                if want_ack:
                    in_flight.append((seq, uncovered, time.perf_counter()))
                    uncovered = 0
                while outstanding >= window and in_flight:
                    count, covered = await self._read_ack(in_flight)
                    acked += count
                    outstanding -= covered
                chunk = upcoming
            while in_flight:
                count, covered = await self._read_ack(in_flight)
                acked += count
                outstanding -= covered
        except RemoteError:
            # HELLO barrier resync (see StreamClient.ingest).
            await self._resync()
            raise
        return acked

    async def _read_ack(self, in_flight: deque) -> Tuple[int, int]:
        kind, header, _ = await read_frame_async(self._reader, self._max_payload)
        header = _check_reply(kind, header, protocol.ACK)
        expected_seq, covered, sent_at = in_flight.popleft()
        latency = time.perf_counter() - sent_at
        if header.get("seq") != expected_seq:
            raise ProtocolError(
                f"ingest ack out of order: expected seq {expected_seq}, "
                f"got {header.get('seq')}"
            )
        self.last_ingest_ack_latencies.append(latency)
        obs.get_registry().histogram("repro_ingest_ack_latency_seconds").observe(latency)
        return int(header.get("count", 0)), covered

    async def _resync(self) -> None:
        try:
            self._writer.write(encode_frame(protocol.HELLO, self._hello_header()))
            await self._writer.drain()
            while True:
                _, header, _ = await read_frame_async(self._reader, self._max_payload)
                if "seq" not in header:
                    return
        except (NetError, OSError):
            pass

    async def flush(self) -> None:
        await self._request(protocol.FLUSH)

    async def statistics(self, query: Optional[str] = None) -> Dict[str, Any]:
        header, _ = await self._request(protocol.STATS, {"query": query})
        return header

    async def explain(self, query: Optional[str] = None) -> str:
        header, _ = await self._request(protocol.EXPLAIN, {"query": query})
        return str(header.get("text", ""))

    async def metrics(self, query: Optional[str] = None) -> Dict[str, Any]:
        """The server's metrics snapshot (see :meth:`StreamClient.metrics`)."""
        header, _ = await self._request(protocol.METRICS, {"query": query})
        return header

    async def trace(
        self, limit: Optional[int] = None, keep: bool = False
    ) -> Dict[str, Any]:
        """Drain the server's span buffer (see :meth:`StreamClient.trace`)."""
        header, _ = await self._request(protocol.TRACE, {"limit": limit, "keep": keep})
        return header

    async def health(self) -> Dict[str, Any]:
        """The server's health status (see :meth:`StreamClient.health`)."""
        header, _ = await self._request(protocol.HEALTH)
        return header

    async def checkpoint(self, directory: str, mode: str = "auto") -> int:
        """Write a durable server-side checkpoint; returns its id."""
        header, _ = await self._request(
            protocol.CHECKPOINT, {"dir": directory, "mode": mode}
        )
        return int(header.get("checkpoint", 0))

    async def subscribe(
        self, query: str, resume_from: Optional[int] = None
    ) -> AsyncSubscription:
        subscription = AsyncSubscription(
            self._address,
            query,
            self._max_payload,
            token=self._token,
            resume_from=resume_from,
        )
        await subscription._open()
        return subscription

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            await self._request(protocol.BYE)
        except (OSError, ProtocolError, ConnectionClosed, RemoteError):
            pass
        self._writer.close()

    async def __aenter__(self) -> AsyncStreamClient:
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class AsyncSubscription:
    """Asyncio counterpart of :class:`Subscription` (``async for`` batches)."""

    def __init__(
        self,
        address,
        query: str,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        token: Optional[str] = None,
        resume_from: Optional[int] = None,
    ):
        self.query = query
        self.dropped = 0
        self.last_seq = 0
        self._address = address
        self._max_payload = max_payload
        self._token = token
        self._resume_from = resume_from
        self._reader = None
        self._writer = None
        self._closed = False

    async def _open(self) -> None:
        import asyncio

        host, port = self._address
        self._reader, self._writer = await asyncio.open_connection(host, port)
        if self._token is not None:
            self._writer.write(
                encode_frame(
                    protocol.HELLO,
                    {"client": "repro.net async", "token": self._token},
                )
            )
            await self._writer.drain()
            kind, header, _ = await read_frame_async(self._reader, self._max_payload)
            _check_reply(kind, header, protocol.OK)
        subscribe_header: Dict[str, Any] = {"query": self.query}
        if self._resume_from is not None:
            subscribe_header["resume"] = int(self._resume_from)
        self._writer.write(encode_frame(protocol.SUBSCRIBE, subscribe_header))
        await self._writer.drain()
        kind, header, _ = await read_frame_async(self._reader, self._max_payload)
        _check_reply(kind, header, protocol.OK)
        self.last_seq = int(header.get("seq", 0))

    async def recv(self) -> List[StreamTuple]:
        if self._closed:
            raise ConnectionClosed("this subscription is closed")
        kind, header, payload = await read_frame_async(self._reader, self._max_payload)
        if kind == protocol.END:
            self.last_seq = int(header.get("seq", self.last_seq))
            await self.close()
            raise ConnectionClosed(f"query {self.query!r} was dropped on the server")
        if kind == protocol.ERROR:
            await self.close()
            _raise_error(header)
        if kind != protocol.RESULT:
            raise ProtocolError(
                f"expected a RESULT frame, got {protocol.kind_name(kind)}"
            )
        self.dropped = int(header.get("dropped", 0))
        self.last_seq = int(header.get("seq", self.last_seq))
        return decode_batch(payload).to_tuples()

    def __aiter__(self) -> AsyncSubscription:
        return self

    async def __anext__(self) -> List[StreamTuple]:
        try:
            return await self.recv()
        except ConnectionClosed:
            raise StopAsyncIteration from None

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._writer is not None:
                self._writer.close()
