"""Errors raised by the network service layer.

The split mirrors where a failure originated:

* :class:`ProtocolError` — the *bytes* were wrong: bad magic, an
  unknown frame kind, an over-limit or truncated frame.  Raised by the
  framing/protocol codecs on both ends; a server answering a malformed
  request closes the connection after reporting it.
* :class:`RemoteError` — the peer executed the request and *it* failed
  (unknown query, CQL syntax error, service misuse).  The server ships
  the exception class name and message in an error frame; the client
  re-raises them as a :class:`RemoteError` so caller code can tell a
  remote registration failure from a local socket problem.
* :class:`ConnectionClosed` — the peer went away mid-conversation
  (EOF on a frame boundary is a clean close; inside a frame it is a
  :class:`ProtocolError`).
* :class:`SlowConsumerError` — a subscription was terminated by the
  server's slow-consumer policy; the client raises it from the
  subscription iterator so a lagging reader sees *why* its stream
  ended.
* :class:`AuthError` — the server requires a shared-secret token and
  the connection's ``HELLO`` carried a missing or wrong one; the server
  reports it and closes the connection.
"""

from __future__ import annotations

__all__ = [
    "NetError",
    "ProtocolError",
    "RemoteError",
    "ConnectionClosed",
    "SlowConsumerError",
    "AuthError",
]


class NetError(Exception):
    """Base class for every error of the network service layer."""


class ProtocolError(NetError):
    """The wire contents violated the framing or message protocol."""


class ConnectionClosed(NetError):
    """The peer closed the connection (cleanly, on a frame boundary)."""


class RemoteError(NetError):
    """A request reached the server and failed there.

    Attributes
    ----------
    code:
        The server-side exception class name (``"ServiceError"``,
        ``"CQLSyntaxError"``, ...), usable for dispatch without string
        matching on the message.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.remote_message = message


class SlowConsumerError(NetError):
    """The server dropped this subscriber for falling too far behind."""


class AuthError(NetError):
    """The server rejected this connection's authentication token."""
