"""Network service layer: the query stack over TCP.

The paper's receptor streams (RFID readers, radar sites) arrive from
*distributed* sources; this package puts the whole service surface on
the network so ingest, registration and result delivery no longer need
to share a process with the engine:

* :class:`StreamServer` — an asyncio TCP server wrapping one
  :class:`~repro.service.QuerySession`: declare streams, register CQL
  queries, ingest tuple batches, subscribe to per-query result pushes
  (bounded buffers, slow-consumer policy), fetch statistics/explain.
* :class:`StreamClient` / :class:`AsyncStreamClient` — wire-protocol
  clients; ingest is pipelined with windowed acks.
* :class:`ShardServer` — one shard of a
  :class:`~repro.runtime.ShardedEngine` served over the same framing,
  so a coordinator's shard can live on another machine
  (``ShardedEngine(remote_shards=[...])``).

Control data rides as JSON headers, tuple data as the columnar batch
codec of :mod:`repro.streams.serialization` — the same bytes a forked
worker receives, now routable across machines.
"""

from repro.recovery.replay import ReplayGapError

from .client import AsyncStreamClient, AsyncSubscription, StreamClient, Subscription
from .errors import (
    AuthError,
    ConnectionClosed,
    NetError,
    ProtocolError,
    RemoteError,
    SlowConsumerError,
)
from .framing import PROTOCOL_VERSION
from .server import ServerHandle, StreamServer, serve_in_thread
from .shard import ShardServer, spawn_shard_server

__all__ = [
    "StreamServer",
    "ServerHandle",
    "serve_in_thread",
    "StreamClient",
    "Subscription",
    "AsyncStreamClient",
    "AsyncSubscription",
    "ShardServer",
    "spawn_shard_server",
    "NetError",
    "ProtocolError",
    "RemoteError",
    "ConnectionClosed",
    "SlowConsumerError",
    "AuthError",
    "ReplayGapError",
    "PROTOCOL_VERSION",
]
