"""`ShardServer`: one shard of a sharded query served over TCP.

This is the multi-machine half of :class:`~repro.runtime.ShardedEngine`.
A shard server owns a :class:`~repro.runtime.worker.ShardRunner` — a
full stream engine compiled on the shard-local plan segment — and
speaks the exact worker protocol of :mod:`repro.runtime.worker`, with
frames (:func:`repro.net.protocol.encode_worker_message`) instead of a
forked queue pair as the transport.  A coordinator started with
``ShardedEngine(remote_shards=["host:port", ...])`` connects here, sends
a ``SHARD_ATTACH`` announcing which shard slot this runner fills, and
then streams chunk/flush/stats messages as it would to a local worker.

**Plan distribution.**  Logical plans carry closures (predicates,
derive functions, group keys) that do not serialize, so the plan
travels by *code*, not by wire: the shard host constructs the same
query — the same CQL text with the same UDFs, or the same builder
pipeline — and the server derives the shard-local segment with the
same partition-aware planner pass the coordinator uses
(:func:`repro.plan.sharding.split_for_sharding`).  Running the same
script on every machine (the standard same-binary deployment) satisfies
this by construction; :func:`spawn_shard_server` does it locally by
forking, which the tests and benchmarks use as a stand-in for a second
machine.

One coordinator is served at a time; each attach builds a fresh runner,
so a reconnecting coordinator starts from clean shard state (exactly
like a freshly forked worker).
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import traceback
from typing import Optional, Union

from repro.plan.builder import Stream
from repro.plan.nodes import LogicalPlan, PlanError
from repro.plan.planner import Planner
from repro.plan.sharding import split_for_sharding
from repro.runtime.worker import ShardRunner, plan_signature, serve_shard_messages

from . import protocol
from .errors import ConnectionClosed, ProtocolError
from .framing import DEFAULT_MAX_PAYLOAD, recv_frame, send_frame

__all__ = ["ShardServer", "spawn_shard_server"]

#: Accept-loop tick, so ``close()`` is noticed promptly.
_ACCEPT_TICK = 0.2


class ShardServer:
    """Serve the shard-local segment of one query over TCP (see module docs).

    Parameters
    ----------
    query:
        The *full* query — a :class:`~repro.plan.Stream`, a
        single-output :class:`~repro.plan.LogicalPlan`, or CQL text
        (requires ``sources``/``functions`` for schema and UDFs).  The
        server derives the shard-local segment itself, exactly as the
        coordinator does.
    host / port:
        Bind address; port ``0`` picks a free port (see
        :attr:`address`).
    mode / batch_size:
        Execution mode of the shard-local engine, as in
        ``Planner.compile``.
    optimize:
        Apply the planner rewrites before splitting; must match the
        coordinator's setting so both sides split the same plan.
    """

    def __init__(
        self,
        query: Union[Stream, LogicalPlan, str],
        host: str = "127.0.0.1",
        port: int = 0,
        mode: str = "auto",
        batch_size: Optional[int] = None,
        planner: Optional[Planner] = None,
        optimize: bool = True,
        sources=None,
        functions=None,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ):
        if isinstance(query, str):
            from repro.cql.lowering import lower_query

            plan = lower_query(query, sources=sources or {}, functions=functions or {})
        elif isinstance(query, Stream):
            plan = query.plan()
        elif isinstance(query, LogicalPlan):
            plan = query
            plan.validate()
        else:
            raise PlanError(
                f"ShardServer takes a Stream, LogicalPlan or CQL text, "
                f"got {type(query).__name__}"
            )
        planner = planner or Planner()
        if optimize:
            plan, _ = planner.optimize(plan)
            plan.validate()
        decision = split_for_sharding(plan, planner.cost_model)
        if not decision.shardable:
            raise PlanError(
                f"this query cannot run as a remote shard: {decision.reason}"
            )
        self.local_plan = decision.local
        self.mode = mode
        self.batch_size = batch_size
        self._max_payload = max_payload
        self._closed = False
        self._active_conn: Optional[socket.socket] = None
        self.served_coordinators = 0

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        self._listener.settimeout(_ACCEPT_TICK)
        bound_host, bound_port = self._listener.getsockname()[:2]
        self.address = f"{bound_host}:{bound_port}"

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept coordinators one at a time until :meth:`close`."""
        while not self._closed:
            self.serve_once()

    def serve_once(self) -> bool:
        """Serve one coordinator connection to completion.

        Returns True when a coordinator was actually served, False when
        the accept timed out (so callers can poll a stop flag).
        """
        try:
            conn, _ = self._listener.accept()
        except socket.timeout:
            return False
        except OSError:
            return False  # listener closed under us
        with conn:
            self._active_conn = conn
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(None)
            try:
                self._serve_connection(conn)
            except (ConnectionClosed, ConnectionError, OSError):
                pass  # coordinator went away (or close() cut the link)
            except ProtocolError as exc:
                self._try_send_error(conn, -1, f"protocol error: {exc}")
            finally:
                self._active_conn = None
        self.served_coordinators += 1
        return True

    def _serve_connection(self, conn: socket.socket) -> None:
        kind, header, _ = recv_frame(conn, self._max_payload)
        if kind != protocol.SHARD_ATTACH:
            raise ProtocolError(
                f"expected SHARD_ATTACH, got {protocol.kind_name(kind)}"
            )
        shard_id = int(header["shard"])
        offered = header.get("signature")
        expected = plan_signature(self.local_plan)
        if offered is not None and list(offered) != expected:
            # A coordinator for a *different* query (or different
            # planner settings) must fail the attach, not silently
            # merge partials computed by the wrong plan.
            self._try_send_error(
                conn,
                shard_id,
                "shard plan mismatch:\n"
                f"  coordinator splits: {offered}\n"
                f"  this server hosts:  {expected}",
            )
            return
        try:
            runner = ShardRunner(
                shard_id, self.local_plan, mode=self.mode, batch_size=self.batch_size
            )
        except Exception:
            self._try_send_error(conn, shard_id, traceback.format_exc())
            return
        send_frame(conn, protocol.OK, {"shard": shard_id})

        def recv():
            frame_kind, frame_header, frame_payload = recv_frame(conn, self._max_payload)
            return protocol.decode_worker_message(frame_kind, frame_header, frame_payload)

        def send(message):
            conn.sendall(protocol.encode_worker_message(message))

        try:
            serve_shard_messages(runner, recv, send)
        except (ConnectionClosed, ConnectionError):
            raise
        except BaseException:
            self._try_send_error(conn, shard_id, traceback.format_exc())

    @staticmethod
    def _try_send_error(conn: socket.socket, shard_id: int, trace: str) -> None:
        try:
            conn.sendall(protocol.encode_worker_message(("error", shard_id, trace)))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting, cut any active coordinator, release the socket."""
        if self._closed:
            return
        self._closed = True
        self._listener.close()
        active = self._active_conn
        if active is not None:
            try:
                active.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def start_in_thread(self) -> ShardServer:
        """Serve on a daemon thread; :meth:`close` stops it."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-shard-server", daemon=True
        )
        thread.start()
        self._thread = thread
        return self

    def __enter__(self) -> ShardServer:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def spawn_shard_server(
    query: Union[Stream, LogicalPlan],
    mode: str = "auto",
    batch_size: Optional[int] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    optimize: bool = True,
):
    """Fork a :class:`ShardServer` into its own process; returns (process, address).

    The fork start method carries the query — closures included — into
    the child by address-space inheritance, making this a faithful
    local stand-in for a shard host that constructed the same query
    from code.  The parent keeps only the address; terminate the
    process to stop the server.
    """
    server = ShardServer(
        query, host=host, port=port, mode=mode, batch_size=batch_size, optimize=optimize
    )
    context = multiprocessing.get_context("fork")
    process = context.Process(
        target=server.serve_forever, daemon=True, name="repro-shard-server"
    )
    process.start()
    # The child inherited the listening socket; the parent's copy is
    # only a handle now and must not steal connections.
    server._listener.close()
    return process, server.address
