"""`StreamServer`: the query stack served over TCP.

The server wraps one :class:`~repro.service.QuerySession` and exposes
the whole service surface — stream declaration, CQL registration,
tuple ingest, result subscription, statistics/explain — through the
framed protocol of :mod:`repro.net.protocol`.  The paper's setting
(receptor streams arriving from distributed RFID readers and radar
sites) maps onto it directly: receptors run
:class:`~repro.net.client.StreamClient` ingest loops, monitoring
dashboards hold subscriptions, and the coordinator process hosts the
session.

**Concurrency model.**  One asyncio event loop owns the session; every
request handler runs on that loop, so session calls never race and the
engine needs no locks.  Ingest batches execute synchronously inside
their handler — the same single-writer discipline the sharded
coordinator uses — and fan results out to subscribers before the next
frame is read.

**Subscriptions.**  A ``SUBSCRIBE`` frame turns its connection into a
server-push stream: results of the named query are buffered per
subscriber (bounded at ``subscriber_buffer`` tuples) and shipped as
``RESULT`` frames carrying encoded tuple batches.  A consumer that
cannot keep up trips the ``slow_consumer`` policy:

* ``"drop-oldest"`` (default) — the oldest buffered results are
  discarded; every ``RESULT`` frame carries the cumulative ``dropped``
  count so the consumer can see the gap;
* ``"disconnect"`` — the subscriber gets an ``ERROR`` frame
  (``SlowConsumerError``) and its connection is closed, protecting the
  server's memory at the price of the subscription.

Use :func:`serve_in_thread` to host a server next to synchronous code
(tests, notebooks, the benchmark harness).
"""

from __future__ import annotations

import asyncio
import hmac
import itertools
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.service import QuerySession
from repro.streams.batch import TupleBatch
from repro.streams.serialization import decode_batch, encode_batch_wire
from repro.streams.tuples import StreamTuple

from . import protocol
from .errors import AuthError, ConnectionClosed, ProtocolError, SlowConsumerError
from .framing import DEFAULT_MAX_PAYLOAD, encode_frame, read_frame_async

__all__ = ["StreamServer", "ServerHandle", "serve_in_thread"]

_SLOW_CONSUMER_POLICIES = ("drop-oldest", "disconnect")

#: Distinguishes the registry instruments of several servers in one
#: process (tests routinely host more than one).
_server_scopes = itertools.count(1)


class _Subscriber:
    """One subscription: a bounded result buffer plus its writer task."""

    _ids = itertools.count(1)

    def __init__(
        self,
        query: str,
        writer: asyncio.StreamWriter,
        buffer_limit: int,
        policy: str,
    ):
        self.query = query
        self.writer = writer
        self.buffer_limit = buffer_limit
        self.policy = policy
        #: Buffered ``(seq, result)`` pairs; seqs are the query's global
        #: result numbering (1-based emission order), so a reconnecting
        #: consumer can hand its last seen seq to ``SUBSCRIBE RESUME``.
        self.pending: Deque[Tuple[int, StreamTuple]] = deque()
        #: Cumulative drop count, reported on every RESULT frame.  The
        #: registry counter is the storage; this subscriber's id keeps
        #: it distinct from other subscribers of the same query.
        self._dropped = obs.get_registry().counter(
            "repro_subscriber_dropped_total",
            query=query,
            subscriber=str(next(self._ids)),
        )
        self.seq = 0  # query-level seq of the last result shipped
        self.enqueued_seq = 0  # query-level seq of the last result buffered
        self.failed: Optional[str] = None
        self.ended = False  # the query was dropped: send END and close
        self.wakeup = asyncio.Event()
        self.task: Optional[asyncio.Task] = None

    @property
    def dropped(self) -> int:
        return int(self._dropped.value)

    def on_result(self, item: StreamTuple, seq: int = 0) -> None:
        """Session listener; runs synchronously during a push on the loop."""
        if self.failed is not None:
            return
        if seq <= self.enqueued_seq:
            # No replay log backs this query (or the caller passed no
            # seq): synthesize a subscriber-local monotonic numbering.
            seq = self.enqueued_seq + 1
        self.enqueued_seq = seq
        self.pending.append((seq, item))
        if len(self.pending) > self.buffer_limit:
            if self.policy == "drop-oldest":
                while len(self.pending) > self.buffer_limit:
                    self.pending.popleft()
                    self._dropped.inc()
            else:  # disconnect
                self.pending.clear()
                self.failed = (
                    f"subscriber to {self.query!r} fell more than "
                    f"{self.buffer_limit} results behind"
                )
        self.wakeup.set()

    async def pump(self) -> None:
        """Ship buffered results as RESULT frames until closed or failed."""
        try:
            while True:
                await self.wakeup.wait()
                self.wakeup.clear()
                if self.failed is not None:
                    self.writer.write(
                        protocol.error_frame(SlowConsumerError(self.failed))
                    )
                    await self.writer.drain()
                    self.writer.close()
                    return
                while self.pending:
                    rows = list(self.pending)
                    self.pending.clear()
                    self.seq = rows[-1][0]
                    frame = encode_frame(
                        protocol.RESULT,
                        {
                            "query": self.query,
                            "seq": self.seq,
                            "first_seq": rows[0][0],
                            "count": len(rows),
                            "dropped": self.dropped,
                        },
                        encode_batch_wire(TupleBatch([item for _, item in rows])),
                    )
                    self.writer.write(frame)
                    await self.writer.drain()
                    if self.failed is not None:
                        break
                if self.ended:
                    # Results delivered before the drop have shipped;
                    # close the push stream cleanly, reporting the seq
                    # of the final delivered result.
                    self.writer.write(
                        encode_frame(
                            protocol.END, {"query": self.query, "seq": self.seq}
                        )
                    )
                    await self.writer.drain()
                    self.writer.close()
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass  # the reader side notices and cleans up


class StreamServer:
    """Serve a :class:`~repro.service.QuerySession` over TCP (see module docs).

    Parameters
    ----------
    session:
        The session to expose; created fresh when ``None``.  The server
        becomes the session's only driver — do not push into it from
        other threads while serving.
    host / port:
        Bind address; port ``0`` picks a free port (see :attr:`address`
        after :meth:`start`).
    subscriber_buffer:
        Per-subscriber bound on buffered result tuples.
    slow_consumer:
        ``"drop-oldest"`` or ``"disconnect"`` (see module docs).
    max_payload:
        Largest accepted frame payload in bytes.
    auth_token:
        Optional shared secret.  When set, every connection must open
        with a ``HELLO`` carrying a matching ``token`` field before any
        other verb; the comparison is constant-time, and a missing or
        wrong token is answered with an ``AuthError`` error frame after
        which the connection is closed.
    """

    def __init__(
        self,
        session: Optional[QuerySession] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        subscriber_buffer: int = 4096,
        slow_consumer: str = "drop-oldest",
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        auth_token: Optional[str] = None,
    ):
        if slow_consumer not in _SLOW_CONSUMER_POLICIES:
            raise ValueError(
                f"unknown slow-consumer policy {slow_consumer!r}; "
                f"use one of {_SLOW_CONSUMER_POLICIES}"
            )
        if subscriber_buffer < 1:
            raise ValueError(f"subscriber_buffer must be at least 1, got {subscriber_buffer}")
        self.session = session if session is not None else QuerySession()
        self._host = host
        self._port = port
        self._subscriber_buffer = subscriber_buffer
        self._slow_consumer = slow_consumer
        self._max_payload = max_payload
        self._auth_token = auth_token
        self._server: Optional[asyncio.AbstractServer] = None
        self._subscribers: List[_Subscriber] = []
        self.address: Optional[str] = None
        #: Counters served alongside session statistics; stored in the
        #: metrics registry (the attributes below are views) so the
        #: METRICS verb and the STATS header read the same cells.
        self.obs_scope = f"server-{next(_server_scopes)}"
        registry = obs.get_registry()
        self._frames_in = registry.counter(
            "repro_server_frames_total", server=self.obs_scope
        )
        self._tuples_ingested = registry.counter(
            "repro_server_tuples_ingested_total", server=self.obs_scope
        )

    @property
    def frames_in(self) -> int:
        return int(self._frames_in.value)

    @property
    def tuples_ingested(self) -> int:
        return int(self._tuples_ingested.value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> StreamServer:
        """Bind and start accepting connections; sets :attr:`address`."""
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        sock_host, sock_port = self._server.sockets[0].getsockname()[:2]
        self.address = f"{sock_host}:{sock_port}"
        return self

    async def serve_forever(self) -> None:
        """:meth:`start` (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drop subscribers, close the session's runtime."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
        # Sever subscribers BEFORE wait_closed(): on Python >= 3.12
        # wait_closed() waits for every connection handler, and a
        # subscription handler blocks reading until its socket dies.
        for subscriber in list(self._subscribers):
            self._detach(subscriber)
            if subscriber.task is not None:
                subscriber.task.cancel()
            if subscriber.writer is not None:
                subscriber.writer.close()
        if server is not None:
            await server.wait_closed()
        self.session.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        subscriber: Optional[_Subscriber] = None
        # Per-connection ingest state for batched ACKs: tuples ingested
        # since the last ACK this connection received.
        state = {"unacked": 0, "authed": self._auth_token is None}
        try:
            while True:
                try:
                    kind, header, payload = await read_frame_async(reader, self._max_payload)
                except ConnectionClosed:
                    return
                self._frames_in.inc()
                if kind == protocol.BYE:
                    writer.write(encode_frame(protocol.OK))
                    await writer.drain()
                    return
                if not state["authed"]:
                    supplied = header.get("token") if kind == protocol.HELLO else None
                    if supplied is None or not hmac.compare_digest(
                        str(supplied).encode("utf-8"),
                        str(self._auth_token).encode("utf-8"),
                    ):
                        writer.write(
                            protocol.error_frame(
                                AuthError(
                                    "this server requires a token; open with "
                                    "HELLO carrying the shared secret"
                                )
                            )
                        )
                        await writer.drain()
                        return
                    state["authed"] = True
                if subscriber is not None:
                    # A subscription connection is push-only after SUBSCRIBE.
                    raise ProtocolError(
                        f"unexpected {protocol.kind_name(kind)} on a subscription "
                        "connection (only BYE is accepted)"
                    )
                try:
                    reply = self._handle(kind, header, payload, writer, state)
                except ProtocolError:
                    raise
                except Exception as exc:  # the request failed server-side
                    # Carry the request's seq (if any) so a pipelining
                    # client can tell which frame failed, and forget the
                    # batched-ack debt — the client resynchronizes.
                    error_header = {"code": type(exc).__name__, "message": str(exc)}
                    if "seq" in header:
                        error_header["seq"] = header["seq"]
                    state["unacked"] = 0
                    writer.write(encode_frame(protocol.ERROR, error_header))
                    await writer.drain()
                    continue
                if isinstance(reply, _Subscriber):
                    subscriber = reply
                    writer.write(
                        encode_frame(
                            protocol.OK,
                            {"query": subscriber.query, "seq": subscriber.seq},
                        )
                    )
                elif reply is None:
                    # An unacked ingest frame: nothing to write back.
                    continue
                else:
                    writer.write(reply)
                await writer.drain()
        except ProtocolError as exc:
            try:
                writer.write(protocol.error_frame(exc))
                await writer.drain()
            except ConnectionError:
                pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if subscriber is not None:
                self._detach(subscriber)
                if subscriber.task is not None:
                    subscriber.task.cancel()
            writer.close()

    def _handle(self, kind, header, payload, writer, state):
        """Dispatch one request.

        Returns a reply frame, a `_Subscriber` (the connection becomes
        a push stream) or ``None`` (an ingest frame that asked not to
        be acknowledged individually).
        """
        session = self.session
        if kind == protocol.HELLO:
            return encode_frame(
                protocol.OK,
                {
                    "server": "repro.net",
                    "streams": session.streams,
                    "queries": session.queries,
                },
            )
        if kind == protocol.DECLARE:
            uncertain = header.get("uncertain")
            if isinstance(uncertain, dict):
                uncertain = {
                    name: tuple(stat) if stat is not None else None
                    for name, stat in uncertain.items()
                }
            session.create_stream(
                header["name"],
                values=header.get("values"),
                uncertain=uncertain,
                family=header.get("family"),
                rate_hint=header.get("rate_hint"),
            )
            return encode_frame(protocol.OK)
        if kind == protocol.REGISTER:
            # Analyze before registering: warnings ride back in the OK
            # header either way; strict registrations refuse on errors
            # (AnalysisError propagates as a normal request error).
            diagnostics = session.analyze(header["cql"])
            registered = session.register(
                header["name"], header["cql"], strict=bool(header.get("strict"))
            )
            reply = {"sharded": registered.sharded}
            if diagnostics:
                reply["warnings"] = [d.render() for d in diagnostics]
            return encode_frame(protocol.OK, reply)
        if kind == protocol.DROP:
            session.drop(header["name"])
            # Subscribers of a dropped query get a clean END instead of
            # blocking on a connection that will never push again.
            for subscriber in list(self._subscribers):
                if subscriber.query == header["name"]:
                    subscriber.ended = True
                    subscriber.wakeup.set()
                    self._subscribers.remove(subscriber)
            return encode_frame(protocol.OK)
        if kind == protocol.PAUSE:
            session.pause(header["name"])
            return encode_frame(protocol.OK)
        if kind == protocol.RESUME:
            session.resume(header["name"])
            return encode_frame(protocol.OK)
        if kind == protocol.INGEST:
            rows = decode_batch(payload).to_tuples()
            # Stamp the chunk at receipt: the trace context (id from the
            # client header when it sent one, minted otherwise) rides
            # through the engine — and across shard processes — so sinks
            # can account ingest→delivery latency against this moment.
            ctx = obs.new_trace(trace_id=header.get("trace"))
            if obs.sampled_trace(ctx):
                ingest_id = f"t{ctx.trace_id:x}/ingest"
                t0 = obs.trace_clock()
                previous_parent = obs.activate_parent(ingest_id)
                try:
                    session.push_many(header["source"], rows, trace=ctx)
                finally:
                    obs.activate_parent(previous_parent)
                obs.record_span(
                    "net.ingest", "net", ctx.trace_id, t0, obs.trace_clock(),
                    span_id=ingest_id,
                )
            else:
                session.push_many(header["source"], rows, trace=ctx)
            self._tuples_ingested.inc(len(rows))
            state["unacked"] += len(rows)
            # Batched ACKs: a client that pipelines aggressively marks
            # most frames ``ack: false`` and only samples the stream at
            # a stride; each ACK then covers every unacknowledged tuple
            # before it.  Omitting the field means one ACK per frame —
            # the original protocol — so old clients are unaffected.
            if not header.get("ack", True):
                return None
            count = state["unacked"]
            state["unacked"] = 0
            return encode_frame(
                protocol.ACK, {"seq": header.get("seq", 0), "count": count}
            )
        if kind == protocol.FLUSH:
            session.flush()
            return encode_frame(protocol.OK)
        if kind == protocol.STATS:
            reports = session.statistics(header.get("query"))
            rows = [
                {
                    "name": report.stats.name,
                    "tuples_in": report.stats.tuples_in,
                    "tuples_out": report.stats.tuples_out,
                    "batches_in": report.stats.batches_in,
                    "seconds": report.stats.seconds,
                    "owners": list(report.owners),
                }
                for report in reports
            ]
            return encode_frame(
                protocol.OK,
                {
                    "stats": rows,
                    "frames_in": self.frames_in,
                    "tuples_ingested": self.tuples_ingested,
                },
            )
        if kind == protocol.EXPLAIN:
            return encode_frame(
                protocol.OK, {"text": session.explain(header.get("query"))}
            )
        if kind == protocol.METRICS:
            reply = {"metrics": obs.get_registry().snapshot()}
            query = header.get("query")
            if query:
                reply["observed"] = session.observed_stats(query)
                reply["stages"] = session.stage_timings(query)
            else:
                reply["stages"] = session.stage_timings()
            return encode_frame(protocol.OK, reply)
        if kind == protocol.TRACE:
            # Span export: drain (default) or peek the coordinator-side
            # buffer, which already holds the worker spans shipped back
            # in results replies.
            buffer = obs.local_spans()
            spans = buffer.snapshot() if header.get("keep") else buffer.drain()
            limit = header.get("limit")
            if limit:
                spans = spans[-int(limit):]
            return encode_frame(
                protocol.OK,
                {"spans": spans, "sample": obs.get_trace_sample()},
            )
        if kind == protocol.HEALTH:
            # Self-driving: evaluating health records a history tick, so
            # a client polling HEALTH feeds the ring it is judged by.
            session.health_tick()
            return encode_frame(
                protocol.OK,
                {"health": session.health.status(), "ticks": len(session.history)},
            )
        if kind == protocol.CHECKPOINT:
            info = session.checkpoint(header["dir"], mode=header.get("mode", "auto"))
            return encode_frame(
                protocol.OK,
                {"checkpoint": info.checkpoint_id, "mode": info.mode, "path": info.path},
            )
        if kind == protocol.SUBSCRIBE:
            return self._subscribe(header["query"], writer, header.get("resume"))
        raise ProtocolError(f"unknown request kind {protocol.kind_name(kind)}")

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def _subscribe(
        self,
        query: str,
        writer: asyncio.StreamWriter,
        resume: Optional[int] = None,
    ) -> _Subscriber:
        if query not in self.session.queries:
            known = ", ".join(self.session.queries) or "none"
            raise KeyError(f"no query named {query!r} is registered (registered: {known})")
        # Resolve the replay *before* attaching anything: a gap error
        # must leave no half-registered subscriber behind.  No pushes
        # can interleave between here and add_listener — both run on
        # the session's event loop — so the preload is gap-free.
        preload: List[Tuple[int, StreamTuple]] = []
        if resume is not None:
            preload = self.session.replay_from(query, int(resume))
        subscriber = _Subscriber(
            query, writer, self._subscriber_buffer, self._slow_consumer
        )
        if resume is not None:
            subscriber.seq = int(resume)
            subscriber.enqueued_seq = int(resume)
            for seq, item in preload:
                subscriber.pending.append((seq, item))
                subscriber.enqueued_seq = seq
            if subscriber.pending:
                subscriber.wakeup.set()
        else:
            attach_seq = self.session.last_result_seq(query)
            subscriber.seq = attach_seq
            subscriber.enqueued_seq = attach_seq

        def listener(item: StreamTuple) -> None:
            # The sink appends to its replay log before calling
            # listeners, so last_result_seq is this item's seq.
            subscriber.on_result(item, self.session.last_result_seq(query))

        subscriber.listener = listener
        self.session.add_listener(query, listener)
        subscriber.task = asyncio.ensure_future(subscriber.pump())
        self._subscribers.append(subscriber)
        return subscriber

    def _detach(self, subscriber: _Subscriber) -> None:
        listener = getattr(subscriber, "listener", subscriber.on_result)
        self.session.remove_listener(subscriber.query, listener)
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)


# ----------------------------------------------------------------------
# Thread-hosted server (sync integration)
# ----------------------------------------------------------------------
class ServerHandle:
    """A :class:`StreamServer` running on a background event-loop thread."""

    def __init__(self, server: StreamServer, loop: asyncio.AbstractEventLoop, thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> str:
        assert self.server.address is not None
        return self.server.address

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread (idempotent)."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> ServerHandle:
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    session: Optional[QuerySession] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    **server_kwargs,
) -> ServerHandle:
    """Start a :class:`StreamServer` on a daemon thread and return its handle.

    The server (and the session it wraps) live entirely on the thread's
    event loop; interact with them through clients, not directly.
    """
    startup: Dict[str, object] = {}
    started = threading.Event()

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = StreamServer(session, host=host, port=port, **server_kwargs)
        try:
            loop.run_until_complete(server.start())
        except Exception as exc:  # bind failure, bad arguments
            startup["error"] = exc
            started.set()
            loop.close()
            return
        startup["server"] = server
        startup["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=run, name="repro-net-server", daemon=True)
    thread.start()
    started.wait(timeout=30.0)
    if "error" in startup:
        raise startup["error"]  # type: ignore[misc]
    if "server" not in startup:
        raise RuntimeError("the server thread did not start in time")
    return ServerHandle(startup["server"], startup["loop"], thread)  # type: ignore[arg-type]
