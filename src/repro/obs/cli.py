"""``python -m repro.obs``: poll a server's METRICS verb and print it.

Usage::

    python -m repro.obs --address 127.0.0.1:7654            # one snapshot
    python -m repro.obs --address 127.0.0.1:7654 --watch    # live table
    python -m repro.obs --address 127.0.0.1:7654 --prometheus

``--watch`` polls every ``--interval`` seconds until interrupted (or
for ``--iterations`` polls, which tests use to bound the loop).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .render import render_prometheus, render_table

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Poll a repro StreamServer's metrics registry.",
    )
    parser.add_argument(
        "--address",
        required=True,
        help="server address as host:port (the METRICS verb must be served there)",
    )
    parser.add_argument("--token", default=None, help="auth token, if the server requires one")
    parser.add_argument(
        "--watch",
        action="store_true",
        help="keep polling and reprinting the table until interrupted",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls in --watch mode (default: 2)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after this many polls (useful in scripts and tests)",
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus text format instead of the table",
    )
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    args = _build_parser().parse_args(argv)
    out = out if out is not None else sys.stdout
    render = render_prometheus if args.prometheus else render_table

    from repro.net.client import StreamClient

    polls = 0
    limit = args.iterations if args.iterations is not None else (None if args.watch else 1)
    try:
        with StreamClient(args.address, token=args.token) as client:
            while True:
                reply = client.metrics()
                snapshot = reply.get("metrics", reply)
                if polls and not args.prometheus:
                    out.write("\n")
                out.write(render(snapshot))
                out.flush()
                polls += 1
                if limit is not None and polls >= limit:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
