"""``python -m repro.obs``: poll a server's observability verbs.

Usage::

    python -m repro.obs --address 127.0.0.1:7654            # one snapshot
    python -m repro.obs --address 127.0.0.1:7654 --watch    # live table + sparklines
    python -m repro.obs --address 127.0.0.1:7654 --prometheus
    python -m repro.obs --address 127.0.0.1:7654 --health   # health-rule verdicts
    python -m repro.obs --address 127.0.0.1:7654 --trace-out trace.json

``--watch`` polls every ``--interval`` seconds until interrupted (or
for ``--iterations`` polls, which tests use to bound the loop); each
poll is recorded into a client-side history ring, so the table grows a
per-metric sparkline column as history accumulates.  ``--trace-out``
drains the server's span buffer and writes Chrome trace-event JSON —
open it in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from .history import HistoryRing, flatten_snapshot
from .render import render_prometheus, render_table
from .spans import export_chrome_trace

__all__ = ["main"]

#: Eight-level unicode bars, lowest to highest.
_SPARK_BARS = "▁▂▃▄▅▆▇█"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Poll a repro StreamServer's metrics registry.",
    )
    parser.add_argument(
        "--address",
        required=True,
        help="server address as host:port (the METRICS verb must be served there)",
    )
    parser.add_argument("--token", default=None, help="auth token, if the server requires one")
    parser.add_argument(
        "--query",
        default=None,
        help="also fetch this query's observed stats and stage timings",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="keep polling and reprinting the table (with sparklines) until interrupted",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls in --watch mode (default: 2)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after this many polls (useful in scripts and tests)",
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus text format instead of the table",
    )
    parser.add_argument(
        "--health",
        action="store_true",
        help="print the server's health-rule verdicts (HEALTH verb) instead of metrics",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="drain the server's span buffer into FILE as Chrome trace-event "
        "JSON (load it in Perfetto) and exit",
    )
    parser.add_argument(
        "--spark-width",
        type=int,
        default=16,
        help="sparkline width in --watch mode (default: 16)",
    )
    return parser


def _sparkline(values: List[float], width: int) -> str:
    """Render the last ``width`` values as a unicode bar strip."""
    tail = [v for v in values[-width:] if v == v]  # drop NaN
    if not tail:
        return ""
    low, high = min(tail), max(tail)
    if high <= low:
        return _SPARK_BARS[0] * len(tail)
    scale = (len(_SPARK_BARS) - 1) / (high - low)
    return "".join(_SPARK_BARS[int((v - low) * scale)] for v in tail)


def _sparkline_block(history: HistoryRing, width: int) -> str:
    """One ``key  sparkline  latest`` line per recorded series."""
    lines = []
    for key in history.keys():
        if "#" in key:
            continue  # histogram component series stay internal
        _, values = history.series(key)
        if values.size < 2:
            continue
        spark = _sparkline(list(values), width)
        lines.append(f"{key}  {spark}  {values[-1]:g}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def _render_health(reply: Dict) -> str:
    status = reply.get("health", {})
    lines = [
        f"firing: {', '.join(status.get('firing', [])) or '-'}",
        f"pending: {', '.join(status.get('pending', [])) or '-'}",
        f"history ticks: {reply.get('ticks', 0)}",
    ]
    for rule in status.get("rules", ()):
        value = rule.get("value")
        rendered = "-" if value is None else f"{value:g}"
        lines.append(
            f"  [{rule['state']:>7}] {rule['name']}: {rule['rule']} "
            f"(value={rendered}, series={rule.get('series') or '-'})"
        )
    return "\n".join(lines) + "\n"


def _render_stages(stages: Dict[str, float]) -> str:
    if not stages:
        return ""
    body = "  ".join(f"{name}={seconds:.4f}s" for name, seconds in sorted(stages.items()))
    return f"stages: {body}\n"


def main(argv: Optional[List[str]] = None, out=None) -> int:
    args = _build_parser().parse_args(argv)
    out = out if out is not None else sys.stdout
    render = render_prometheus if args.prometheus else render_table

    from repro.net.client import StreamClient

    polls = 0
    limit = args.iterations if args.iterations is not None else (None if args.watch else 1)
    history = HistoryRing(capacity=max(64, args.spark_width * 4)) if args.watch else None
    try:
        with StreamClient(args.address, token=args.token) as client:
            if args.trace_out:
                reply = client.trace()
                spans = reply.get("spans", [])
                export_chrome_trace(spans, path=args.trace_out)
                out.write(
                    f"wrote {len(spans)} spans (sample 1/{reply.get('sample', '?')}) "
                    f"to {args.trace_out}\n"
                )
                return 0
            while True:
                if polls:
                    out.write("\n")
                if args.health:
                    out.write(_render_health(client.health()))
                else:
                    reply = client.metrics(args.query)
                    snapshot = reply.get("metrics", reply)
                    out.write(render(snapshot))
                    if not args.prometheus:
                        out.write(_render_stages(reply.get("stages") or {}))
                        if args.query and reply.get("observed"):
                            out.write(
                                "observed: "
                                + json.dumps(reply["observed"], default=str)[:500]
                                + "\n"
                            )
                    if history is not None:
                        history.record(snapshot)
                        block = _sparkline_block(history, args.spark_width)
                        if block:
                            out.write("\n" + block)
                out.flush()
                polls += 1
                if limit is not None and polls >= limit:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
