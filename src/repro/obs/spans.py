"""Sampled span tracing: where one batch's latency went, stage by stage.

PR 9's trace context answers *how long* ingest→delivery took; spans
answer *where the time went*: operator execution, shard encode, ship,
worker execution, reply decode, merge, sink delivery — each recorded as
one timed span and assembled into a per-process :class:`SpanBuffer`
that exports Chrome trace-event JSON (loadable in Perfetto and
``chrome://tracing``).

**Sampling.**  Recording every batch would blow the ≤3% observability
budget, so spans are recorded only for *sampled* traces: a trace is
sampled when ``trace_id % n == 0`` for the process-wide sampling
denominator ``n`` (:func:`set_trace_sample`, default 64; ``0`` disables
tracing, ``1`` records every trace).  The decision is a pure function
of the trace id, so the coordinator and its forked shard workers agree
without shipping any flag — the existing TRB1 batch trailer already
carries the id, and the wire format is untouched.

**Cross-process causality.**  Span ids are *deterministic* strings
derived from ``(trace_id, shard, chunk_id)``: the coordinator records
the ship span of chunk ``c`` to shard ``s`` under
``t<id>/s<s>/c<c>``, and the worker — in a different process, without
any id exchange — records its execution span with exactly that string
as ``parent``.  Worker-side spans ride back to the coordinator in the
header of the ``results`` reply frame and are ingested into the
coordinator's buffer, so one buffer holds the full ingest→sink tree.

**Hot-path discipline.**  An unsampled batch pays one modulo and a
falsy branch; nothing is allocated and no clock is read.  Recording a
span appends one small dict to a bounded deque (atomic under the GIL —
reader threads and the caller's thread share the buffer without a
lock).  Forked workers clear the buffer they inherited
(``os.register_at_fork``) so parent spans are never shipped twice.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Dict, List, Optional

from .trace import TraceContext

__all__ = [
    "SpanBuffer",
    "set_trace_sample",
    "get_trace_sample",
    "sampled",
    "sampled_trace",
    "record_span",
    "local_spans",
    "activate_parent",
    "current_parent",
    "chunk_span_id",
    "exec_span_id",
    "root_span_id",
    "export_chrome_trace",
]

#: Default sampling denominator: 1 in 64 traces record spans.
DEFAULT_TRACE_SAMPLE = 64

_sample_n = DEFAULT_TRACE_SAMPLE
_parent = threading.local()


def set_trace_sample(n: int) -> int:
    """Set the process-wide sampling denominator; returns the previous one.

    ``0`` disables span recording entirely; ``1`` samples every trace;
    ``n`` samples the traces whose id is divisible by ``n``.  Set this
    *before* forking shard workers (``QuerySession(trace_sample=...)``
    does) so both sides of the process boundary agree.
    """
    global _sample_n
    if n < 0:
        raise ValueError(f"trace_sample must be non-negative, got {n}")
    previous, _sample_n = _sample_n, int(n)
    return previous


def get_trace_sample() -> int:
    """The process-wide sampling denominator (0 = disabled)."""
    return _sample_n


def sampled(trace_id: Optional[int]) -> bool:
    """Whether spans are recorded for this trace id (deterministic)."""
    return trace_id is not None and _sample_n > 0 and trace_id % _sample_n == 0


def sampled_trace(trace: Optional[TraceContext]) -> bool:
    """Whether spans are recorded for this trace context."""
    return (
        trace is not None
        and _sample_n > 0
        and trace.trace_id % _sample_n == 0
    )


# ----------------------------------------------------------------------
# Deterministic span ids (the cross-process hand-off)
# ----------------------------------------------------------------------
def root_span_id(trace_id: int) -> str:
    """Id of a trace's coordinator-side root (push/ingest) span."""
    return f"t{trace_id:x}/push"


def chunk_span_id(trace_id: int, shard: int, chunk_id: int) -> str:
    """Id of the coordinator-side ship span of one chunk."""
    return f"t{trace_id:x}/s{shard}/c{chunk_id}"


def exec_span_id(trace_id: int, shard: int, chunk_id: int) -> str:
    """Id of the worker-side execution span of one chunk.

    Parents to :func:`chunk_span_id` of the same coordinates — both
    sides compute the strings independently, so causality crosses the
    fork/socket boundary without widening the wire format.
    """
    return f"t{trace_id:x}/s{shard}/c{chunk_id}/exec"


class SpanBuffer:
    """A bounded, thread-safe buffer of finished spans.

    Spans are plain dicts (JSON-able: they ride in ``results`` reply
    headers and the TRACE verb) with keys ``name``, ``cat``, ``trace``,
    ``span``, ``parent``, ``pid``, ``t0``, ``t1`` — times on
    :data:`repro.obs.trace_clock`.  Appends are ``deque.append`` on a
    ``maxlen`` deque: atomic under the GIL, oldest spans evicted first,
    so a crashed exporter can never grow the buffer unboundedly.
    """

    def __init__(self, capacity: int = 8192):
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._spans: deque = deque(maxlen=capacity)

    def add(self, span: Dict) -> None:
        self._spans.append(span)

    def ingest(self, spans) -> None:
        """Append spans recorded elsewhere (a worker's reply header)."""
        if spans:
            self._spans.extend(spans)

    def snapshot(self) -> List[Dict]:
        """A copy of the buffered spans (oldest first)."""
        return list(self._spans)

    def drain(self) -> List[Dict]:
        """Remove and return every buffered span (oldest first)."""
        out: List[Dict] = []
        spans = self._spans
        while spans:
            try:
                out.append(spans.popleft())
            except IndexError:  # pragma: no cover - concurrent drain
                break
        return out

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


#: The process-local buffer every instrumented code path records into.
_local = SpanBuffer()


def local_spans() -> SpanBuffer:
    """The calling process's span buffer."""
    return _local


def record_span(
    name: str,
    cat: str,
    trace_id: int,
    t_start: float,
    t_end: float,
    span_id: Optional[str] = None,
    parent_id: Optional[str] = None,
) -> Dict:
    """Record one finished span into the process-local buffer."""
    span = {
        "name": name,
        "cat": cat,
        "trace": trace_id,
        "span": span_id,
        "parent": parent_id,
        "pid": os.getpid(),
        "t0": t_start,
        "t1": t_end,
    }
    _local.add(span)
    return span


# ----------------------------------------------------------------------
# Thread-local parent linkage (operator spans nest under their stage)
# ----------------------------------------------------------------------
def activate_parent(span_id: Optional[str]) -> Optional[str]:
    """Make ``span_id`` the thread's current span parent; returns the old one."""
    previous = getattr(_parent, "id", None)
    _parent.id = span_id
    return previous


def current_parent() -> Optional[str]:
    """The thread's current span parent, if any."""
    return getattr(_parent, "id", None)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def export_chrome_trace(spans: List[Dict], path: Optional[str] = None) -> str:
    """Render spans as Chrome trace-event JSON (Perfetto-loadable).

    Each span becomes one complete ("X") event with microsecond
    timestamps; cross-process parent→child edges additionally emit flow
    ("s"/"f") event pairs so Perfetto draws the hand-off arrows between
    the coordinator's track and each worker's.  Events are sorted by
    timestamp.  When ``path`` is given the JSON is also written there.
    """
    by_id = {span["span"]: span for span in spans if span.get("span")}
    events: List[Dict] = []
    flow_serial = 0
    for span in spans:
        t0 = float(span["t0"])
        t1 = float(span["t1"])
        event = {
            "name": span["name"],
            "cat": span.get("cat", "span"),
            "ph": "X",
            "ts": t0 * 1e6,
            "dur": max(0.0, t1 - t0) * 1e6,
            "pid": span.get("pid", 0),
            "tid": span.get("pid", 0),
            "args": {
                "trace": span.get("trace"),
                "span": span.get("span"),
                "parent": span.get("parent"),
            },
        }
        events.append(event)
        parent = by_id.get(span.get("parent"))
        if parent is not None and parent.get("pid") != span.get("pid"):
            flow_serial += 1
            common = {"name": "handoff", "cat": "flow", "id": flow_serial}
            events.append(
                dict(
                    common,
                    ph="s",
                    ts=float(parent["t0"]) * 1e6,
                    pid=parent.get("pid", 0),
                    tid=parent.get("pid", 0),
                )
            )
            events.append(
                dict(common, ph="f", bp="e", ts=t0 * 1e6, pid=span.get("pid", 0), tid=span.get("pid", 0))
            )
    events.sort(key=lambda e: e["ts"])
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    text = json.dumps(document)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def _clear_after_fork() -> None:
    # A forked worker inherits the parent's buffered spans; shipping
    # them again from the child would duplicate every event.
    _local.clear()
    _parent.id = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython on POSIX
    os.register_at_fork(after_in_child=_clear_after_fork)
