"""Text exposition of registry snapshots: Prometheus format and tables.

Both renderers consume the JSON-able dict produced by
:meth:`repro.obs.Registry.snapshot` — not the registry itself — so they
work identically on a local registry and on a snapshot fetched over the
wire through the METRICS verb.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["render_prometheus", "render_table"]


def _escape_label_value(value) -> str:
    # Prometheus exposition: backslash, double-quote and newline must be
    # escaped inside label values.
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def emit_type(name: str, kind: str) -> None:
        if typed.get(name) != kind:
            lines.append(f"# TYPE {name} {kind}")
            typed[name] = kind

    for entry in snapshot.get("counters", ()):
        emit_type(entry["name"], "counter")
        lines.append(f"{entry['name']}{_label_suffix(entry['labels'])} {_fmt(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        emit_type(entry["name"], "gauge")
        lines.append(f"{entry['name']}{_label_suffix(entry['labels'])} {_fmt(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = entry["name"]
        emit_type(name, "histogram")
        labels = entry["labels"]
        cumulative = 0.0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            le = dict(labels, le=repr(float(bound)))
            lines.append(f"{name}_bucket{_label_suffix(le)} {_fmt(cumulative)}")
        cumulative += entry["counts"][-1]
        lines.append(f"{name}_bucket{_label_suffix(dict(labels, le='+Inf'))} {_fmt(cumulative)}")
        lines.append(f"{name}_sum{_label_suffix(labels)} {_fmt(entry['sum'])}")
        lines.append(f"{name}_count{_label_suffix(labels)} {_fmt(entry['count'])}")
    for entry in snapshot.get("operators", ()):
        labels = {"scope": entry.get("scope", ""), "operator": entry["operator"]}
        for field in ("tuples_in", "tuples_out", "batches_in", "processing_seconds"):
            name = f"repro_operator_{field}"
            emit_type(name, "counter")
            lines.append(f"{name}{_label_suffix(labels)} {_fmt(entry[field])}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_table(snapshot: dict) -> str:
    """Render a snapshot as an aligned human-readable table."""
    rows: List[tuple] = []
    for entry in snapshot.get("counters", ()):
        rows.append(("counter", entry["name"], entry["labels"], _fmt(entry["value"])))
    for entry in snapshot.get("gauges", ()):
        rows.append(("gauge", entry["name"], entry["labels"], _fmt(entry["value"])))
    for entry in snapshot.get("histograms", ()):
        pct = entry.get("percentiles") or {}
        detail = (
            f"count={_fmt(entry['count'])} "
            f"p50={_ms(pct.get('p50'))} p95={_ms(pct.get('p95'))} p99={_ms(pct.get('p99'))}"
        )
        rows.append(("histogram", entry["name"], entry["labels"], detail))
    for entry in snapshot.get("operators", ()):
        detail = (
            f"in={entry['tuples_in']} out={entry['tuples_out']} "
            f"batches={entry['batches_in']} busy={entry['processing_seconds']:.4f}s"
        )
        labels = {"scope": entry.get("scope", "")}
        rows.append(("operator", entry["operator"], labels, detail))
    if not rows:
        return "(no instruments registered)\n"
    rendered = [
        (kind, name, _label_suffix(labels) or "-", detail)
        for kind, name, labels, detail in rows
    ]
    headers = ("kind", "name", "labels", "value")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) for i in range(4)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(4)),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(4)))
    return "\n".join(lines) + "\n"


def _ms(value) -> str:
    if value is None:
        return "-"
    return f"{float(value) * 1000.0:.3f}ms"
