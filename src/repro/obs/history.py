"""Time-series history: a bounded ring of periodic registry snapshots.

Point-in-time snapshots answer "what is the p99 *now*"; the questions
that drive management decisions — is latency *regressing*, how fast are
subscribers dropping, is the replay log trimming under pressure — need
history.  A :class:`HistoryRing` keeps the last ``capacity`` snapshots
of the metrics registry as per-series numpy rings (one ``float64`` slab
per flattened series, written in place — recording a tick allocates
nothing once a series exists) and derives:

* :meth:`rate` — per-second increase of a counter over a window;
* :meth:`windowed_percentile` — a quantile of a histogram computed from
  the *bucket-count deltas* inside the window, i.e. the latency of the
  last N seconds rather than since process start;
* :meth:`trend` — least-squares slope of any series (the "when did it
  start regressing" primitive).

Series keys are the Prometheus identity ``name{label="value",...}``
(label values escaped exactly as the exposition format does), so a key
read off a rendered metrics page addresses the same series here.
Histogram snapshots flatten into ``<key>#sum``, ``<key>#count`` and one
``<key>#b<i>`` series per bucket (the last is the overflow bucket);
the bucket bounds live in :attr:`meta`.

Timestamps come from :data:`repro.obs.trace_clock`
(``CLOCK_MONOTONIC`` — system-wide since boot on Linux), so a ring
persisted in a checkpoint sidecar and reloaded after a crash continues
monotonically in the recovered process.  Persistence
(:meth:`to_blob`/:meth:`from_blob`) delta-encodes each series — the
snapshots are cumulative counters, so deltas are small and compress
well in the JSON sidecar.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from .render import _label_suffix
from .trace import trace_clock

__all__ = ["HistoryRing", "flatten_snapshot"]


def flatten_snapshot(snapshot: dict) -> Tuple[Dict[str, float], Dict[str, dict]]:
    """Flatten a registry snapshot into ``{series_key: value}`` plus meta.

    Returns ``(values, meta)``; ``meta`` maps each histogram's base key
    to ``{"buckets": [...bounds...]}``.
    """
    values: Dict[str, float] = {}
    meta: Dict[str, dict] = {}
    for entry in snapshot.get("counters", ()):
        values[entry["name"] + _label_suffix(entry["labels"])] = float(entry["value"])
    for entry in snapshot.get("gauges", ()):
        values[entry["name"] + _label_suffix(entry["labels"])] = float(entry["value"])
    for entry in snapshot.get("histograms", ()):
        base = entry["name"] + _label_suffix(entry["labels"])
        values[base + "#sum"] = float(entry["sum"])
        values[base + "#count"] = float(entry["count"])
        for i, count in enumerate(entry["counts"]):
            values[f"{base}#b{i}"] = float(count)
        meta[base] = {"buckets": [float(b) for b in entry["buckets"]]}
    for entry in snapshot.get("operators", ()):
        suffix = _label_suffix(
            {"scope": entry.get("scope", ""), "operator": entry["operator"]}
        )
        for field in ("tuples_in", "tuples_out", "batches_in", "processing_seconds"):
            values[f"repro_operator_{field}{suffix}"] = float(entry[field])
    return values, meta


class HistoryRing:
    """Fixed-capacity ring of registry snapshots (see module docs)."""

    def __init__(self, capacity: int = 512):
        if capacity < 2:
            raise ValueError(f"capacity must be at least 2, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._times = np.zeros(capacity, dtype=np.float64)
        self._series: Dict[str, np.ndarray] = {}
        #: Histogram base key -> {"buckets": [...]} (bounds are frozen
        #: at instrument construction, so last-write-wins is fine).
        self.meta: Dict[str, dict] = {}
        self._count = 0  # ticks recorded (saturates at capacity)
        self._pos = 0  # next write slot

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, snapshot: dict, t: Optional[float] = None) -> None:
        """Record one registry snapshot at time ``t`` (now by default)."""
        values, meta = flatten_snapshot(snapshot)
        now = trace_clock() if t is None else float(t)
        with self._lock:
            self.meta.update(meta)
            pos = self._pos
            self._times[pos] = now
            # A series absent from this tick (its instrument appeared
            # later, or a query was dropped) records NaN, not a stale
            # ring slot from `capacity` ticks ago.
            for key, ring in self._series.items():
                ring[pos] = values.pop(key, math.nan)
            for key, value in values.items():
                ring = np.full(self.capacity, math.nan)
                ring[pos] = value
                self._series[key] = ring
            self._pos = (pos + 1) % self.capacity
            if self._count < self.capacity:
                self._count += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def keys_for(self, name: str) -> List[str]:
        """Series keys of metric ``name`` (any label set).

        For histograms this returns the *base* keys (use them with
        :meth:`windowed_percentile`); for counters/gauges the full
        series keys.
        """
        bases = set()
        with self._lock:
            keys = list(self._series)
            meta_keys = list(self.meta)
        for base in meta_keys:
            if base == name or base.startswith(name + "{"):
                bases.add(base)
        if bases:
            return sorted(bases)
        return sorted(
            k for k in keys if (k == name or k.startswith(name + "{")) and "#" not in k
        )

    def _chronological(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) of a series, oldest first (lock held by caller)."""
        ring = self._series.get(key)
        count = self._count
        if ring is None or count == 0:
            return np.empty(0), np.empty(0)
        if count < self.capacity:
            return self._times[:count].copy(), ring[:count].copy()
        pos = self._pos
        order = np.concatenate([np.arange(pos, self.capacity), np.arange(0, pos)])
        return self._times[order], ring[order]

    def series(
        self, key: str, window: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """A series' ``(times, values)`` arrays, oldest first.

        With ``window`` (seconds), only the ticks within it of the
        newest tick are returned.  NaN entries (ticks where the series
        did not exist) are dropped.
        """
        with self._lock:
            times, values = self._chronological(key)
        keep = ~np.isnan(values)
        times, values = times[keep], values[keep]
        if window is not None and times.size:
            keep = times >= times[-1] - window
            times, values = times[keep], values[keep]
        return times, values

    def latest(self, key: str) -> Optional[float]:
        """The newest recorded value of a series (None when absent)."""
        _, values = self.series(key)
        return float(values[-1]) if values.size else None

    def rate(self, key: str, window: Optional[float] = None) -> Optional[float]:
        """Per-second increase of a (cumulative) series over the window.

        ``None`` with fewer than two samples.  A counter reset mid-ring
        (process restart without sidecar recovery) clamps to 0.
        """
        times, values = self.series(key, window)
        if times.size < 2 or times[-1] <= times[0]:
            return None
        return max(0.0, float(values[-1] - values[0]) / float(times[-1] - times[0]))

    def trend(self, key: str, window: Optional[float] = None) -> Optional[float]:
        """Least-squares slope (units/second) of a series over the window."""
        times, values = self.series(key, window)
        if times.size < 2:
            return None
        t = times - times.mean()
        denominator = float(np.dot(t, t))
        if denominator <= 0.0:
            return None
        return float(np.dot(t, values - values.mean()) / denominator)

    def windowed_percentile(
        self, base_key: str, q: float, window: Optional[float] = None
    ) -> Optional[float]:
        """Quantile of a histogram over the observations *inside* the window.

        Subtracts the cumulative bucket counts at the window's start
        from those at its end and interpolates inside the containing
        bucket — the same estimator :meth:`Histogram.percentile` uses,
        applied to the window's delta distribution.  ``None`` when the
        window saw no observations.
        """
        info = self.meta.get(base_key)
        if info is None:
            return None
        bounds = info["buckets"]
        deltas = []
        for i in range(len(bounds) + 1):
            times, values = self.series(f"{base_key}#b{i}", window)
            if values.size < 2:
                return None
            deltas.append(max(0.0, float(values[-1] - values[0])))
        total = sum(deltas)
        if total <= 0.0:
            return None
        target = q * total
        cumulative = 0.0
        lower = 0.0
        for i, bound in enumerate(bounds):
            in_bucket = deltas[i]
            if cumulative + in_bucket >= target and in_bucket > 0:
                fraction = (target - cumulative) / in_bucket
                return float(lower + fraction * (bound - lower))
            cumulative += in_bucket
            lower = bound
        return float(bounds[-1])

    # ------------------------------------------------------------------
    # Persistence (checkpoint sidecar)
    # ------------------------------------------------------------------
    def to_blob(self) -> dict:
        """Serialize to a JSON-able dict (delta-encoded series)."""
        with self._lock:
            keys = sorted(self._series)
            times, _ = self._chronological(keys[0]) if keys else (np.empty(0), None)
            if not keys and self._count:
                times = (
                    self._times[: self._count].copy()
                    if self._count < self.capacity
                    else self._times[
                        np.concatenate(
                            [np.arange(self._pos, self.capacity), np.arange(0, self._pos)]
                        )
                    ]
                )
            series = {}
            for key in keys:
                _, values = self._chronological(key)
                series[key] = _delta_encode(values)
            return {
                "version": 1,
                "capacity": self.capacity,
                "times": _delta_encode(times),
                "series": series,
                "meta": {k: dict(v) for k, v in self.meta.items()},
            }

    @classmethod
    def from_blob(cls, blob: dict, capacity: Optional[int] = None) -> "HistoryRing":
        """Rebuild a ring from :meth:`to_blob` output.

        ``capacity`` overrides the persisted capacity (the restored
        ticks are replayed into the new ring, newest-first-retained).
        """
        if blob.get("version") != 1:
            raise ValueError(f"unsupported history blob version {blob.get('version')!r}")
        ring = cls(capacity=capacity or int(blob["capacity"]))
        ring.meta.update(blob.get("meta", {}))
        times = _delta_decode(blob.get("times", []))
        decoded = {
            key: _delta_decode(encoded) for key, encoded in blob.get("series", {}).items()
        }
        for i, t in enumerate(times):
            with ring._lock:
                pos = ring._pos
                ring._times[pos] = t
                for key, values in decoded.items():
                    series = ring._series.get(key)
                    if series is None:
                        series = np.full(ring.capacity, math.nan)
                        ring._series[key] = series
                    series[pos] = values[i] if i < len(values) else math.nan
                ring._pos = (pos + 1) % ring.capacity
                if ring._count < ring.capacity:
                    ring._count += 1
        return ring


def _delta_encode(values: np.ndarray) -> List:
    """``[v0, v1-v0, v2-v1, ...]`` with NaN gaps kept literal.

    A NaN entry (series absent at that tick) breaks the delta chain:
    it is stored as ``None`` and the next finite value restarts as an
    absolute value (also the only way to keep the JSON strict).
    """
    out: List = []
    previous: Optional[float] = None
    for raw in values.tolist():
        if raw != raw:  # NaN
            out.append(None)
            previous = None
            continue
        out.append(raw if previous is None else raw - previous)
        previous = raw
    return out


def _delta_decode(encoded: List) -> List[float]:
    out: List[float] = []
    previous: Optional[float] = None
    for entry in encoded:
        if entry is None:
            out.append(math.nan)
            previous = None
            continue
        value = float(entry) if previous is None else previous + float(entry)
        out.append(value)
        previous = value
    return out
