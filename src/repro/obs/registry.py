"""Process-local metrics registry with numpy-backed instruments.

Design constraints, in order:

1. **Hot-path cost.**  Instruments sit on per-batch and per-chunk code
   paths (never per-tuple; the engine's per-tuple counters stay plain
   attributes sampled through :class:`OperatorView`).  Each instrument
   owns a small private ``float64`` array and an update is one fancy-free
   ``array[i] += v`` — no lock, no dict lookup, no allocation.  With no
   exporter attached nothing else ever runs: snapshots, percentile
   estimation and rendering all happen on the *reader's* side.
2. **One namespace.**  Instruments are keyed by ``(kind, name, labels)``
   and get-or-created, so every layer that asks for
   ``counter("results_dropped_total", query="q1")`` shares the same
   cell; the METRICS verb, ``statistics(detailed=True)`` and
   ``stage_timings()`` are all views over the same arrays.
3. **No lifetime coupling.**  Operator views hold weak references; a
   dropped query's operators disappear from snapshots at the next
   collection instead of keeping the plan graph alive.

Thread-safety: instrument *creation* takes the registry lock;
*updates* are plain ``+=`` on a private array slot, safe under the GIL
for single-writer instruments and intentionally tolerant of the rare
lost increment for multi-writer counters (telemetry, not accounting).
Writers that need exactness (the sharded coordinator's decode/merge
stages) already serialize on their own condition variable.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "OperatorView",
    "Registry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
]

#: Upper bounds (seconds) of the default latency histogram, spanning
#: 100 µs .. 60 s; the overflow bucket catches anything slower.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, bytes, seconds)."""

    __slots__ = ("name", "labels", "_data")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._data = np.zeros(1)

    def inc(self, amount: float = 1.0) -> None:
        self._data[0] += amount

    @property
    def value(self) -> float:
        return float(self._data[0])

    def reset(self) -> None:
        self._data[0] = 0.0

    def snapshot_value(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A point-in-time value (queue depth, last checkpoint id)."""

    __slots__ = ("name", "labels", "_data")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._data = np.zeros(1)

    def set(self, value: float) -> None:
        self._data[0] = value

    def inc(self, amount: float = 1.0) -> None:
        self._data[0] += amount

    @property
    def value(self) -> float:
        return float(self._data[0])

    def snapshot_value(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with sum/count and percentile estimation.

    ``observe`` classifies a value into its bucket with one
    ``searchsorted`` over the precomputed bound array and bumps three
    array slots; the bucket layout is frozen at construction so
    concurrent observers never resize anything.
    """

    __slots__ = ("name", "labels", "_bounds", "_counts", "_accum")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        bounds = np.asarray(sorted(float(b) for b in buckets), dtype=np.float64)
        if bounds.size == 0:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self._bounds = bounds
        self._counts = np.zeros(bounds.size + 1)  # last slot: overflow
        self._accum = np.zeros(2)  # [sum, count]

    def observe(self, value: float, count: int = 1) -> None:
        self._counts[int(np.searchsorted(self._bounds, value))] += count
        self._accum[0] += value * count
        self._accum[1] += count

    @property
    def count(self) -> float:
        return float(self._accum[1])

    @property
    def sum(self) -> float:
        return float(self._accum[0])

    @property
    def mean(self) -> Optional[float]:
        count = self._accum[1]
        return float(self._accum[0] / count) if count > 0 else None

    @property
    def bounds(self) -> Tuple[float, ...]:
        return tuple(self._bounds.tolist())

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the containing bucket; values in the
        overflow bucket report the largest finite bound.  ``None`` when
        nothing has been observed.
        """
        total = self._accum[1]
        if total <= 0:
            return None
        target = q * total
        cumulative = 0.0
        lower = 0.0
        for i, bound in enumerate(self._bounds):
            in_bucket = self._counts[i]
            if cumulative + in_bucket >= target and in_bucket > 0:
                fraction = (target - cumulative) / in_bucket
                return float(lower + fraction * (bound - lower))
            cumulative += in_bucket
            lower = bound
        return float(self._bounds[-1])

    def percentiles(self, qs: Iterable[float]) -> Dict[str, Optional[float]]:
        return {f"p{round(q * 100):d}": self.percentile(q) for q in qs}

    def reset(self) -> None:
        self._counts[:] = 0.0
        self._accum[:] = 0.0

    def snapshot_value(self) -> dict:
        return {
            "buckets": self._bounds.tolist(),
            "counts": self._counts.tolist(),
            "sum": float(self._accum[0]),
            "count": float(self._accum[1]),
            "percentiles": self.percentiles((0.5, 0.95, 0.99)),
        }


class OperatorView:
    """A live view over one operator's plain counter attributes.

    The engine's per-tuple path keeps its counters as ordinary instance
    attributes (an ``int`` ``+=`` is the cheapest update Python offers
    and runs per tuple); the registry reads them *at collection time*
    through a weak reference instead of forcing the hot path through an
    instrument.  ``stats()`` returns the same 5-field row shape as
    ``ShardRunner.statistics_rows()`` so callers can build their
    ``OperatorStats`` without another mapping layer.
    """

    __slots__ = ("scope", "_ref")
    kind = "operator"

    def __init__(self, scope: str, operator) -> None:
        self.scope = scope
        self._ref = weakref.ref(operator)

    @property
    def operator(self):
        return self._ref()

    def stats(self) -> Optional[Tuple[str, int, int, int, float]]:
        op = self._ref()
        if op is None:
            return None
        return (
            op.name,
            op.tuples_in,
            op.tuples_out,
            op.batches_in,
            op.processing_seconds,
        )

    def snapshot_value(self) -> Optional[dict]:
        row = self.stats()
        if row is None:
            return None
        name, tuples_in, tuples_out, batches_in, seconds = row
        return {
            "operator": name,
            "tuples_in": tuples_in,
            "tuples_out": tuples_out,
            "batches_in": batches_in,
            "processing_seconds": seconds,
        }


class Registry:
    """Get-or-create home for every instrument in the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, str, LabelItems], object] = {}
        self._views: Dict[Tuple[str, str, int], OperatorView] = {}

    # ------------------------------------------------------------------
    # Instrument construction (locked; updates are lock-free)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, _label_items(labels))

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, _label_items(labels))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        key = ("histogram", name, _label_items(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = Histogram(
                    name, key[2], buckets=buckets or DEFAULT_LATENCY_BUCKETS
                )
                self._instruments[key] = instrument
        return instrument

    def _get_or_create(self, cls, name: str, labels: LabelItems):
        key = (cls.kind, name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, labels)
                self._instruments[key] = instrument
        return instrument

    def operator_view(self, scope: str, operator) -> OperatorView:
        """Register (or fetch) the live view over one operator."""
        key = (scope, operator.name, id(operator))
        with self._lock:
            view = self._views.get(key)
            if view is None or view.operator is not operator:
                view = OperatorView(scope, operator)
                self._views[key] = view
        return view

    def operator_views(self, scope: Optional[str] = None) -> List[OperatorView]:
        """Live operator views, optionally restricted to one scope."""
        with self._lock:
            items = list(self._views.items())
        alive = []
        dead = []
        for key, view in items:
            if view.operator is None:
                dead.append(key)
            elif scope is None or view.scope == scope:
                alive.append(view)
        if dead:
            with self._lock:
                for key in dead:
                    self._views.pop(key, None)
        return alive

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def instruments(self) -> List[object]:
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> dict:
        """JSON-able view of every instrument (served by METRICS)."""
        out: dict = {"counters": [], "gauges": [], "histograms": [], "operators": []}
        for instrument in self.instruments():
            entry = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
            }
            entry.update(instrument.snapshot_value())
            out[instrument.kind + "s"].append(entry)
        for view in self.operator_views():
            value = view.snapshot_value()
            if value is not None:
                value["scope"] = view.scope
                out["operators"].append(value)
        return out

    def reset(self) -> None:
        """Zero every instrument and drop operator views (test isolation)."""
        for instrument in self.instruments():
            if hasattr(instrument, "reset"):
                instrument.reset()
            elif isinstance(instrument, Gauge):
                instrument.set(0.0)
        with self._lock:
            self._views.clear()


_default_registry = Registry()


def get_registry() -> Registry:
    """Return the process-wide default registry."""
    return _default_registry
