"""Declarative health rules evaluated off the metrics history ring.

A :class:`HealthRule` is one sentence of operational policy —
``latency_p99 > 50ms for 10s`` — compiled from a small grammar::

    <metric>[{label="value",...}] [<stat>] <op> <threshold>[ms|s] [for <N>s] [over <W>s]

* ``metric`` — a registry metric name (``repro_query_latency_seconds``).
  Without a label selector the rule is a *wildcard*: it evaluates every
  series of that name in the ring and reports the worst offender.
* ``stat`` — how to read the series: ``value`` (latest sample, the
  default for gauges), ``rate`` (per-second increase over the window,
  the burn-rate primitive for counters), or ``p50``/``p95``/``p99``
  (windowed histogram quantiles).
* ``op``/``threshold`` — ``>``, ``>=``, ``<``, ``<=`` against a number;
  an ``ms`` or ``s`` suffix converts to seconds.
* ``for Ns`` — hysteresis: the condition must hold continuously for N
  seconds before the rule *fires* (state ``pending`` in between), so a
  single slow tick does not page anyone.
* ``over Ws`` — the history window for ``rate``/quantile stats
  (default 30s).

The :class:`HealthEngine` owns a rule set, evaluates it against a
:class:`~repro.obs.history.HistoryRing` on demand (each METRICS/HEALTH
poll or recorder tick), tracks per-rule ``ok → pending → firing``
state, and invokes registered alert callbacks exactly once per
transition into ``firing`` — the actuation point the adaptive
repartitioner and future re-planner subscribe to via
``QuerySession.on_alert``.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, List, Optional, Sequence

from .history import HistoryRing
from .trace import trace_clock

__all__ = ["HealthRule", "HealthEngine", "parse_rule", "default_rules"]

_STATS = ("value", "rate", "p50", "p95", "p99")
_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_RULE_RE = re.compile(
    r"""^\s*
    (?P<metric>[A-Za-z_:][A-Za-z0-9_:]*)
    (?P<labels>\{[^}]*\})?
    (?:\s+(?P<stat>value|rate|p50|p95|p99))?
    \s*(?P<op>>=|<=|>|<)\s*
    (?P<threshold>-?\d+(?:\.\d+)?)(?P<unit>ms|s)?
    (?:\s+for\s+(?P<hold>\d+(?:\.\d+)?)s)?
    (?:\s+over\s+(?P<window>\d+(?:\.\d+)?)s)?
    \s*$""",
    re.VERBOSE,
)


class HealthRule:
    """One compiled rule plus its evaluation state."""

    def __init__(
        self,
        name: str,
        metric: str,
        stat: str = "value",
        op: str = ">",
        threshold: float = 0.0,
        labels: Optional[str] = None,
        for_seconds: float = 0.0,
        window: float = 30.0,
    ):
        if stat not in _STATS:
            raise ValueError(f"unknown stat {stat!r}; expected one of {_STATS}")
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}")
        self.name = name
        self.metric = metric
        self.stat = stat
        self.op = op
        self.threshold = float(threshold)
        #: Exact series key when the rule pins labels; None = wildcard.
        self.labels = labels
        self.for_seconds = float(for_seconds)
        self.window = float(window)
        # Evaluation state.
        self.state = "ok"  # ok | pending | firing
        self.since: Optional[float] = None  # when the condition started holding
        self.value: Optional[float] = None  # last observed stat value
        self.series: Optional[str] = None  # worst offender (wildcards)

    def _keys(self, history: HistoryRing) -> List[str]:
        if self.labels is not None:
            return [self.metric + self.labels]
        return history.keys_for(self.metric)

    def _read(self, history: HistoryRing, key: str) -> Optional[float]:
        if self.stat == "value":
            return history.latest(key)
        if self.stat == "rate":
            return history.rate(key, self.window)
        q = {"p50": 0.50, "p95": 0.95, "p99": 0.99}[self.stat]
        return history.windowed_percentile(key, q, self.window)

    def evaluate(self, history: HistoryRing, now: float) -> bool:
        """Advance the rule's state; returns True on an ok/pending→firing edge."""
        compare = _OPS[self.op]
        worst: Optional[float] = None
        worst_key: Optional[str] = None
        breaching = False
        for key in self._keys(history):
            value = self._read(history, key)
            if value is None:
                continue
            if worst is None or compare(value, worst) or value == worst:
                worst, worst_key = value, key
            if compare(value, self.threshold):
                breaching = True
        self.value = worst
        self.series = worst_key
        if not breaching:
            self.state = "ok"
            self.since = None
            return False
        if self.since is None:
            self.since = now
        held = now - self.since
        if held + 1e-9 >= self.for_seconds:
            fired = self.state != "firing"
            self.state = "firing"
            return fired
        self.state = "pending"
        return False

    def describe(self) -> dict:
        """JSON-able status (the HEALTH verb's payload per rule)."""
        return {
            "name": self.name,
            "rule": str(self),
            "state": self.state,
            "value": self.value,
            "series": self.series,
            "since": self.since,
        }

    def __str__(self) -> str:
        parts = [self.metric + (self.labels or "")]
        if self.stat != "value":
            parts.append(self.stat)
        parts.append(f"{self.op} {self.threshold:g}")
        if self.for_seconds:
            parts.append(f"for {self.for_seconds:g}s")
        return " ".join(parts)


def parse_rule(text: str, name: Optional[str] = None) -> HealthRule:
    """Compile one rule from the grammar in the module docs."""
    match = _RULE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable health rule: {text!r}")
    threshold = float(match.group("threshold"))
    if match.group("unit") == "ms":
        threshold /= 1000.0
    return HealthRule(
        name=name or match.group("metric"),
        metric=match.group("metric"),
        stat=match.group("stat") or "value",
        op=match.group("op"),
        threshold=threshold,
        labels=match.group("labels"),
        for_seconds=float(match.group("hold") or 0.0),
        window=float(match.group("window") or 30.0),
    )


def default_rules() -> List[HealthRule]:
    """The stock rule set covering the failure modes the stack can have."""
    specs = [
        ("query_latency_p99", "repro_query_latency_seconds p99 > 50ms for 10s"),
        ("shard_stall_rate", "repro_shard_stalls_total rate > 5 for 5s over 10s"),
        ("subscriber_drop_rate", "repro_subscriber_dropped_total rate > 10 over 10s"),
        ("replay_trim_pressure", "repro_replay_trimmed_total rate > 100 over 10s"),
        ("shard_ring_occupancy", "repro_shard_outstanding value > 64 for 5s"),
    ]
    return [parse_rule(rule, name=name) for name, rule in specs]


class HealthEngine:
    """Evaluates a rule set against a history ring and dispatches alerts."""

    def __init__(
        self,
        history: HistoryRing,
        rules: Optional[Sequence[HealthRule]] = None,
    ):
        self.history = history
        self.rules: List[HealthRule] = list(default_rules() if rules is None else rules)
        self._lock = threading.Lock()
        self._callbacks: List[Callable[[HealthRule], None]] = []

    def add_rule(self, rule) -> HealthRule:
        """Add a rule (a :class:`HealthRule` or a grammar string)."""
        if isinstance(rule, str):
            rule = parse_rule(rule)
        with self._lock:
            self.rules.append(rule)
        return rule

    def on_alert(self, callback: Callable[[HealthRule], None]) -> None:
        """Invoke ``callback(rule)`` on every transition into ``firing``."""
        with self._lock:
            self._callbacks.append(callback)

    def evaluate(self, now: Optional[float] = None) -> List[HealthRule]:
        """Evaluate every rule; returns the rules that newly fired.

        Callbacks run outside the lock: an alert handler may itself
        query the engine (or tear down the session) without deadlock.
        """
        t = trace_clock() if now is None else float(now)
        with self._lock:
            rules = list(self.rules)
            callbacks = list(self._callbacks)
        fired = [rule for rule in rules if rule.evaluate(self.history, t)]
        for rule in fired:
            for callback in callbacks:
                try:
                    callback(rule)
                except Exception:  # noqa: BLE001 - alerts must not kill the poller
                    pass
        return fired

    def status(self) -> Dict:
        """JSON-able engine status (the HEALTH verb's reply body)."""
        with self._lock:
            rules = list(self.rules)
        return {
            "firing": sorted(r.name for r in rules if r.state == "firing"),
            "pending": sorted(r.name for r in rules if r.state == "pending"),
            "rules": [r.describe() for r in rules],
        }
