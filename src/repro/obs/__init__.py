"""Unified observability: metrics registry, trace propagation, exposition.

Six layers of the stack (batch engine, planner, session, sharded
shm/socket runtime, TCP service, recovery) each grew their own ad-hoc
telemetry dict.  This package replaces them with one process-local
:class:`~repro.obs.registry.Registry` of typed instruments — counters,
gauges and fixed-bucket latency histograms backed by per-instrument
numpy arrays (no lock on the increment path) — plus a trace context
(:mod:`repro.obs.trace`) stamped at ingest and carried through the
columnar wire format into shard workers and back through merge, so
every layer shares one clock and one namespace.

Exposition is pull-based: :meth:`Registry.snapshot` returns a JSON-able
view served by the ``METRICS`` wire verb, :func:`render_prometheus`
renders the text format, and ``python -m repro.obs`` polls a running
server and prints a live table.

The package is a dependency leaf (numpy only), so any layer — including
:mod:`repro.recovery` — may import it without cycles.
"""

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    OperatorView,
    Registry,
    get_registry,
)
from .render import render_prometheus, render_table
from .trace import TraceContext, activate, active, new_trace, trace_clock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "OperatorView",
    "Registry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "render_prometheus",
    "render_table",
    "TraceContext",
    "new_trace",
    "activate",
    "active",
    "trace_clock",
]
