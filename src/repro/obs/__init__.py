"""Unified observability: metrics registry, trace propagation, exposition.

Six layers of the stack (batch engine, planner, session, sharded
shm/socket runtime, TCP service, recovery) each grew their own ad-hoc
telemetry dict.  This package replaces them with one process-local
:class:`~repro.obs.registry.Registry` of typed instruments — counters,
gauges and fixed-bucket latency histograms backed by per-instrument
numpy arrays (no lock on the increment path) — plus a trace context
(:mod:`repro.obs.trace`) stamped at ingest and carried through the
columnar wire format into shard workers and back through merge, so
every layer shares one clock and one namespace.

Exposition is pull-based: :meth:`Registry.snapshot` returns a JSON-able
view served by the ``METRICS`` wire verb, :func:`render_prometheus`
renders the text format, and ``python -m repro.obs`` polls a running
server and prints a live table.

The package is a dependency leaf (numpy only), so any layer — including
:mod:`repro.recovery` — may import it without cycles.
"""

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    OperatorView,
    Registry,
    get_registry,
)
from .health import HealthEngine, HealthRule, default_rules, parse_rule
from .history import HistoryRing, flatten_snapshot
from .render import render_prometheus, render_table
from .spans import (
    DEFAULT_TRACE_SAMPLE,
    SpanBuffer,
    activate_parent,
    chunk_span_id,
    current_parent,
    exec_span_id,
    export_chrome_trace,
    get_trace_sample,
    local_spans,
    record_span,
    root_span_id,
    sampled,
    sampled_trace,
    set_trace_sample,
)
from .trace import TraceContext, activate, active, new_trace, trace_clock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "OperatorView",
    "Registry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "render_prometheus",
    "render_table",
    "TraceContext",
    "new_trace",
    "activate",
    "active",
    "trace_clock",
    # Spans (flight recorder layer 1)
    "SpanBuffer",
    "DEFAULT_TRACE_SAMPLE",
    "set_trace_sample",
    "get_trace_sample",
    "sampled",
    "sampled_trace",
    "record_span",
    "local_spans",
    "activate_parent",
    "current_parent",
    "root_span_id",
    "chunk_span_id",
    "exec_span_id",
    "export_chrome_trace",
    # History (layer 2)
    "HistoryRing",
    "flatten_snapshot",
    # Health (layer 3)
    "HealthRule",
    "HealthEngine",
    "parse_rule",
    "default_rules",
]
