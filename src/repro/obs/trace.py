"""Trace context: an ingest stamp carried from source to sink.

A :class:`TraceContext` is minted where data first enters the system
(the server's INGEST handler, or ``QuerySession.push_many`` for
embedded use) and records two fields:

``trace_id``
    A process-unique integer (pid-prefixed so ids minted in different
    processes on the same host never collide).  Client callers may
    supply their own id through the INGEST frame header to correlate
    deliveries with their own logs.
``t_ingest``
    The ingest time on :func:`trace_clock` — ``time.monotonic()``,
    which on Linux reads the system-wide ``CLOCK_MONOTONIC``, so a
    stamp minted in the coordinator compares meaningfully against a
    reading taken in a forked shard worker or back in the coordinator
    at delivery time, and is monotone where wall clocks are not.

Propagation is explicit where execution crosses a thread or process
(the context rides the encoded batch as a trailer; see
``repro.streams.serialization``) and implicit within a thread: the
active context lives in a ``threading.local`` that the delivery paths
set around sink calls, so sinks read ``active()`` without any plumbing
through the operator graph.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Optional

__all__ = ["TraceContext", "new_trace", "activate", "active", "trace_clock"]

#: The clock every trace field is read from.
trace_clock = time.monotonic

_counter = itertools.count(1)
_active = threading.local()


class TraceContext:
    """One ingested chunk's identity and origin time (immutable)."""

    __slots__ = ("trace_id", "t_ingest")

    def __init__(self, trace_id: int, t_ingest: float):
        self.trace_id = trace_id
        self.t_ingest = t_ingest

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TraceContext(trace_id={self.trace_id}, t_ingest={self.t_ingest:.6f})"


def new_trace(
    trace_id: Optional[int] = None, t_ingest: Optional[float] = None
) -> TraceContext:
    """Mint a context, stamping the current monotonic time by default."""
    if trace_id is None:
        trace_id = (os.getpid() << 32) | (next(_counter) & 0xFFFFFFFF)
    return TraceContext(int(trace_id), trace_clock() if t_ingest is None else t_ingest)


def activate(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Make ``ctx`` the calling thread's active context.

    Returns the previous context so callers can restore it in a
    ``finally`` block (contexts nest during re-entrant delivery).
    """
    previous = getattr(_active, "ctx", None)
    _active.ctx = ctx
    return previous


def active() -> Optional[TraceContext]:
    """Return the calling thread's active context, if any."""
    return getattr(_active, "ctx", None)
