"""Result-distribution strategies for SUM aggregation over uncertain tuples.

Section 5.1 of the paper compares several ways of characterising the
distribution of ``S = X_1 + ... + X_N`` when the ``X_i`` are
independent continuous random variables carried by stream tuples:

* **CF inversion** -- exact: the CF of the sum is the product of the
  summand CFs; a single (numerical) inversion integral recovers the
  result density.
* **CF approximation** -- fit a Gaussian or Gaussian mixture to the
  closed-form product CF; no inversion integral at all.  The paper's
  Table 2 shows this achieves the best speed/accuracy balance.
* **Histogram-based sampling** -- the Ge & Zdonik baseline: discretise
  each input distribution and sample from the discretised versions.
* **Pairwise convolution** -- the Cheng et al. baseline using ``N - 1``
  numerical convolution integrals.
* **Central Limit Theorem** -- a zero-cost Gaussian approximation using
  only the summand means and variances.
* **Monte Carlo** -- direct sampling from the continuous inputs.

All strategies implement :class:`SumStrategy`, so operators and
benchmarks can swap them freely.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence

import numpy as np

from repro.distributions import (
    Distribution,
    DistributionError,
    Gaussian,
    GaussianMixture,
    HistogramDistribution,
    SumCharacteristicFunction,
    as_rng,
    convolve_sequence,
    fit_gaussian_to_cf,
    fit_mixture_to_cf,
    invert_cf_to_histogram,
)

__all__ = [
    "SumStrategy",
    "CFInversionSum",
    "CFApproximationSum",
    "HistogramSamplingSum",
    "MonteCarloSum",
    "CLTSum",
    "ConvolutionSum",
    "TimeSeriesCLTSum",
    "strategy_by_name",
]


class SumStrategy(abc.ABC):
    """Strategy interface: characterise the distribution of a sum."""

    #: Human-readable name used in benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def result_distribution(self, summands: Sequence[Distribution]) -> Distribution:
        """Return the distribution of the sum of independent ``summands``."""

    @property
    def supports_moments(self) -> bool:
        """True when the result depends only on the summand means/variances.

        Strategies with this property expose
        :meth:`result_from_moments`, which lets batch-mode aggregation
        accumulate window moments as numpy column sums instead of
        walking the summand objects per tuple.
        """
        return False

    def result_from_moments(self, mean: float, variance: float) -> Distribution:
        """Return the sum distribution from precomputed total moments."""
        raise NotImplementedError(f"{type(self).__name__} cannot work from moments alone")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


def _check_summands(summands: Sequence[Distribution]) -> Sequence[Distribution]:
    summands = list(summands)
    if not summands:
        raise DistributionError("cannot aggregate an empty window")
    return summands


class CFInversionSum(SumStrategy):
    """Exact result distribution via characteristic-function inversion.

    The product of the summand CFs is inverted numerically on a grid
    (one quadrature per window), yielding the exact result density up
    to discretisation.  This is the "CF (inversion)" row of Table 2:
    exact but comparatively slow.
    """

    name = "cf_inversion"

    def __init__(self, n_bins: int = 256, n_frequencies: int = 2048):
        self.n_bins = n_bins
        self.n_frequencies = n_frequencies

    def result_distribution(self, summands: Sequence[Distribution]) -> Distribution:
        summands = _check_summands(summands)
        cf = SumCharacteristicFunction(summands)
        return invert_cf_to_histogram(
            cf, n_bins=self.n_bins, n_frequencies=self.n_frequencies
        )


class CFApproximationSum(SumStrategy):
    """Approximate the product CF with a Gaussian or Gaussian mixture.

    With ``n_components == 1`` the fit reduces to matching the first two
    cumulants of the sum (closed form, no optimisation), which is the
    configuration used for Table 2.  With more components, a small
    least-squares fit against the product CF captures skewed or
    multi-modal sums.
    """

    name = "cf_approx"

    def __init__(self, n_components: int = 1, n_frequencies: int = 64):
        if n_components < 1:
            raise ValueError("n_components must be at least 1")
        self.n_components = n_components
        self.n_frequencies = n_frequencies

    def result_distribution(self, summands: Sequence[Distribution]) -> Distribution:
        summands = _check_summands(summands)
        cf = SumCharacteristicFunction(summands)
        if self.n_components == 1:
            return fit_gaussian_to_cf(cf)
        return fit_mixture_to_cf(
            cf, n_components=self.n_components, n_frequencies=self.n_frequencies
        )

    @property
    def supports_moments(self) -> bool:
        # The single-component fit matches the first two cumulants of
        # the sum, which are exactly the summed means and variances;
        # multi-component fits need the full product CF.
        return self.n_components == 1

    def result_from_moments(self, mean: float, variance: float) -> Distribution:
        if self.n_components != 1:
            raise NotImplementedError("multi-component CF fits need the full summand CFs")
        if not np.isfinite(mean) or not np.isfinite(variance) or variance <= 0:
            raise DistributionError("cannot fit a Gaussian to non-finite or non-positive moments")
        return Gaussian(mean, math.sqrt(variance))


class HistogramSamplingSum(SumStrategy):
    """Histogram-based sampling baseline (Ge & Zdonik style).

    Each input distribution is discretised into an equal-width
    histogram; the sum distribution is then estimated by drawing joint
    samples from the discretised inputs and histogramming the sampled
    sums.  Accuracy is limited both by the per-input discretisation and
    by the sampling noise, which is what Table 2 reflects.
    """

    name = "histogram"

    def __init__(
        self,
        bins_per_input: int = 32,
        n_samples: int = 512,
        result_bins: int = 128,
        rng: np.random.Generator | int | None = None,
    ):
        if bins_per_input < 2:
            raise ValueError("bins_per_input must be at least 2")
        if n_samples < 16:
            raise ValueError("n_samples must be at least 16")
        self.bins_per_input = bins_per_input
        self.n_samples = n_samples
        self.result_bins = result_bins
        self._rng = as_rng(rng)

    def result_distribution(self, summands: Sequence[Distribution]) -> Distribution:
        summands = _check_summands(summands)
        totals = np.zeros(self.n_samples)
        for dist in summands:
            hist = (
                dist
                if isinstance(dist, HistogramDistribution)
                else HistogramDistribution.from_distribution(dist, n_bins=self.bins_per_input)
            )
            totals += hist.sample(self.n_samples, rng=self._rng)
        return HistogramDistribution.from_samples(totals, n_bins=self.result_bins)


class MonteCarloSum(SumStrategy):
    """Direct Monte-Carlo estimate of the sum distribution.

    Samples each summand from its continuous distribution (no
    discretisation) and histogram the sums.  Used as a sanity baseline
    and in property tests.
    """

    name = "monte_carlo"

    def __init__(
        self,
        n_samples: int = 2048,
        result_bins: int = 128,
        rng: np.random.Generator | int | None = None,
    ):
        if n_samples < 16:
            raise ValueError("n_samples must be at least 16")
        self.n_samples = n_samples
        self.result_bins = result_bins
        self._rng = as_rng(rng)

    def result_distribution(self, summands: Sequence[Distribution]) -> Distribution:
        summands = _check_summands(summands)
        totals = np.zeros(self.n_samples)
        for dist in summands:
            totals += np.asarray(dist.sample(self.n_samples, rng=self._rng), dtype=float)
        return HistogramDistribution.from_samples(totals, n_bins=self.result_bins)


class CLTSum(SumStrategy):
    """Central Limit Theorem approximation for independent summands.

    When the number of effective summands is large, the sum converges
    to a Gaussian regardless of the summand shapes; the only work is
    adding up means and variances, so "the computation cost for the
    result distribution is almost zero" (Section 5.1).
    """

    name = "clt"

    def result_distribution(self, summands: Sequence[Distribution]) -> Distribution:
        summands = _check_summands(summands)
        mean = float(sum(float(np.asarray(d.mean()).ravel()[0]) for d in summands))
        variance = float(sum(float(np.asarray(d.variance()).ravel()[0]) for d in summands))
        return self.result_from_moments(mean, variance)

    @property
    def supports_moments(self) -> bool:
        return True

    def result_from_moments(self, mean: float, variance: float) -> Distribution:
        if variance <= 0:
            raise DistributionError("CLT approximation requires positive total variance")
        return Gaussian(mean, math.sqrt(variance))


class ConvolutionSum(SumStrategy):
    """Pairwise numerical convolution baseline (``N - 1`` integrals).

    This is the integral-based approach of Cheng et al. that the paper
    deems infeasible for stream processing; it is provided as a
    correctness oracle for small windows and for the ablation
    benchmarks.
    """

    name = "convolution"

    def __init__(self, n_points: int = 256, max_bins: int = 2048):
        self.n_points = n_points
        self.max_bins = max_bins

    def result_distribution(self, summands: Sequence[Distribution]) -> Distribution:
        summands = _check_summands(summands)
        return convolve_sequence(summands, n_points=self.n_points, max_bins=self.max_bins)


class TimeSeriesCLTSum(SumStrategy):
    """CLT for sums of *correlated* summands forming an MA-type series.

    For a (weakly stationary) moving-average series, the sum of ``n``
    consecutive values is asymptotically Gaussian with

    ``mean = n * mu`` and
    ``variance = n * (gamma_0 + 2 * sum_k (1 - k/n) * gamma_k)``

    where ``gamma_k`` is the lag-``k`` autocovariance (Section 5.1,
    "Correlated variables").  Autocovariances can be supplied from a
    fitted model or estimated from the realised series by
    :mod:`repro.radar.timeseries`.
    """

    name = "timeseries_clt"

    def __init__(self, autocovariances: Sequence[float]):
        gammas = np.asarray(autocovariances, dtype=float)
        if gammas.size == 0:
            raise ValueError("at least the lag-0 autocovariance is required")
        if gammas[0] <= 0:
            raise ValueError("lag-0 autocovariance (variance) must be positive")
        self.autocovariances = gammas

    def result_distribution(self, summands: Sequence[Distribution]) -> Distribution:
        summands = _check_summands(summands)
        n = len(summands)
        mean = float(sum(float(np.asarray(d.mean()).ravel()[0]) for d in summands))
        gamma0 = float(self.autocovariances[0])
        variance = n * gamma0
        max_lag = min(len(self.autocovariances) - 1, n - 1)
        for lag in range(1, max_lag + 1):
            variance += 2.0 * (n - lag) * float(self.autocovariances[lag])
        variance = max(variance, 1e-12)
        return Gaussian(mean, math.sqrt(variance))


_STRATEGIES = {
    CFInversionSum.name: CFInversionSum,
    CFApproximationSum.name: CFApproximationSum,
    HistogramSamplingSum.name: HistogramSamplingSum,
    MonteCarloSum.name: MonteCarloSum,
    CLTSum.name: CLTSum,
    ConvolutionSum.name: ConvolutionSum,
}


def strategy_by_name(name: str, **kwargs) -> SumStrategy:
    """Instantiate a strategy from its benchmark-table name."""
    try:
        cls = _STRATEGIES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown aggregation strategy {name!r}; choose from {sorted(_STRATEGIES)}"
        ) from exc
    return cls(**kwargs)
