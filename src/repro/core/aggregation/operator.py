"""Windowed aggregation operators over uncertain tuple streams.

These operators plug the result-distribution strategies of
:mod:`repro.core.aggregation.strategies` into the box-arrow engine:
tuples are buffered into windows; when a window closes the operator
characterises the distribution of the aggregate (SUM, AVG, COUNT, MAX,
MIN) of a chosen uncertain attribute and emits one result tuple per
window (per group for GROUP BY) carrying that distribution.

A HAVING clause is supported in its probabilistic form: "emit the group
if the aggregate exceeds the threshold with at least the requested
probability", which is how query Q1's ``Having sum(weight) > 200
pounds`` behaves once weights and group membership become uncertain.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import Distribution, Gaussian
from repro.streams.batch import TupleBatch
from repro.streams.lineage import are_independent
from repro.streams.operators.base import Operator, OperatorError
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowBuffer, WindowSpec

from .order_statistics import max_distribution, min_distribution
from .strategies import SumStrategy
from .transforms import affine_distribution

__all__ = ["HavingClause", "UncertainAggregate", "GroupByAggregate", "AGGREGATE_FUNCTIONS"]

#: Aggregate functions supported by the uncertain aggregation operators.
AGGREGATE_FUNCTIONS = ("sum", "avg", "count", "max", "min")

#: Standard deviation assigned to deterministic numeric summands so they
#: can participate in CF-based computations without special cases.
_DEGENERATE_SIGMA = 1e-9


@dataclass(frozen=True)
class HavingClause:
    """A probabilistic HAVING filter on the aggregate result.

    Emit the result only if ``P[aggregate > threshold] >= min_probability``.
    With the default ``min_probability=0.5`` this reduces to the common
    "expected value exceeds the threshold" reading for symmetric result
    distributions.
    """

    threshold: float
    min_probability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_probability <= 1.0:
            raise ValueError("min_probability must lie in [0, 1]")

    def accepts(self, result: Distribution) -> bool:
        return result.prob_greater_than(self.threshold) >= self.min_probability

    def probability(self, result: Distribution) -> float:
        return result.prob_greater_than(self.threshold)


def _extract_summand(item: StreamTuple, attribute: str) -> Distribution:
    """Return the attribute as a Distribution, promoting numeric constants."""
    if item.has_uncertain(attribute):
        return item.distribution(attribute)
    if item.has_value(attribute):
        value = item.value(attribute)
        if isinstance(value, Real):
            return Gaussian(float(value), _DEGENERATE_SIGMA)
        raise OperatorError(
            f"attribute {attribute!r} is neither a distribution nor numeric: {type(value).__name__}"
        )
    raise OperatorError(f"tuple is missing aggregation attribute {attribute!r}")


def _window_moments(items: Sequence[StreamTuple], attribute: str) -> Tuple[float, float]:
    """Accumulate the total mean/variance of a window as numpy column sums.

    Delegates the per-row moment extraction to
    :meth:`TupleBatch.moments` (Gaussian parameters by attribute
    access, generic ``mean()``/``variance()`` otherwise); rows missing
    the uncertain attribute fall back to :func:`_extract_summand`,
    which promotes deterministic numerics and raises the same errors
    as the tuple path.
    """
    columns = TupleBatch(items).moments(attribute)
    if columns is None:
        summands = [_extract_summand(item, attribute) for item in items]
        columns = (
            np.asarray(
                [float(np.asarray(d.mean()).ravel()[0]) for d in summands], dtype=np.float64
            ),
            np.asarray(
                [float(np.asarray(d.variance()).ravel()[0]) for d in summands],
                dtype=np.float64,
            ),
        )
    means, variances = columns
    return float(np.sum(means)), float(np.sum(variances))


def _bulk_process_batch(operator, batch: TupleBatch) -> TupleBatch:
    """Shared batch kernel for the windowed aggregates.

    Bulk-adds the batch to the operator's window buffer and emits the
    closed windows with the vectorised (moment-based) aggregation path.
    """
    closes = operator._buffer.add_many(batch)
    return TupleBatch(operator._emit(closes, vectorized=True))


def _aggregate_window(
    items: Sequence[StreamTuple],
    attribute: str,
    function: str,
    strategy: SumStrategy,
    check_independence: bool,
    vectorized: bool = False,
) -> Tuple[Distribution | int, List[StreamTuple]]:
    """Compute the aggregate distribution for one closed window.

    With ``vectorized=True`` (batch execution path) and a strategy whose
    result depends only on the first two moments (CF approximation with
    one component, CLT), SUM/AVG windows are computed from numpy moment
    sums instead of materialising per-tuple summand objects.
    """
    items = list(items)
    if not items:
        raise OperatorError("cannot aggregate an empty window")
    if check_independence and function in ("sum", "avg") and not are_independent(items):
        raise OperatorError(
            "window contains tuples with overlapping lineage; use a lineage-aware "
            "aggregation (see repro.core.lineage_ops) or disable check_independence"
        )
    if function == "count":
        return len(items), items
    if vectorized and function in ("sum", "avg") and strategy.supports_moments:
        mean, variance = _window_moments(items, attribute)
        total = strategy.result_from_moments(mean, variance)
        if function == "avg":
            return affine_distribution(total, scale=1.0 / len(items)), items
        return total, items
    summands = [_extract_summand(item, attribute) for item in items]
    if function == "sum":
        return strategy.result_distribution(summands), items
    if function == "avg":
        total = strategy.result_distribution(summands)
        return affine_distribution(total, scale=1.0 / len(summands)), items
    if function == "max":
        return max_distribution(summands), items
    if function == "min":
        return min_distribution(summands), items
    raise OperatorError(f"unsupported aggregate function {function!r}")


def _result_tuple_from_parts(
    window_start: float,
    window_end: float,
    result: Distribution | int,
    count: int,
    lineage: frozenset,
    output_attribute: str,
    group_key: Optional[Hashable] = None,
    having: Optional[HavingClause] = None,
) -> Optional[StreamTuple]:
    """Build a window result tuple from already-reduced parts.

    Shared by the in-window aggregation path (which reduces the window
    items itself) and the sharded runtime's partial-state merge
    (:mod:`repro.core.aggregation.merge`), so both produce structurally
    identical result tuples.
    """
    values: Dict[str, Any] = {
        "window_start": window_start,
        "window_end": window_end,
        "window_count": count,
    }
    uncertain: Dict[str, Distribution] = {}
    if group_key is not None:
        values["group"] = group_key
    if isinstance(result, Distribution):
        if having is not None:
            if not having.accepts(result):
                return None
            values["having_probability"] = having.probability(result)
        uncertain[output_attribute] = result
        values[f"{output_attribute}_mean"] = float(np.asarray(result.mean()).ravel()[0])
    else:
        if having is not None and not result > having.threshold:
            return None
        values[output_attribute] = result
    return StreamTuple(
        timestamp=window_end,
        values=values,
        uncertain=uncertain,
        lineage=lineage,
    )


def _result_tuple(
    window_start: float,
    window_end: float,
    result: Distribution | int,
    items: Sequence[StreamTuple],
    output_attribute: str,
    group_key: Optional[Hashable] = None,
    having: Optional[HavingClause] = None,
) -> Optional[StreamTuple]:
    """Build the output tuple for a closed window (or None if filtered out)."""
    lineage = frozenset().union(*(item.lineage for item in items))
    return _result_tuple_from_parts(
        window_start,
        window_end,
        result,
        len(items),
        lineage,
        output_attribute,
        group_key=group_key,
        having=having,
    )


class UncertainAggregate(Operator):
    """Windowed aggregation of one uncertain attribute.

    Parameters
    ----------
    window:
        Window specification (tumbling count/time, etc.).
    attribute:
        Name of the attribute to aggregate.  Uncertain attributes are
        used as-is; deterministic numeric attributes are promoted to
        near-degenerate Gaussians.
    strategy:
        The :class:`SumStrategy` used for SUM/AVG result distributions.
    function:
        One of ``sum``, ``avg``, ``count``, ``max``, ``min``.
    output_attribute:
        Name of the emitted result attribute; defaults to
        ``f"{function}_{attribute}"``.
    having:
        Optional probabilistic HAVING clause.
    check_independence:
        If True (default), reject windows whose tuples share lineage,
        since the independent-summand strategies would silently produce
        a wrong variance for correlated inputs.
    """

    def __init__(
        self,
        window: WindowSpec,
        attribute: str,
        strategy: SumStrategy,
        function: str = "sum",
        output_attribute: Optional[str] = None,
        having: Optional[HavingClause] = None,
        check_independence: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if function not in AGGREGATE_FUNCTIONS:
            raise OperatorError(
                f"unsupported aggregate function {function!r}; choose from {AGGREGATE_FUNCTIONS}"
            )
        self.window = window
        self.attribute = attribute
        self.strategy = strategy
        self.function = function
        self.output_attribute = output_attribute or f"{function}_{attribute}"
        self.having = having
        self.check_independence = check_independence
        self._buffer: WindowBuffer = window.new_buffer()

    def _emit(self, closes, vectorized: bool = False) -> Iterable[StreamTuple]:
        for close in closes:
            if not close.items:
                continue
            result, items = _aggregate_window(
                close.items,
                self.attribute,
                self.function,
                self.strategy,
                self.check_independence,
                vectorized=vectorized,
            )
            out = _result_tuple(
                close.start,
                close.end,
                result,
                items,
                self.output_attribute,
                having=self.having,
            )
            if out is not None:
                yield out

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        yield from self._emit(self._buffer.add(item))

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self._keeps_process_of(UncertainAggregate)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Bulk-add a batch to the window buffer, vectorising closed windows."""
        if not self.supports_batch:
            return super().process_batch(batch)
        return _bulk_process_batch(self, batch)

    def flush(self) -> Iterable[StreamTuple]:
        yield from self._emit(self._buffer.flush())

    def state_snapshot(self) -> dict:
        # Moments are computed at window close, so the only mutable
        # state is the buffered open window.
        return {"buffer": self._buffer.state_snapshot()}

    def state_restore(self, state: Optional[dict]) -> None:
        if state is None:
            raise OperatorError(f"{self.name!r} expected a buffered-window state")
        self._buffer.state_restore(state["buffer"])


class GroupByAggregate(Operator):
    """Windowed GROUP BY + aggregate + HAVING over uncertain tuples.

    Mirrors the outer block of query Q1: tuples in each window are
    partitioned by a deterministic grouping key (e.g. the shelf area),
    the chosen attribute is aggregated per group, and groups passing the
    probabilistic HAVING clause are emitted, one result tuple per group.

    Parameters
    ----------
    window:
        Window specification; windows close independently of grouping.
    key_function:
        Function of the input tuple returning a hashable group key.
    attribute, strategy, function, having, check_independence:
        As for :class:`UncertainAggregate`.
    """

    def __init__(
        self,
        window: WindowSpec,
        key_function: Callable[[StreamTuple], Hashable],
        attribute: str,
        strategy: SumStrategy,
        function: str = "sum",
        output_attribute: Optional[str] = None,
        having: Optional[HavingClause] = None,
        check_independence: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if function not in AGGREGATE_FUNCTIONS:
            raise OperatorError(
                f"unsupported aggregate function {function!r}; choose from {AGGREGATE_FUNCTIONS}"
            )
        self.window = window
        self.key_function = key_function
        self.attribute = attribute
        self.strategy = strategy
        self.function = function
        self.output_attribute = output_attribute or f"{function}_{attribute}"
        self.having = having
        self.check_independence = check_independence
        self._buffer: WindowBuffer = window.new_buffer()

    def _emit(self, closes, vectorized: bool = False) -> Iterable[StreamTuple]:
        for close in closes:
            if not close.items:
                continue
            groups: Dict[Hashable, List[StreamTuple]] = {}
            for item in close.items:
                groups.setdefault(self.key_function(item), []).append(item)
            for key in sorted(groups, key=repr):
                members = groups[key]
                result, items = _aggregate_window(
                    members,
                    self.attribute,
                    self.function,
                    self.strategy,
                    self.check_independence,
                    vectorized=vectorized,
                )
                out = _result_tuple(
                    close.start,
                    close.end,
                    result,
                    items,
                    self.output_attribute,
                    group_key=key,
                    having=self.having,
                )
                if out is not None:
                    yield out

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        yield from self._emit(self._buffer.add(item))

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self._keeps_process_of(GroupByAggregate)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Bulk-add a batch to the window buffer, vectorising closed windows."""
        if not self.supports_batch:
            return super().process_batch(batch)
        return _bulk_process_batch(self, batch)

    def flush(self) -> Iterable[StreamTuple]:
        yield from self._emit(self._buffer.flush())

    def state_snapshot(self) -> dict:
        return {"buffer": self._buffer.state_snapshot()}

    def state_restore(self, state: Optional[dict]) -> None:
        if state is None:
            raise OperatorError(f"{self.name!r} expected a buffered-window state")
        self._buffer.state_restore(state["buffer"])
