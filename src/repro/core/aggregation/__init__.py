"""Uncertain aggregation: result-distribution strategies and operators."""

from .merge import (
    MERGEABLE_FUNCTIONS,
    MergeError,
    WindowPartial,
    extract_partial,
    merge_sum_distributions,
    merge_window_partials,
)
from .operator import (
    AGGREGATE_FUNCTIONS,
    GroupByAggregate,
    HavingClause,
    UncertainAggregate,
)
from .order_statistics import max_distribution, min_distribution
from .strategies import (
    CFApproximationSum,
    CFInversionSum,
    CLTSum,
    ConvolutionSum,
    HistogramSamplingSum,
    MonteCarloSum,
    SumStrategy,
    TimeSeriesCLTSum,
    strategy_by_name,
)
from .transforms import affine_distribution, scale_distribution, shift_distribution

__all__ = [
    "SumStrategy",
    "CFInversionSum",
    "CFApproximationSum",
    "HistogramSamplingSum",
    "MonteCarloSum",
    "CLTSum",
    "ConvolutionSum",
    "TimeSeriesCLTSum",
    "strategy_by_name",
    "UncertainAggregate",
    "GroupByAggregate",
    "HavingClause",
    "AGGREGATE_FUNCTIONS",
    "max_distribution",
    "min_distribution",
    "shift_distribution",
    "scale_distribution",
    "affine_distribution",
    "MergeError",
    "WindowPartial",
    "extract_partial",
    "merge_sum_distributions",
    "merge_window_partials",
    "MERGEABLE_FUNCTIONS",
]
