"""Order statistics for MAX / MIN aggregation over independent variables.

For independent continuous random variables the distribution of the
maximum has a closed form:

``F_max(x) = prod_i F_i(x)`` and ``f_max(x) = sum_i f_i(x) * prod_{j != i} F_j(x)``

and symmetrically for the minimum.  This is one of the "order
statistics" techniques Section 5.1 lists for computing result
distributions directly, without integration over the joint.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributions import Distribution, DistributionError, HistogramDistribution

__all__ = ["max_distribution", "min_distribution"]


def _shared_grid(dists: Sequence[Distribution], n_points: int) -> np.ndarray:
    lows, highs = zip(*(d.support() for d in dists))
    lo, hi = min(lows), max(highs)
    if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
        raise DistributionError("summand supports must be finite, non-degenerate intervals")
    return np.linspace(lo, hi, n_points)


def max_distribution(
    dists: Sequence[Distribution], n_points: int = 1024
) -> HistogramDistribution:
    """Return the distribution of ``max(X_1, ..., X_N)`` for independent inputs."""
    dists = list(dists)
    if not dists:
        raise DistributionError("cannot take the max of an empty window")
    grid = _shared_grid(dists, n_points)
    cdfs = np.vstack([np.clip(np.asarray(d.cdf(grid), dtype=float), 0.0, 1.0) for d in dists])
    pdfs = np.vstack([np.maximum(np.asarray(d.pdf(grid), dtype=float), 0.0) for d in dists])
    # f_max = sum_i f_i * prod_{j != i} F_j, computed stably in log space
    # is overkill here; a direct product with a small floor suffices.
    total = np.zeros_like(grid)
    for i in range(len(dists)):
        others = np.prod(np.delete(cdfs, i, axis=0), axis=0) if len(dists) > 1 else np.ones_like(grid)
        total += pdfs[i] * others
    edges = np.concatenate([grid, [grid[-1] + (grid[1] - grid[0])]])
    densities = np.maximum(total, 0.0)
    if not np.any(densities > 0):
        raise DistributionError("max distribution is numerically zero on the evaluation grid")
    return HistogramDistribution(edges, densities)


def min_distribution(
    dists: Sequence[Distribution], n_points: int = 1024
) -> HistogramDistribution:
    """Return the distribution of ``min(X_1, ..., X_N)`` for independent inputs."""
    dists = list(dists)
    if not dists:
        raise DistributionError("cannot take the min of an empty window")
    grid = _shared_grid(dists, n_points)
    survivals = np.vstack(
        [np.clip(1.0 - np.asarray(d.cdf(grid), dtype=float), 0.0, 1.0) for d in dists]
    )
    pdfs = np.vstack([np.maximum(np.asarray(d.pdf(grid), dtype=float), 0.0) for d in dists])
    total = np.zeros_like(grid)
    for i in range(len(dists)):
        others = (
            np.prod(np.delete(survivals, i, axis=0), axis=0)
            if len(dists) > 1
            else np.ones_like(grid)
        )
        total += pdfs[i] * others
    edges = np.concatenate([grid, [grid[-1] + (grid[1] - grid[0])]])
    densities = np.maximum(total, 0.0)
    if not np.any(densities > 0):
        raise DistributionError("min distribution is numerically zero on the evaluation grid")
    return HistogramDistribution(edges, densities)
