"""Affine transformations of result distributions.

Aggregation operators frequently need ``X + c`` (to fold deterministic
summands into an uncertain total) and ``a * X`` (to turn a SUM result
into an AVG result).  Closed forms exist for the parametric families;
histograms and particle sets are transformed by moving their support.
"""

from __future__ import annotations

import numpy as np

from repro.distributions import (
    Distribution,
    Gaussian,
    GaussianMixture,
    HistogramDistribution,
    ParticleDistribution,
    Uniform,
)

__all__ = ["shift_distribution", "scale_distribution", "affine_distribution"]


def shift_distribution(dist: Distribution, offset: float) -> Distribution:
    """Return the distribution of ``X + offset``."""
    if offset == 0.0:
        return dist
    if isinstance(dist, (Gaussian, GaussianMixture, Uniform)):
        return dist.shift(offset)
    if isinstance(dist, HistogramDistribution):
        return HistogramDistribution(dist.edges + offset, dist.densities)
    if isinstance(dist, ParticleDistribution):
        return ParticleDistribution(dist.values + offset, dist.weights)
    raise TypeError(f"cannot shift a distribution of type {type(dist).__name__}")


def scale_distribution(dist: Distribution, factor: float) -> Distribution:
    """Return the distribution of ``factor * X`` (``factor != 0``)."""
    if factor == 0.0:
        raise ValueError("scaling a distribution by zero collapses it to a point mass")
    if factor == 1.0:
        return dist
    if isinstance(dist, (Gaussian, GaussianMixture, Uniform)):
        return dist.scale(factor)
    if isinstance(dist, HistogramDistribution):
        edges = dist.edges * factor
        densities = dist.densities / abs(factor)
        if factor < 0:
            edges = edges[::-1]
            densities = densities[::-1]
        return HistogramDistribution(edges, densities)
    if isinstance(dist, ParticleDistribution):
        return ParticleDistribution(dist.values * factor, dist.weights)
    raise TypeError(f"cannot scale a distribution of type {type(dist).__name__}")


def affine_distribution(dist: Distribution, scale: float = 1.0, offset: float = 0.0) -> Distribution:
    """Return the distribution of ``scale * X + offset``."""
    out = dist
    if scale != 1.0:
        out = scale_distribution(out, scale)
    if offset != 0.0:
        out = shift_distribution(out, offset)
    return out
