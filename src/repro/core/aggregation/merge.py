"""Partial-state merge for distributed windowed aggregation.

The distribution layer makes shard-local aggregation *mergeable*: for
independent summands the first two cumulants of a sum are additive, so
a SUM computed as ``S = S_1 + ... + S_k`` over disjoint shards has
exactly the moments of the single-engine SUM over the whole window.
The moment-closed strategies (single-component CF approximation, CLT)
build their result distribution from those two moments alone, which
means per-shard partial results merge **exactly** — not approximately —
into the global result:

* **SUM** — each shard emits the partial sum's distribution; the merged
  result is ``strategy.result_from_moments(sum of means, sum of
  variances)``, bit-for-bit the arithmetic the single engine runs.
* **AVG** — shards emit partial *sums* plus their window counts; the
  merged average is the merged sum scaled by ``1 / total count``.
* **COUNT** — integer partials add.
* **Gaussian-mixture partials** — when a shard-local strategy produced
  a mixture, the sum of independent partials is the pairwise mixture
  convolution (closed form: weights multiply, means add, variances
  add).  This is exact *as a convolution of the partials*, though not
  identical to fitting one mixture to the full window's product CF.

Correctness requires the shards to be **independent**: the partials'
lineage sets must be disjoint, mirroring the per-window independence
check of :class:`~repro.core.aggregation.operator.UncertainAggregate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.distributions import Distribution, Gaussian, GaussianMixture
from repro.streams.operators.base import OperatorError
from repro.streams.tuples import StreamTuple

from .operator import HavingClause, _result_tuple_from_parts
from .strategies import SumStrategy
from .transforms import affine_distribution

__all__ = [
    "MergeError",
    "WindowPartial",
    "extract_partial",
    "merge_sum_distributions",
    "merge_window_partials",
    "MERGEABLE_FUNCTIONS",
]

#: Aggregate functions whose partial windows merge exactly across shards.
MERGEABLE_FUNCTIONS = ("sum", "avg", "count")


class MergeError(OperatorError):
    """Raised when shard partials cannot be merged soundly."""


@dataclass(frozen=True)
class WindowPartial:
    """One shard's contribution to a window: the mergeable state.

    ``result`` is the partial SUM distribution for ``sum``/``avg``
    aggregates (AVG partials are shipped as sums and scaled only after
    the counts are known) or the partial count for ``count``.
    """

    window_start: float
    window_end: float
    count: int
    result: Union[Distribution, int]
    lineage: FrozenSet[int]
    group: Optional[Hashable] = None

    @property
    def key(self) -> Tuple[float, float, Optional[Hashable]]:
        """Merge key: partials with equal keys belong to one window."""
        return (self.window_start, self.window_end, self.group)


def extract_partial(
    item: StreamTuple, result_attribute: str, grouped: bool = False
) -> WindowPartial:
    """Read a partial-aggregate result tuple back into mergeable state."""
    try:
        start = item.value("window_start")
        end = item.value("window_end")
        count = item.value("window_count")
    except KeyError as exc:
        raise MergeError(
            f"partial result tuple is missing window bounds: {exc}"
        ) from exc
    if item.has_uncertain(result_attribute):
        result: Union[Distribution, int] = item.distribution(result_attribute)
    elif item.has_value(result_attribute):
        result = item.value(result_attribute)
    else:
        raise MergeError(
            f"partial result tuple carries no attribute {result_attribute!r}"
        )
    group: Optional[Hashable] = None
    if grouped:
        try:
            group = item.value("group")
        except KeyError as exc:
            raise MergeError("grouped partial is missing its 'group' value") from exc
    return WindowPartial(
        window_start=start,
        window_end=end,
        count=int(count),
        result=result,
        lineage=item.lineage,
        group=group,
    )


def merge_sum_distributions(
    partials: Sequence[Distribution], strategy: Optional[SumStrategy] = None
) -> Distribution:
    """Merge independent partial-SUM distributions into the global SUM.

    With a moment-closed ``strategy`` the merge reproduces the single
    engine's arithmetic (two moment sums, one ``result_from_moments``
    call).  Mixture partials fall back to exact pairwise convolution.
    Anything else is refused: silently approximating here would make
    sharded and single-engine results diverge without warning.
    """
    partials = list(partials)
    if not partials:
        raise MergeError("cannot merge an empty set of partial sums")
    if len(partials) == 1:
        return partials[0]
    if any(isinstance(p, GaussianMixture) for p in partials):
        if not all(isinstance(p, (Gaussian, GaussianMixture)) for p in partials):
            raise MergeError(
                "mixture partials can only be merged with Gaussian or mixture partials"
            )
        merged = None
        for part in partials:
            mixture = (
                part
                if isinstance(part, GaussianMixture)
                else GaussianMixture.single(part)
            )
            merged = mixture if merged is None else merged.convolve(mixture)
        return merged
    mean = float(sum(float(np.asarray(p.mean()).ravel()[0]) for p in partials))
    variance = float(sum(float(np.asarray(p.variance()).ravel()[0]) for p in partials))
    if strategy is not None and strategy.supports_moments:
        return strategy.result_from_moments(mean, variance)
    if all(isinstance(p, Gaussian) for p in partials):
        if variance <= 0:
            raise MergeError("merged partial sums have non-positive total variance")
        return Gaussian(mean, float(np.sqrt(variance)))
    raise MergeError(
        "cannot merge partial sums of types "
        f"{sorted({type(p).__name__ for p in partials})} without a moment-closed strategy"
    )


def _check_disjoint_lineage(partials: Sequence[WindowPartial]) -> None:
    total = sum(len(p.lineage) for p in partials)
    union = frozenset().union(*(p.lineage for p in partials))
    if len(union) != total:
        raise MergeError(
            "shard partials share lineage: the shards are not independent, so "
            "their partial aggregates cannot be merged (disable "
            "check_independence to override)"
        )


def merge_window_partials(
    partials: Sequence[WindowPartial],
    function: str,
    output_attribute: str,
    strategy: Optional[SumStrategy] = None,
    having: Optional[HavingClause] = None,
    check_independence: bool = True,
) -> Optional[StreamTuple]:
    """Merge one window's shard partials into the final result tuple.

    Returns ``None`` when a HAVING clause filters the merged result
    out, mirroring the single-engine emission.  All partials must refer
    to the same window (and group); the caller groups them by
    :attr:`WindowPartial.key`.
    """
    partials = list(partials)
    if not partials:
        raise MergeError("cannot merge an empty set of window partials")
    if function not in MERGEABLE_FUNCTIONS:
        raise MergeError(
            f"aggregate function {function!r} does not merge across shards "
            f"(mergeable: {MERGEABLE_FUNCTIONS})"
        )
    first = partials[0]
    for other in partials[1:]:
        if other.key != first.key:
            raise MergeError(
                f"cannot merge partials of different windows: {other.key} vs {first.key}"
            )
    if check_independence and len(partials) > 1:
        _check_disjoint_lineage(partials)
    lineage = frozenset().union(*(p.lineage for p in partials))
    count = sum(p.count for p in partials)

    result: Union[Distribution, int]
    if function == "count":
        result = sum(int(p.result) for p in partials)
    else:
        distributions = []
        for p in partials:
            if not isinstance(p.result, Distribution):
                raise MergeError(
                    f"{function} partial carries a non-distribution result "
                    f"({type(p.result).__name__})"
                )
            distributions.append(p.result)
        result = merge_sum_distributions(distributions, strategy)
        if function == "avg":
            result = affine_distribution(result, scale=1.0 / count)
    return _result_tuple_from_parts(
        first.window_start,
        first.window_end,
        result,
        count,
        lineage,
        output_attribute,
        group_key=first.group,
        having=having,
    )
