"""Existence-probability-aware aggregation.

Probabilistic selection and probabilistic group membership (Q1's
"which square-foot area is this object in?") produce tuples that
contribute to an aggregate only *with some probability*.  The total is
then a sum of independently switched contributions

``S = sum_i B_i * X_i``,   ``B_i ~ Bernoulli(p_i)`` independent of ``X_i``,

whose mean and variance have closed forms:

``E[S]   = sum_i p_i mu_i``
``Var[S] = sum_i ( p_i sigma_i^2 + p_i (1 - p_i) mu_i^2 )``

For windows of more than a handful of contributors the CLT makes a
Gaussian with those moments an excellent approximation; an exact
mixture form (enumerating inclusion patterns) is provided for small
windows and as a correctness oracle.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.distributions import (
    Distribution,
    DistributionError,
    Gaussian,
    GaussianMixture,
)

__all__ = ["WeightedContribution", "existence_aware_sum", "existence_aware_sum_exact"]


@dataclass(frozen=True)
class WeightedContribution:
    """One potential contributor to an aggregate.

    ``value`` is the contributor's (possibly uncertain) value and
    ``probability`` the chance it participates at all -- e.g. the
    probability that the object lies in the group's area, or that a
    probabilistic selection predicate held.
    """

    value: Distribution | float
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"existence probability must lie in [0, 1], got {self.probability}")

    def moments(self) -> Tuple[float, float]:
        """Return the (mean, variance) of the underlying value."""
        if isinstance(self.value, Distribution):
            return (
                float(np.asarray(self.value.mean()).ravel()[0]),
                float(np.asarray(self.value.variance()).ravel()[0]),
            )
        return float(self.value), 0.0


def existence_aware_sum(
    contributions: Sequence[WeightedContribution], min_sigma: float = 1e-9
) -> Gaussian:
    """Gaussian (CLT) approximation of a sum of switched contributions."""
    contributions = list(contributions)
    if not contributions:
        raise DistributionError("cannot aggregate an empty contribution set")
    mean = 0.0
    variance = 0.0
    for contribution in contributions:
        mu, var = contribution.moments()
        p = contribution.probability
        mean += p * mu
        variance += p * var + p * (1.0 - p) * mu * mu
    return Gaussian(mean, max(math.sqrt(max(variance, 0.0)), min_sigma))


def existence_aware_sum_exact(
    contributions: Sequence[WeightedContribution],
    max_contributors: int = 12,
    min_sigma: float = 1e-9,
) -> GaussianMixture:
    """Exact mixture over inclusion patterns (small windows only).

    Each of the ``2^n`` inclusion patterns contributes one Gaussian
    component (assuming Gaussian or deterministic values) weighted by
    the pattern probability.  Exponential in the number of contributors,
    hence capped at ``max_contributors``; use the CLT form beyond that.
    """
    contributions = list(contributions)
    if not contributions:
        raise DistributionError("cannot aggregate an empty contribution set")
    if len(contributions) > max_contributors:
        raise DistributionError(
            f"exact enumeration over {len(contributions)} contributors exceeds the "
            f"cap of {max_contributors}; use existence_aware_sum instead"
        )
    weights: List[float] = []
    means: List[float] = []
    sigmas: List[float] = []
    per_item = [(c.probability,) + c.moments() for c in contributions]
    for pattern in itertools.product((0, 1), repeat=len(contributions)):
        weight = 1.0
        mean = 0.0
        variance = 0.0
        for included, (p, mu, var) in zip(pattern, per_item):
            weight *= p if included else (1.0 - p)
            if included:
                mean += mu
                variance += var
        if weight <= 0.0:
            continue
        weights.append(weight)
        means.append(mean)
        sigmas.append(max(math.sqrt(variance), min_sigma))
    return GaussianMixture(weights, means, sigmas)
