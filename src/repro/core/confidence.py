"""Final-result reporting: confidence regions, error bounds, summaries.

The last operator of a plan can emit full distributions, or -- depending
on what the end application needs (Section 3) -- statistics derived
from them: a confidence region, the mean and variance, or error bounds.
:class:`ResultSummary` captures those derived statistics in one value
object, and :class:`SummarizeResults` is a small operator that converts
a stream of result tuples into summarised form for delivery to the
application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.distributions import Distribution
from repro.streams.operators.base import Operator, OperatorError
from repro.streams.tuples import StreamTuple

__all__ = ["ResultSummary", "summarize", "SummarizeResults"]


@dataclass(frozen=True)
class ResultSummary:
    """Summary statistics of one uncertain query result."""

    mean: float
    variance: float
    confidence: float
    region: Tuple[float, float]

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def error_bound(self) -> float:
        """Half-width of the confidence region around its centre."""
        return 0.5 * (self.region[1] - self.region[0])

    def contains(self, value: float) -> bool:
        """Return True when ``value`` lies inside the confidence region."""
        return self.region[0] <= value <= self.region[1]


def summarize(dist: Distribution, confidence: float = 0.95) -> ResultSummary:
    """Summarise a result distribution into mean / variance / region."""
    region = dist.confidence_region(confidence)
    return ResultSummary(
        mean=float(np.asarray(dist.mean()).ravel()[0]),
        variance=float(np.asarray(dist.variance()).ravel()[0]),
        confidence=confidence,
        region=(float(region[0]), float(region[1])),
    )


class SummarizeResults(Operator):
    """Replace an uncertain attribute with its summary statistics.

    Emitted tuples keep all deterministic attributes, drop the full
    distribution of ``attribute`` and carry instead
    ``{attribute}_mean``, ``{attribute}_variance``,
    ``{attribute}_lo`` and ``{attribute}_hi`` (the confidence region).
    """

    def __init__(
        self,
        attribute: str,
        confidence: float = 0.95,
        keep_distribution: bool = False,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if not 0.0 < confidence < 1.0:
            raise OperatorError("confidence must lie strictly between 0 and 1")
        self.attribute = attribute
        self.confidence = confidence
        self.keep_distribution = keep_distribution

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        if not item.has_uncertain(self.attribute):
            raise OperatorError(
                f"tuple has no uncertain attribute {self.attribute!r} to summarise"
            )
        dist = item.distribution(self.attribute)
        summary = summarize(dist, self.confidence)
        values = {
            f"{self.attribute}_mean": summary.mean,
            f"{self.attribute}_variance": summary.variance,
            f"{self.attribute}_lo": summary.region[0],
            f"{self.attribute}_hi": summary.region[1],
        }
        uncertain = dict(item.uncertain)
        if not self.keep_distribution:
            uncertain.pop(self.attribute, None)
        yield item.derive(values=values, uncertain=uncertain, replace_uncertain=True)
