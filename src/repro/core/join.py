"""Probabilistic window join over uncertain attributes.

Query Q2 joins the RFID location stream with a temperature stream on
``loc_equals(R.(x,y,z), T.(x,y,z))``.  Because both locations carry
uncertainty, the join predicate holds with some probability: the match
probability of two tuples.  The :class:`ProbabilisticJoin` operator
implements a symmetric sliding-window join that

* buffers each input in its own time window,
* evaluates the (possibly probabilistic) join predicate against every
  tuple currently in the opposite window,
* emits a merged tuple for every pair whose match probability clears a
  threshold, annotated with that probability, and
* records the union of the two lineages so downstream operators can
  detect correlation among join outputs sharing a base tuple
  (Section 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.distributions import Distribution, Gaussian, MultivariateGaussian, as_rng
from repro.streams.operators.base import Operator, OperatorError
from repro.streams.tuples import StreamTuple

__all__ = [
    "match_probability_band",
    "location_equality_probability",
    "ProbabilisticJoin",
]


def match_probability_band(
    left: Distribution,
    right: Distribution,
    tolerance: float,
    n_samples: int = 256,
    rng=None,
) -> float:
    """Return ``P[|X_left - X_right| <= tolerance]`` for independent scalars.

    Gaussian/Gaussian pairs use the closed form (the difference of two
    independent Gaussians is Gaussian); any other combination falls back
    to Monte Carlo with ``n_samples`` paired draws.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if isinstance(left, Gaussian) and isinstance(right, Gaussian):
        diff = Gaussian(left.mu - right.mu, math.hypot(left.sigma, right.sigma))
        return diff.prob_in_interval(-tolerance, tolerance)
    rng = as_rng(rng)
    ls = np.asarray(left.sample(n_samples, rng=rng), dtype=float)
    rs = np.asarray(right.sample(n_samples, rng=rng), dtype=float)
    return float(np.mean(np.abs(ls - rs) <= tolerance))


def location_equality_probability(
    left: Distribution,
    right: Distribution,
    tolerance: float,
    n_samples: int = 256,
    rng=None,
) -> float:
    """Return the probability that two uncertain locations coincide.

    "Coincide" means every coordinate differs by at most ``tolerance``
    (the voxel / square-foot-area resolution of the application).  For
    multivariate Gaussians the per-axis marginals are combined assuming
    axis independence; otherwise Monte Carlo over joint samples is used.
    """
    if isinstance(left, MultivariateGaussian) and isinstance(right, MultivariateGaussian):
        if left.ndim != right.ndim:
            raise ValueError("location distributions must have matching dimension")
        prob = 1.0
        for axis in range(left.ndim):
            prob *= match_probability_band(left.marginal(axis), right.marginal(axis), tolerance)
        return prob
    if left.ndim == 1 and right.ndim == 1:
        return match_probability_band(left, right, tolerance, n_samples=n_samples, rng=rng)
    rng = as_rng(rng)
    ls = np.atleast_2d(np.asarray(left.sample(n_samples, rng=rng), dtype=float))
    rs = np.atleast_2d(np.asarray(right.sample(n_samples, rng=rng), dtype=float))
    if ls.shape != rs.shape:
        raise ValueError("sampled locations must have matching shapes")
    hits = np.all(np.abs(ls - rs) <= tolerance, axis=-1)
    return float(np.mean(hits))


@dataclass
class _WindowedInput:
    """Per-input sliding-window buffer for the symmetric join."""

    length: float
    items: List[StreamTuple]

    def insert(self, item: StreamTuple) -> None:
        self.items.append(item)

    def expire(self, now: float) -> None:
        cutoff = now - self.length
        self.items = [t for t in self.items if t.timestamp > cutoff]


class ProbabilisticJoin(Operator):
    """Symmetric sliding-window join with a probabilistic match predicate.

    The operator itself is single-input (to fit the push-based engine);
    use :meth:`left_port` and :meth:`right_port` to obtain the two input
    adapters and connect each upstream operator to the corresponding
    port.

    Parameters
    ----------
    window_length:
        Length (in seconds) of the sliding window kept for each input,
        mirroring ``[Range t seconds]`` in Q2.
    match_probability:
        Function ``(left_tuple, right_tuple) -> probability`` returning
        the probability that the join predicate holds.
    min_probability:
        Minimum match probability for a pair to be emitted.
    probability_attribute:
        Name of the deterministic attribute carrying the match
        probability in emitted tuples.
    prefix_left / prefix_right:
        Attribute-name prefixes applied when merging matched tuples.
    """

    #: Honest advertisement: the join has no vectorised kernel.  Batches
    #: reaching either port run through the per-tuple fallback loop
    #: (symmetric window insertion and probe are inherently sequential),
    #: so ``explain()`` reports this box as per-tuple and the cost model
    #: does not count it toward batch-execution benefits.
    supports_batch = False

    def __init__(
        self,
        window_length: float,
        match_probability: Callable[[StreamTuple, StreamTuple], float],
        min_probability: float = 0.5,
        probability_attribute: str = "match_probability",
        prefix_left: str = "left_",
        prefix_right: str = "right_",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if window_length <= 0:
            raise OperatorError("window_length must be positive")
        if not 0.0 <= min_probability <= 1.0:
            raise OperatorError("min_probability must lie in [0, 1]")
        self.window_length = float(window_length)
        self.match_probability = match_probability
        self.min_probability = min_probability
        self.probability_attribute = probability_attribute
        self.prefix_left = prefix_left
        self.prefix_right = prefix_right
        self._left = _WindowedInput(self.window_length, [])
        self._right = _WindowedInput(self.window_length, [])

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def left_port(self) -> Operator:
        """Return the operator to connect the left (probe) input to."""
        return _JoinPort(self, side="left", name=f"{self.name}.left")

    def right_port(self) -> Operator:
        """Return the operator to connect the right (build) input to."""
        return _JoinPort(self, side="right", name=f"{self.name}.right")

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        # Tuples pushed directly into the join (not via a port) are
        # treated as left-input tuples for convenience.
        yield from self.process_side(item, side="left")

    def process_side(self, item: StreamTuple, side: str) -> Iterable[StreamTuple]:
        if side not in ("left", "right"):
            raise OperatorError(f"unknown join side {side!r}")
        own = self._left if side == "left" else self._right
        other = self._right if side == "left" else self._left
        now = item.timestamp
        own.expire(now)
        other.expire(now)
        own.insert(item)
        for candidate in other.items:
            left_item, right_item = (item, candidate) if side == "left" else (candidate, item)
            prob = self.match_probability(left_item, right_item)
            if prob < self.min_probability:
                continue
            merged = StreamTuple.merge(
                left_item,
                right_item,
                timestamp=now,
                prefix_left=self.prefix_left,
                prefix_right=self.prefix_right,
            )
            yield merged.derive(values={self.probability_attribute: prob})

    def window_sizes(self) -> Tuple[int, int]:
        """Return the current (left, right) window sizes (for diagnostics)."""
        return (len(self._left.items), len(self._right.items))

    def state_snapshot(self) -> dict:
        # Window lengths are configuration; only the live window
        # contents (both build sides of the symmetric join) are state.
        return {"left": list(self._left.items), "right": list(self._right.items)}

    def state_restore(self, state: Optional[dict]) -> None:
        if state is None:
            raise OperatorError(f"{self.name!r} expected a join-window state")
        self._left.items = list(state["left"])
        self._right.items = list(state["right"])


class _JoinPort(Operator):
    """Adapter forwarding tuples into one side of a ProbabilisticJoin."""

    # Ports delegate to the join's per-tuple probe loop (see above).
    supports_batch = False

    def __init__(self, join: ProbabilisticJoin, side: str, name: str):
        super().__init__(name=name)
        self._join = join
        self._side = side
        # Results must flow out of the join operator's connections, so the
        # port shares the join's downstream list by delegating emission.

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        self._join.tuples_in += 1
        outputs = list(self._join.process_side(item, side=self._side))
        self._join.tuples_out += len(outputs)
        return outputs

    def connect(self, downstream: Operator) -> Operator:
        raise OperatorError(
            "connect downstream operators to the ProbabilisticJoin itself, not to its ports"
        )

    @property
    def downstream(self):
        return self._join.downstream
