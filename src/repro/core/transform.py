"""The data capture and transformation (T) operator.

Section 3 introduces the T operator as the ingress box allocated to
each sensor device.  It has two jobs:

1. transform raw device data into the tuple format later operators
   need (object locations for RFID, per-voxel moment data for radar);
2. attach a probability density function to every uncertain attribute
   of every emitted tuple, so downstream operators can propagate
   uncertainty.

:class:`TransformOperator` is the abstract base shared by the two
application-specific T operators
(:class:`repro.rfid.transform_operator.RFIDTransformOperator` and
:class:`repro.radar.transform_operator.RadarTransformOperator`).  It
standardises the "infer, then compress the inferred distribution"
pipeline, including the particle-to-parametric compression policy of
Section 4.3.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.distributions import (
    Distribution,
    ParticleDistribution,
    compress_particles,
    fit_gaussian,
)
from repro.streams.operators.base import Operator
from repro.streams.tuples import StreamTuple

__all__ = ["CompressionPolicy", "TransformOperator"]


@dataclass(frozen=True)
class CompressionPolicy:
    """How a T operator turns particle clouds into tuple-level distributions.

    Attributes
    ----------
    mode:
        ``"particles"`` ships the raw weighted samples (large tuples,
        slower downstream processing); ``"gaussian"`` fits the
        KL-optimal single Gaussian; ``"mixture"`` selects a Gaussian
        mixture with up to ``max_components`` components by AIC/BIC.
    max_components:
        Upper bound on mixture components in ``"mixture"`` mode.
    criterion:
        Model-selection criterion, ``"aic"`` or ``"bic"``.
    """

    mode: str = "gaussian"
    max_components: int = 3
    criterion: str = "bic"

    def __post_init__(self) -> None:
        if self.mode not in ("particles", "gaussian", "mixture"):
            raise ValueError(f"unknown compression mode {self.mode!r}")
        if self.max_components < 1:
            raise ValueError("max_components must be at least 1")
        if self.criterion not in ("aic", "bic"):
            raise ValueError("criterion must be 'aic' or 'bic'")

    def compress(self, particles: ParticleDistribution, rng=None) -> Distribution:
        """Apply the policy to one particle cloud."""
        if self.mode == "particles":
            return particles
        if self.mode == "gaussian":
            return fit_gaussian(particles.values, particles.weights)
        return compress_particles(
            particles,
            max_components=self.max_components,
            criterion=self.criterion,
            rng=rng,
        )


class TransformOperator(Operator):
    """Abstract base class for data capture and transformation operators.

    Subclasses implement :meth:`transform`, mapping one raw observation
    (whatever the device produces) to zero or more output tuples whose
    uncertain attributes already carry distributions.  Raw observations
    are wrapped in :class:`StreamTuple` instances whose ``values`` carry
    the raw payload under the key given by ``raw_attribute``.
    """

    def __init__(
        self,
        compression: Optional[CompressionPolicy] = None,
        raw_attribute: str = "raw",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.compression = compression or CompressionPolicy()
        self.raw_attribute = raw_attribute

    @abc.abstractmethod
    def transform(self, observation, timestamp: float) -> Iterable[StreamTuple]:
        """Map one raw observation to output tuples with pdfs attached."""

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        observation = item.value(self.raw_attribute)
        yield from self.transform(observation, item.timestamp)

    # Convenience for drivers that have raw observations rather than tuples.
    def ingest(self, observation, timestamp: float) -> Iterable[StreamTuple]:
        """Transform a raw observation directly (bypassing tuple wrapping)."""
        self.tuples_in += 1
        outputs = list(self.transform(observation, timestamp))
        self.tuples_out += len(outputs)
        return outputs
