"""Deprecated linear query builder — a thin shim over :mod:`repro.plan`.

The original :class:`QueryBuilder` was "intentionally linear" and wired
physical operators directly.  The declarative surface now lives in
:class:`repro.plan.Stream` (a DAG-capable builder producing a logical
plan that a cost-aware planner rewrites and lowers); this module keeps
the old API working by translating each legacy call onto a ``Stream``
and compiling through the planner on the tuple path (the legacy
builder's execution model).

New code should use :class:`repro.plan.Stream` directly::

    from repro.plan import Stream

    query = (
        Stream.source("rfid", uncertain=("weight",))
        .window(TumblingTimeWindow(5.0))
        .group_by(area_of)
        .aggregate("weight")
        .having(200.0)
        .summarize("sum_weight")
        .compile()
    )

:class:`CompiledQuery` is re-exported from the plan package, so code
that only type-checks against it keeps working unchanged.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Hashable, List, Mapping, Optional

from repro.distributions import Distribution
from repro.plan import CompiledQuery, Stream
from repro.streams.operators.base import Operator, OperatorError
from repro.streams.windows import WindowSpec

from .aggregation import HavingClause, SumStrategy
from .aggregation.strategies import CFApproximationSum
from .selection import Comparison

__all__ = ["QueryBuilder", "CompiledQuery"]

#: Process-wide latch: the deprecation warning fires once, not once per
#: constructed builder — a legacy program building thousands of queries
#: should see one nudge, not a flooded log.
_deprecation_warned = False


def _warn_deprecated_once() -> None:
    global _deprecation_warned
    if _deprecation_warned:
        return
    _deprecation_warned = True
    warnings.warn(
        "repro.core.QueryBuilder is deprecated; build queries with "
        "repro.plan.Stream instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_deprecation_warning() -> None:
    """Re-arm the once-per-process warning (test hook)."""
    global _deprecation_warned
    _deprecation_warned = False


class QueryBuilder:
    """Deprecated linear builder; delegates to :class:`repro.plan.Stream`.

    Kept for backwards compatibility with the Q1/Q2 query shapes; emits
    a :class:`DeprecationWarning` once per process, on the first
    construction.  Each stage method appends the corresponding
    declarative stage; ``compile()`` runs the planner with rewrites
    enabled on the tuple execution path, matching the legacy builder's
    per-tuple semantics exactly.
    """

    def __init__(self, source: str = "input"):
        _warn_deprecated_once()
        self._stream = Stream.source(source)
        self._stages = 0
        self._compiled = False
        self._joined = False

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def _advance(self, stream: Stream) -> QueryBuilder:
        if self._compiled:
            raise OperatorError("cannot extend a query after compile()")
        self._stream = stream
        self._stages += 1
        return self

    def derive(
        self,
        values: Optional[Mapping[str, Callable[..., Any]]] = None,
        uncertain: Optional[Mapping[str, Callable[..., Distribution]]] = None,
    ) -> QueryBuilder:
        """Add derived attributes (the inner Select of Q1)."""
        if not (values or uncertain):
            raise OperatorError("derive() needs at least one derivation function")
        return self._advance(self._stream.derive(values=values, uncertain=uncertain))

    def where(self, predicate: Callable[..., bool]) -> QueryBuilder:
        """Deterministic filter on tuple values."""
        return self._advance(self._stream.where(predicate))

    def where_probably(
        self,
        attribute: str,
        comparison: Comparison,
        threshold: float,
        upper: Optional[float] = None,
        min_probability: float = 0.5,
    ) -> QueryBuilder:
        """Probabilistic filter on an uncertain attribute."""
        return self._advance(
            self._stream.where_probably(
                attribute, comparison, threshold, upper=upper, min_probability=min_probability
            )
        )

    def aggregate(
        self,
        window: WindowSpec,
        attribute: str,
        function: str = "sum",
        strategy: Optional[SumStrategy] = None,
        having: Optional[HavingClause] = None,
    ) -> QueryBuilder:
        """Windowed aggregation of one uncertain attribute."""
        return self._advance(
            self._stream.aggregate(
                attribute,
                function=function,
                strategy=strategy or CFApproximationSum(),
                window=window,
                having=having,
            )
        )

    def group_aggregate(
        self,
        window: WindowSpec,
        key: Callable[..., Hashable],
        attribute: str,
        function: str = "sum",
        strategy: Optional[SumStrategy] = None,
        having: Optional[HavingClause] = None,
    ) -> QueryBuilder:
        """Windowed GROUP BY + aggregate + HAVING (the outer block of Q1)."""
        return self._advance(
            self._stream.aggregate(
                attribute,
                function=function,
                strategy=strategy or CFApproximationSum(),
                window=window,
                key=key,
                having=having,
            )
        )

    def join(
        self,
        other_source: str,
        other_stages: List[Operator],
        match_probability: Callable[..., float],
        window_length: float,
        min_probability: float = 0.5,
        prefix_left: str = "left_",
        prefix_right: str = "right_",
    ) -> QueryBuilder:
        """Join this stream with a second input stream (the shape of Q2).

        ``other_stages`` are pre-built operators applied to the second
        stream before the join (piped verbatim into the plan); stages
        added after :meth:`join` apply to the join output.
        """
        if self._joined:
            raise OperatorError("only one join per query is supported by the builder")
        self._joined = True
        other = Stream.source(other_source)
        for operator in other_stages:
            other = other.pipe(operator)
        return self._advance(
            self._stream.join(
                other,
                on=match_probability,
                window_length=window_length,
                min_probability=min_probability,
                prefix_left=prefix_left,
                prefix_right=prefix_right,
            )
        )

    def summarize(self, attribute: str, confidence: float = 0.95) -> QueryBuilder:
        """Replace a result distribution with summary statistics."""
        return self._advance(self._stream.summarize(attribute, confidence=confidence))

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledQuery:
        """Plan and wire the staged query; returns a runnable query."""
        if self._compiled:
            raise OperatorError("query already compiled")
        if self._stages == 0:
            raise OperatorError("cannot compile an empty query")
        self._compiled = True
        try:
            return self._stream.compile(mode="tuple")
        except Exception as exc:
            # Legacy callers catch OperatorError for malformed queries.
            raise OperatorError(str(exc)) from exc
