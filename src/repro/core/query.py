"""A small declarative query builder compiling to box-arrow plans.

Section 3: "This box-arrow diagram can be either compiled from a query
(e.g., Q1 and Q2 in Section 2.1) or obtained from a scientific
workflow."  :class:`QueryBuilder` provides the "compiled from a query"
path for the query shapes the paper uses: derive attributes, filter
(deterministically or probabilistically), window + group-by + aggregate
with a probabilistic HAVING, join two streams on a probabilistic
predicate, and summarise the result.

The builder is intentionally linear (one chain per input stream plus an
optional join), which covers Q1 and Q2; arbitrary DAGs can always be
wired directly against the operator API.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.distributions import Distribution
from repro.streams import (
    AttributeDeriver,
    CollectSink,
    Filter,
    StreamEngine,
)
from repro.streams.operators.base import Operator, OperatorError
from repro.streams.windows import WindowSpec

from .aggregation import GroupByAggregate, HavingClause, SumStrategy, UncertainAggregate
from .aggregation.strategies import CFApproximationSum
from .confidence import SummarizeResults
from .join import ProbabilisticJoin
from .selection import Comparison, ProbabilisticSelect, UncertainPredicate

__all__ = ["QueryBuilder", "CompiledQuery"]


class CompiledQuery:
    """A compiled query: an engine wired from sources to a collecting sink."""

    def __init__(self, engine: StreamEngine, sources: List[str], sink: CollectSink):
        self.engine = engine
        self.sources = sources
        self.sink = sink

    def push(self, source: str, item) -> None:
        self.engine.push(source, item)

    def push_many(self, source: str, items) -> None:
        self.engine.push_many(source, items)

    def finish(self) -> List:
        """Flush the plan and return the collected results."""
        self.engine.finish()
        return list(self.sink.results)

    @property
    def results(self) -> List:
        return list(self.sink.results)


class QueryBuilder:
    """Fluent builder for the paper's query shapes.

    Example (Q1-like)::

        query = (
            QueryBuilder("rfid")
            .derive(values={"weight": lambda t: catalog[t.value("tag_id")]})
            .group_aggregate(
                window=TumblingTimeWindow(5.0),
                key=lambda t: area_of(t),
                attribute="weight",
                having=HavingClause(200.0),
            )
            .summarize("sum_weight")
            .compile()
        )
        query.push_many("rfid", tuples)
        alerts = query.finish()
    """

    def __init__(self, source: str = "input"):
        self._source = source
        self._operators: List[Operator] = []
        self._joined: Optional[Tuple[str, List[Operator], ProbabilisticJoin]] = None
        self._compiled = False

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def _append(self, operator: Operator) -> "QueryBuilder":
        if self._compiled:
            raise OperatorError("cannot extend a query after compile()")
        self._operators.append(operator)
        return self

    def derive(
        self,
        values: Optional[Mapping[str, Callable[..., Any]]] = None,
        uncertain: Optional[Mapping[str, Callable[..., Distribution]]] = None,
    ) -> "QueryBuilder":
        """Add derived attributes (the inner Select of Q1)."""
        return self._append(AttributeDeriver(value_functions=values, uncertain_functions=uncertain))

    def where(self, predicate: Callable[..., bool]) -> "QueryBuilder":
        """Deterministic filter on tuple values."""
        return self._append(Filter(predicate))

    def where_probably(
        self,
        attribute: str,
        comparison: Comparison,
        threshold: float,
        upper: Optional[float] = None,
        min_probability: float = 0.5,
    ) -> "QueryBuilder":
        """Probabilistic filter on an uncertain attribute."""
        predicate = UncertainPredicate(attribute, comparison, threshold, upper)
        return self._append(ProbabilisticSelect(predicate, min_probability=min_probability))

    def aggregate(
        self,
        window: WindowSpec,
        attribute: str,
        function: str = "sum",
        strategy: Optional[SumStrategy] = None,
        having: Optional[HavingClause] = None,
    ) -> "QueryBuilder":
        """Windowed aggregation of one uncertain attribute."""
        return self._append(
            UncertainAggregate(
                window, attribute, strategy or CFApproximationSum(), function=function, having=having
            )
        )

    def group_aggregate(
        self,
        window: WindowSpec,
        key: Callable[..., Hashable],
        attribute: str,
        function: str = "sum",
        strategy: Optional[SumStrategy] = None,
        having: Optional[HavingClause] = None,
    ) -> "QueryBuilder":
        """Windowed GROUP BY + aggregate + HAVING (the outer block of Q1)."""
        return self._append(
            GroupByAggregate(
                window,
                key_function=key,
                attribute=attribute,
                strategy=strategy or CFApproximationSum(),
                function=function,
                having=having,
            )
        )

    def join(
        self,
        other_source: str,
        other_stages: List[Operator],
        match_probability: Callable[..., float],
        window_length: float,
        min_probability: float = 0.5,
        prefix_left: str = "left_",
        prefix_right: str = "right_",
    ) -> "QueryBuilder":
        """Join this stream with a second input stream (the shape of Q2).

        ``other_stages`` are the operators applied to the second stream
        before it reaches the join (e.g. a probabilistic temperature
        filter).  Stages added after :meth:`join` apply to the join
        output.
        """
        if self._joined is not None:
            raise OperatorError("only one join per query is supported by the builder")
        join = ProbabilisticJoin(
            window_length=window_length,
            match_probability=match_probability,
            min_probability=min_probability,
            prefix_left=prefix_left,
            prefix_right=prefix_right,
        )
        self._joined = (other_source, list(other_stages), join)
        self._operators.append(join)
        return self

    def summarize(self, attribute: str, confidence: float = 0.95) -> "QueryBuilder":
        """Replace a result distribution with summary statistics."""
        return self._append(SummarizeResults(attribute, confidence=confidence))

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledQuery:
        """Wire the staged operators into an engine and return it."""
        if self._compiled:
            raise OperatorError("query already compiled")
        if not self._operators:
            raise OperatorError("cannot compile an empty query")
        self._compiled = True

        engine = StreamEngine()
        sink = CollectSink()
        sources = [self._source]

        # Split the primary chain at the join (if any).
        join_op: Optional[ProbabilisticJoin] = None
        join_index: Optional[int] = None
        if self._joined is not None:
            _, _, join_op = self._joined
            join_index = self._operators.index(join_op)

        primary_chain = self._operators if join_index is None else self._operators[:join_index]
        post_join_chain = [] if join_index is None else self._operators[join_index + 1 :]

        if primary_chain:
            engine.add_source(self._source, primary_chain[0])
            for upstream, downstream in zip(primary_chain, primary_chain[1:]):
                upstream.connect(downstream)
        tail = primary_chain[-1] if primary_chain else None

        if join_op is not None:
            other_source, other_stages, _ = self._joined
            sources.append(other_source)
            if tail is not None:
                tail.connect(join_op.left_port())
            else:
                engine.add_source(self._source, join_op.left_port())
            if other_stages:
                engine.add_source(other_source, other_stages[0])
                for upstream, downstream in zip(other_stages, other_stages[1:]):
                    upstream.connect(downstream)
                other_stages[-1].connect(join_op.right_port())
            else:
                engine.add_source(other_source, join_op.right_port())
            engine.register(join_op)
            tail = join_op
            for operator in post_join_chain:
                tail.connect(operator)
                tail = operator

        assert tail is not None
        tail.connect(sink)
        engine.register(sink)
        engine.validate()
        return CompiledQuery(engine, sources, sink)
