"""Uncertainty propagation through composed operators and complex functions.

Section 5.2: when several composed operators can be written as a single
(differentiable) function of independent inputs, the result
distribution can be obtained either exactly (transformation theory) or
approximately but very cheaply with the **multivariate delta method**:

``f(X_1..X_n) ~ N( f(mu), grad f(mu)^T Sigma grad f(mu) )``

for independent inputs with means ``mu_i`` and variances ``sigma_i^2``
(so ``Sigma`` is diagonal).  The module also provides a Monte-Carlo
propagator used as the accuracy reference in tests and ablations.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.distributions import (
    Distribution,
    DistributionError,
    Gaussian,
    HistogramDistribution,
    as_rng,
)

__all__ = ["delta_method", "monte_carlo_propagation", "numerical_gradient"]


def numerical_gradient(
    fn: Callable[[np.ndarray], float], point: np.ndarray, step_scale: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of ``fn`` at ``point``.

    The step for each coordinate is scaled by the coordinate's magnitude
    so very large and very small inputs are both handled sensibly.
    """
    point = np.asarray(point, dtype=float)
    grad = np.empty_like(point)
    for i in range(point.size):
        h = step_scale * max(abs(point[i]), 1.0)
        plus = point.copy()
        minus = point.copy()
        plus[i] += h
        minus[i] -= h
        grad[i] = (fn(plus) - fn(minus)) / (2.0 * h)
    return grad


def delta_method(
    fn: Callable[[np.ndarray], float],
    inputs: Sequence[Distribution],
    min_sigma: float = 1e-12,
) -> Gaussian:
    """Approximate the distribution of ``fn(X_1, ..., X_n)`` with a Gaussian.

    The inputs are assumed independent; the approximation linearises
    ``fn`` around the mean vector, so it is accurate when the input
    spreads are small relative to the curvature of ``fn`` -- exactly the
    "complex function over a set of temperature functions" scenario of
    Section 5.2.
    """
    inputs = list(inputs)
    if not inputs:
        raise DistributionError("delta method requires at least one input distribution")
    means = np.array([float(np.asarray(d.mean()).ravel()[0]) for d in inputs])
    variances = np.array([float(np.asarray(d.variance()).ravel()[0]) for d in inputs])
    value = float(fn(means))
    grad = numerical_gradient(fn, means)
    variance = float(np.dot(grad ** 2, variances))
    return Gaussian(value, max(math.sqrt(max(variance, 0.0)), min_sigma))


def monte_carlo_propagation(
    fn: Callable[[np.ndarray], float],
    inputs: Sequence[Distribution],
    n_samples: int = 4096,
    result_bins: int = 128,
    rng=None,
) -> HistogramDistribution:
    """Propagate independent inputs through ``fn`` by joint sampling.

    Slower but assumption-free; serves as the reference for the delta
    method in tests and ablation benchmarks.
    """
    inputs = list(inputs)
    if not inputs:
        raise DistributionError("propagation requires at least one input distribution")
    if n_samples < 16:
        raise ValueError("n_samples must be at least 16")
    rng = as_rng(rng)
    draws = np.column_stack(
        [np.asarray(d.sample(n_samples, rng=rng), dtype=float) for d in inputs]
    )
    values = np.apply_along_axis(fn, 1, draws)
    return HistogramDistribution.from_samples(values, n_bins=result_bins)
