"""Core contribution: uncertainty-aware stream operators.

This package implements the paper's two main components on top of the
:mod:`repro.streams` substrate:

* the data capture and transformation (**T**) operator framework,
  including the particle-to-parametric compression policies of
  Section 4.3, and
* the uncertainty-aware relational operators of Section 5 -- selection,
  aggregation (with pluggable result-distribution strategies), join,
  group-by/having, lineage-aware composition, the delta method for
  complex functions, and final-result summarisation.
"""

from .aggregation import (
    AGGREGATE_FUNCTIONS,
    CFApproximationSum,
    CFInversionSum,
    CLTSum,
    ConvolutionSum,
    GroupByAggregate,
    HavingClause,
    HistogramSamplingSum,
    MonteCarloSum,
    SumStrategy,
    TimeSeriesCLTSum,
    UncertainAggregate,
    affine_distribution,
    max_distribution,
    min_distribution,
    scale_distribution,
    shift_distribution,
    strategy_by_name,
)
from .composition import delta_method, monte_carlo_propagation, numerical_gradient
from .confidence import ResultSummary, SummarizeResults, summarize
from .existence import (
    WeightedContribution,
    existence_aware_sum,
    existence_aware_sum_exact,
)
from .join import (
    ProbabilisticJoin,
    location_equality_probability,
    match_probability_band,
)
from .lineage_operator import ArchivingOperator, LineageAwareAggregate
from .lineage_ops import group_contribution_samples, lineage_aware_sum
from .query import CompiledQuery, QueryBuilder
from .selection import Comparison, ProbabilisticSelect, UncertainPredicate
from .transform import CompressionPolicy, TransformOperator

__all__ = [
    "SumStrategy",
    "CFInversionSum",
    "CFApproximationSum",
    "HistogramSamplingSum",
    "MonteCarloSum",
    "CLTSum",
    "ConvolutionSum",
    "TimeSeriesCLTSum",
    "strategy_by_name",
    "UncertainAggregate",
    "GroupByAggregate",
    "HavingClause",
    "AGGREGATE_FUNCTIONS",
    "max_distribution",
    "min_distribution",
    "shift_distribution",
    "scale_distribution",
    "affine_distribution",
    "ProbabilisticSelect",
    "UncertainPredicate",
    "Comparison",
    "ProbabilisticJoin",
    "match_probability_band",
    "location_equality_probability",
    "TransformOperator",
    "CompressionPolicy",
    "delta_method",
    "monte_carlo_propagation",
    "numerical_gradient",
    "lineage_aware_sum",
    "group_contribution_samples",
    "ArchivingOperator",
    "LineageAwareAggregate",
    "WeightedContribution",
    "existence_aware_sum",
    "existence_aware_sum_exact",
    "QueryBuilder",
    "CompiledQuery",
    "ResultSummary",
    "summarize",
    "SummarizeResults",
]
