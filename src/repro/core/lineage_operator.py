"""Streaming operators for lineage archival and lineage-aware aggregation.

Section 5.2 / Figure 2: when an operator's outputs can be correlated
(e.g. a join), downstream aggregation must not treat them as
independent.  The paper's architecture archives the *independent* base
tuples (the "A4" box archives its inputs) and lets the final operator
combine lineage with the archive to compute correct result
distributions.

:class:`ArchivingOperator` performs the archival step as a pass-through
box, and :class:`LineageAwareAggregate` is the final windowed SUM
operator built on :func:`repro.core.lineage_ops.lineage_aware_sum`.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.distributions import Distribution
from repro.streams.lineage import TupleArchive
from repro.streams.operators.base import Operator
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowBuffer, WindowSpec

from .aggregation.strategies import CFApproximationSum, SumStrategy
from .lineage_ops import lineage_aware_sum

__all__ = ["ArchivingOperator", "LineageAwareAggregate"]


class ArchivingOperator(Operator):
    """Pass-through operator that archives every tuple it sees.

    Place it on the arrow carrying *independent* tuples (typically just
    after a T operator); the shared :class:`TupleArchive` is later used
    by a :class:`LineageAwareAggregate` to resolve lineage.  Eviction by
    watermark keeps the archive bounded for long-running streams.
    """

    #: Honest advertisement: archival appends tuples one at a time (the
    #: archive keys on per-tuple ids), so batches fall back to the
    #: per-tuple loop and ``explain()`` reports this box as per-tuple.
    supports_batch = False

    def __init__(
        self,
        archive: TupleArchive,
        retention_seconds: Optional[float] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if retention_seconds is not None and retention_seconds <= 0:
            raise ValueError("retention_seconds must be positive when given")
        self.archive = archive
        self.retention_seconds = retention_seconds

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        self.archive.archive(item)
        if self.retention_seconds is not None:
            self.archive.evict_older_than(item.timestamp - self.retention_seconds)
        yield item


class LineageAwareAggregate(Operator):
    """Windowed SUM whose result distribution respects tuple correlation.

    Unlike :class:`repro.core.UncertainAggregate` (which refuses windows
    containing correlated tuples), this operator partitions each window
    into correlation groups via lineage, uses the fast independent
    machinery across groups, and evaluates correlated groups jointly
    from the archived base tuples.
    """

    #: Honest advertisement: correlated-group resolution samples jointly
    #: from the archive per window; there is no columnar kernel, so the
    #: batch path is the per-tuple fallback loop.
    supports_batch = False

    def __init__(
        self,
        window: WindowSpec,
        attribute: str,
        archive: TupleArchive,
        strategy: Optional[SumStrategy] = None,
        output_attribute: Optional[str] = None,
        n_samples: int = 2048,
        rng=None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.window = window
        self.attribute = attribute
        self.archive = archive
        self.strategy = strategy or CFApproximationSum()
        self.output_attribute = output_attribute or f"sum_{attribute}"
        self.n_samples = n_samples
        self._rng = rng
        self._buffer: WindowBuffer = window.new_buffer()

    def _emit(self, closes) -> Iterable[StreamTuple]:
        for close in closes:
            if not close.items:
                continue
            result: Distribution = lineage_aware_sum(
                close.items,
                self.attribute,
                self.archive,
                independent_strategy=self.strategy,
                n_samples=self.n_samples,
                rng=self._rng,
            )
            lineage = frozenset().union(*(item.lineage for item in close.items))
            yield StreamTuple(
                timestamp=close.end,
                values={
                    "window_start": close.start,
                    "window_end": close.end,
                    "window_count": len(close.items),
                    f"{self.output_attribute}_mean": float(np.asarray(result.mean()).ravel()[0]),
                },
                uncertain={self.output_attribute: result},
                lineage=lineage,
            )

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        yield from self._emit(self._buffer.add(item))

    def flush(self) -> Iterable[StreamTuple]:
        yield from self._emit(self._buffer.flush())
