"""Lineage-aware computation of result distributions.

Section 5.2: intermediate tuples produced by a join can be *correlated*
because a single input tuple matched several tuples from the other
stream.  Aggregating such tuples as if independent understates the
result variance.  The paper's remedy is lineage: intermediate tuples
carry the identifiers of the independent base tuples they derive from,
the base tuples are archived, and the final operator recomputes exact
(or well-approximated) result distributions from that joint structure.

:func:`lineage_aware_sum` implements that final-operator computation
for SUM: tuples are partitioned into correlation groups (connected
components of shared lineage); independent groups are combined with the
fast CF machinery, while each correlated group is evaluated jointly by
Monte-Carlo over its *base* tuples, which captures the correlation
induced by reuse of a base tuple in several intermediate tuples.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.distributions import (
    Distribution,
    DistributionError,
    Gaussian,
    HistogramDistribution,
    as_rng,
    fit_gaussian,
)
from repro.streams.lineage import TupleArchive, correlation_groups
from repro.streams.tuples import StreamTuple

from .aggregation.strategies import CFApproximationSum, SumStrategy

__all__ = ["lineage_aware_sum", "group_contribution_samples"]


def group_contribution_samples(
    group: Sequence[StreamTuple],
    attribute: str,
    archive: TupleArchive,
    contribution: Callable[[StreamTuple, Dict[int, float]], float],
    n_samples: int,
    rng,
) -> np.ndarray:
    """Sample the total contribution of one correlated group.

    For every Monte-Carlo iteration, each *base* tuple referenced by the
    group is sampled exactly once; every intermediate tuple's
    contribution is then computed from those shared base samples via the
    ``contribution`` callback, which receives the intermediate tuple and
    a mapping ``base tuple id -> sampled value``.  Sharing base samples
    across intermediate tuples is what reproduces the correlation.
    """
    rng = as_rng(rng)
    base_ids = sorted(set().union(*(t.lineage for t in group)))
    base_samples: Dict[int, np.ndarray] = {}
    for base_id in base_ids:
        base = archive.get(base_id)
        if base.has_uncertain(attribute):
            base_samples[base_id] = np.asarray(
                base.distribution(attribute).sample(n_samples, rng=rng), dtype=float
            )
        else:
            value = float(base.value(attribute))
            base_samples[base_id] = np.full(n_samples, value)
    totals = np.zeros(n_samples)
    for i in range(n_samples):
        assignment = {base_id: float(samples[i]) for base_id, samples in base_samples.items()}
        totals[i] += sum(contribution(member, assignment) for member in group)
    return totals


def _default_contribution(attribute: str) -> Callable[[StreamTuple, Dict[int, float]], float]:
    """Default contribution: sum of the sampled base values in the lineage.

    This matches the common case where an intermediate tuple's uncertain
    attribute is (a copy of) a base tuple's attribute, e.g. a join
    output that carries forward the temperature of the matched base
    tuple.
    """

    def contribution(item: StreamTuple, assignment: Dict[int, float]) -> float:
        return sum(assignment[base_id] for base_id in item.lineage)

    return contribution


def lineage_aware_sum(
    items: Sequence[StreamTuple],
    attribute: str,
    archive: TupleArchive,
    independent_strategy: Optional[SumStrategy] = None,
    contribution: Optional[Callable[[StreamTuple, Dict[int, float]], float]] = None,
    n_samples: int = 2048,
    rng=None,
) -> Distribution:
    """Compute the SUM result distribution for possibly-correlated tuples.

    Parameters
    ----------
    items:
        The intermediate tuples to aggregate.
    attribute:
        The attribute being summed (looked up on base tuples for
        correlated groups and on the intermediate tuples for
        independent ones).
    archive:
        Archive resolving base tuple ids to base tuples.
    independent_strategy:
        Strategy used for the fully independent part (default: CF
        approximation).
    contribution:
        Optional override of how an intermediate tuple's contribution is
        computed from sampled base values.
    n_samples:
        Monte-Carlo sample count for correlated groups.
    """
    items = list(items)
    if not items:
        raise DistributionError("cannot aggregate an empty tuple set")
    independent_strategy = independent_strategy or CFApproximationSum()
    contribution = contribution or _default_contribution(attribute)
    rng = as_rng(rng)

    groups = correlation_groups(items)
    independent_summands: List[Distribution] = []
    correlated_totals: Optional[np.ndarray] = None

    for group in groups:
        if len(group) == 1:
            item = group[0]
            if item.has_uncertain(attribute):
                independent_summands.append(item.distribution(attribute))
            else:
                independent_summands.append(Gaussian(float(item.value(attribute)), 1e-9))
            continue
        totals = group_contribution_samples(
            group, attribute, archive, contribution, n_samples, rng
        )
        correlated_totals = totals if correlated_totals is None else correlated_totals + totals

    if correlated_totals is None:
        return independent_strategy.result_distribution(independent_summands)
    if independent_summands:
        independent_part = independent_strategy.result_distribution(independent_summands)
        correlated_totals = correlated_totals + np.asarray(
            independent_part.sample(n_samples, rng=rng), dtype=float
        )
    # Summarise the joint samples; a Gaussian fit keeps the result cheap
    # for further propagation, while a histogram would also be valid.
    if correlated_totals.std() < 1e-12:
        return Gaussian(float(correlated_totals.mean()), 1e-9)
    return fit_gaussian(correlated_totals, None)
