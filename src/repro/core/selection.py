"""Probabilistic selection over uncertain attributes.

A selection predicate on an uncertain attribute (e.g. ``T.temp > 60``
in query Q2) cannot be evaluated to true/false: the attribute is a
continuous random variable, so the predicate holds with some
probability computed from the tuple's pdf.  The
:class:`ProbabilisticSelect` operator evaluates that probability,
annotates the tuple with it, and keeps the tuple when the probability
clears a configurable threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

import numpy as np

from repro.distributions import Distribution
from repro.distributions.gaussian import gaussian_cdf
from repro.streams.batch import TupleBatch
from repro.streams.operators.base import Operator, OperatorError
from repro.streams.tuples import StreamTuple

__all__ = ["Comparison", "UncertainPredicate", "ProbabilisticSelect"]


class Comparison(str, Enum):
    """Supported comparison operators for uncertain predicates."""

    GREATER = ">"
    LESS = "<"
    BETWEEN = "between"


@dataclass(frozen=True)
class UncertainPredicate:
    """A predicate ``attribute <op> threshold`` on an uncertain attribute.

    ``BETWEEN`` interprets ``threshold`` as the lower bound and
    ``upper`` as the upper bound.
    """

    attribute: str
    comparison: Comparison
    threshold: float
    upper: Optional[float] = None

    def __post_init__(self) -> None:
        if self.comparison is Comparison.BETWEEN and self.upper is None:
            raise ValueError("BETWEEN predicates require an upper bound")

    def probability(self, item: StreamTuple) -> float:
        """Return the probability that the predicate holds for ``item``."""
        dist = self._distribution(item)
        if self.comparison is Comparison.GREATER:
            return dist.prob_greater_than(self.threshold)
        if self.comparison is Comparison.LESS:
            return dist.prob_less_than(self.threshold)
        assert self.upper is not None
        return dist.prob_in_interval(self.threshold, self.upper)

    def _distribution(self, item: StreamTuple) -> Distribution:
        if not item.has_uncertain(self.attribute):
            raise OperatorError(
                f"tuple has no uncertain attribute {self.attribute!r} for predicate evaluation"
            )
        return item.distribution(self.attribute)

    def probabilities(self, batch: TupleBatch) -> np.ndarray:
        """Return the predicate probability for every tuple in ``batch``.

        When every row carries a scalar Gaussian for the attribute, the
        tail probabilities are computed with a single vectorised
        ``erf`` evaluation over the batch's ``(mu, sigma)`` columns --
        the same arithmetic the scalar Gaussian CDF performs per tuple,
        so both paths agree bit-for-bit.  Mixed or non-Gaussian batches
        fall back to the per-tuple evaluation.
        """
        params = batch.gaussian_params(self.attribute)
        if params is None:
            return np.asarray([self.probability(item) for item in batch], dtype=float)
        mu, sigma = params
        if self.comparison is Comparison.GREATER:
            return 1.0 - gaussian_cdf(self.threshold, mu, sigma)
        if self.comparison is Comparison.LESS:
            return gaussian_cdf(self.threshold, mu, sigma)
        assert self.upper is not None
        return gaussian_cdf(self.upper, mu, sigma) - gaussian_cdf(self.threshold, mu, sigma)


class ProbabilisticSelect(Operator):
    """Keep tuples whose uncertain predicate holds with enough probability.

    Parameters
    ----------
    predicate:
        The uncertain predicate to evaluate.
    min_probability:
        Minimum predicate probability required to keep the tuple.  A
        value of 0 keeps every tuple (useful when only the annotation is
        wanted); 0.5 mimics a "more likely than not" semantics.
    probability_attribute:
        Name of the deterministic attribute added to surviving tuples
        carrying the evaluated probability.  Set to ``None`` to skip the
        annotation.
    """

    def __init__(
        self,
        predicate: UncertainPredicate,
        min_probability: float = 0.5,
        probability_attribute: Optional[str] = "selection_probability",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if not 0.0 <= min_probability <= 1.0:
            raise OperatorError("min_probability must lie in [0, 1]")
        self.predicate = predicate
        self.min_probability = min_probability
        self.probability_attribute = probability_attribute

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        prob = self.predicate.probability(item)
        if prob < self.min_probability:
            return
        if self.probability_attribute is None:
            yield item
        else:
            yield item.derive(values={self.probability_attribute: prob})

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self._keeps_process_of(ProbabilisticSelect)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Vectorised selection: one tail-probability kernel per batch.

        Annotated survivors are built through the trusted-constructor
        fast path: the source tuples are already validated, so only the
        ``values`` dict needs copying to carry the probability.
        """
        if not self.supports_batch:
            return super().process_batch(batch)
        probs = self.predicate.probabilities(batch)
        keep = probs >= self.min_probability
        if not keep.any():
            return TupleBatch()
        attribute = self.probability_attribute
        if attribute is None:
            return batch.select(keep)
        survivors = []
        append = survivors.append
        unchecked = StreamTuple._unchecked
        # tolist() yields plain Python bools/floats, avoiding per-element
        # numpy scalar boxing in the survivor loop.
        for item, kept, prob in zip(batch, keep.tolist(), probs.tolist()):
            if kept:
                values = dict(item.values)
                values[attribute] = prob
                append(
                    unchecked(item.timestamp, values, dict(item.uncertain), item.lineage)
                )
        return TupleBatch(survivors)
