"""Partition-aware planning: split a logical plan for sharded execution.

The sharded runtime (:mod:`repro.runtime`) replicates a *shard-local
segment* of the plan across N worker processes and recombines their
outputs in the coordinator.  This module decides where that split is
sound and builds both halves:

* **Row-wise plans** (filters, derives, probabilistic selections,
  summaries, unions, per-tuple ``[Now]`` aggregates) shard trivially:
  every tuple's output depends on that tuple alone, so the whole plan
  replicates and the coordinator only has to restore the global input
  order (which round-robin *chunk* partitioning preserves).
* **Time-window aggregates** split into a shard-local *partial*
  aggregate plus a coordinator *merge*: tumbling time windows assign
  tuples to windows by timestamp, so every shard closes the same window
  boundaries regardless of partitioning, and the moment-closed SUM
  strategies make the partials merge exactly
  (:mod:`repro.core.aggregation.merge`).  A probabilistic HAVING moves
  to the coordinator — it must see the merged result.  Row-wise nodes
  *above* the aggregate become the coordinator suffix.
* Everything else — joins (cross-stream state), count windows (window
  membership depends on the global interleave), sliding-window
  aggregates, piped operators (opaque state), non-moment-closed SUM
  strategies — does **not** shard; the runtime falls back to a single
  in-process engine and :func:`explain_sharding` says why.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.aggregation import MERGEABLE_FUNCTIONS, HavingClause, SumStrategy
from repro.streams.windows import NowWindow, TumblingTimeWindow

from .cost import CostModel
from .nodes import (
    AggregateNode,
    DeriveNode,
    FilterNode,
    FusedSelectAggregateNode,
    LogicalNode,
    LogicalPlan,
    ProbFilterNode,
    SourceNode,
    SummarizeNode,
    UnionNode,
    consumer_counts,
    topological_nodes,
)
from .planner import NodeLowering

__all__ = [
    "MergeSpec",
    "ShardingDecision",
    "split_for_sharding",
    "explain_sharding",
    "PARTIAL_SOURCE",
]

#: Source name the coordinator suffix plan reads merged results from.
PARTIAL_SOURCE = "__merged__"

#: Node types whose output depends on one input tuple at a time.
_ROW_WISE = (SourceNode, FilterNode, ProbFilterNode, DeriveNode, SummarizeNode, UnionNode)


@dataclass(frozen=True)
class MergeSpec:
    """How the coordinator merges shard-local partial aggregates."""

    function: str  # the *query's* aggregate function (sum/avg/count)
    output_attribute: str  # final result attribute name
    partial_attribute: str  # attribute carrying the shard partials
    strategy: Optional[SumStrategy]  # resolved, moment-closed (None for count)
    having: Optional[HavingClause]
    grouped: bool
    check_independence: bool
    window_desc: str


@dataclass(frozen=True)
class ShardingDecision:
    """The outcome of :func:`split_for_sharding`.

    ``shardable`` plans carry a ``local`` plan replicated on every
    shard; ``merge`` is set for aggregate splits (with an optional
    row-wise ``suffix`` plan the coordinator runs on merged results)
    and ``None`` for row-wise plans, whose outputs are recombined by
    ordered chunk merge instead.  ``partitioning`` is ``"any"`` when
    the merge is order-insensitive (hash or round-robin both work) and
    ``"chunked"`` when only order-preserving round-robin chunking keeps
    sharded output identical to the single engine.
    """

    shardable: bool
    reason: str
    local: Optional[LogicalPlan] = None
    merge: Optional[MergeSpec] = None
    suffix: Optional[LogicalPlan] = None
    partitioning: str = "chunked"

    @property
    def ordered(self) -> bool:
        """True when outputs are recombined by ordered chunk merge."""
        return self.shardable and self.merge is None


def _unshardable(reason: str) -> ShardingDecision:
    return ShardingDecision(shardable=False, reason=reason)


def _is_row_local(node: LogicalNode) -> bool:
    """Output of ``node`` depends only on single tuples (any partitioning)."""
    if isinstance(node, _ROW_WISE):
        return True
    if isinstance(node, AggregateNode):
        return isinstance(node.window, NowWindow)
    if isinstance(node, FusedSelectAggregateNode):
        return isinstance(node.aggregate.window, NowWindow)
    return False


def _splittable_aggregate(node: LogicalNode) -> Optional[AggregateNode]:
    """Return the AggregateNode to split at, or None."""
    if isinstance(node, FusedSelectAggregateNode):
        agg = node.aggregate
    elif isinstance(node, AggregateNode):
        agg = node
    else:
        return None
    if isinstance(agg.window, NowWindow):
        return None  # row-local, no merge needed
    return agg


def _first_non_row_local(subtree: LogicalNode) -> Optional[LogicalNode]:
    for node in topological_nodes((subtree,)):
        if not _is_row_local(node):
            return node
    return None


def split_for_sharding(
    plan: LogicalPlan, cost_model: Optional[CostModel] = None
) -> ShardingDecision:
    """Split an (already optimized) single-output plan for sharding.

    The caller is expected to run the planner's rewrite rules first, so
    the split sees the same plan shape the single engine would execute
    (in particular ``fuse_select_into_aggregate`` has already fired).
    """
    cost_model = cost_model or CostModel()
    if len(plan.outputs) != 1:
        return _unshardable(
            f"multi-output plans do not shard ({len(plan.outputs)} outputs); "
            "shard each output as its own query"
        )
    plan.validate()
    counts = consumer_counts(plan.outputs)

    # Walk the root chain downward collecting the row-wise suffix until
    # we hit a splittable aggregate, a source, or something unshardable.
    suffix_chain: List[LogicalNode] = []
    current: LogicalNode = plan.outputs[0]
    while True:
        agg = _splittable_aggregate(current)
        if agg is not None:
            return _split_at_aggregate(plan, current, agg, suffix_chain, counts, cost_model)
        if _is_row_local(current):
            inputs = current.inputs
            if len(inputs) != 1:
                break  # a source or union: no aggregate split on this chain
            if counts.get(id(inputs[0]), 0) > 1:
                break  # fan-out below; only a fully row-wise plan can shard
            suffix_chain.append(current)
            current = inputs[0]
            continue
        return _unshardable(_describe_blocker(current))

    # No aggregate split: the whole plan shards iff every node is row-wise.
    blocker = _first_non_row_local(plan.outputs[0])
    if blocker is not None:
        return _unshardable(_describe_blocker(blocker))
    return ShardingDecision(
        shardable=True,
        reason=(
            "row-wise plan: every box processes tuples independently; the "
            "whole plan replicates per shard and ordered chunk merge restores "
            "the global output order"
        ),
        local=plan,
        merge=None,
        suffix=None,
        partitioning="chunked",
    )


def _describe_blocker(node: LogicalNode) -> str:
    label = node.label()
    if isinstance(node, AggregateNode):
        return (
            f"{label}: only tumbling *time* windows shard (window membership "
            "is determined by each tuple's timestamp); count and sliding "
            "windows depend on the global tuple interleave"
        )
    if isinstance(node, FusedSelectAggregateNode):
        return _describe_blocker(node.aggregate)
    return (
        f"{label}: joins, piped operators and other stateful boxes need the "
        "whole stream in one place"
    )


def _split_at_aggregate(
    plan: LogicalPlan,
    split_node: LogicalNode,
    agg: AggregateNode,
    suffix_chain: List[LogicalNode],
    counts,
    cost_model: CostModel,
) -> ShardingDecision:
    if not isinstance(agg.window, TumblingTimeWindow):
        return _unshardable(_describe_blocker(agg))
    if agg.function not in MERGEABLE_FUNCTIONS:
        return _unshardable(
            f"{agg.label()}: {agg.function!r} partials do not merge exactly "
            f"(mergeable: {MERGEABLE_FUNCTIONS}); MAX/MIN order statistics are "
            "grid-discretised, so composing per-shard results would drift"
        )
    if counts.get(id(split_node), 0) > 1:
        return _unshardable(
            f"{agg.label()}: the aggregate's output fans out to several "
            "consumers; sharding would have to replicate the merge"
        )
    # Everything feeding the aggregate must itself be row-wise.
    blocker = _first_non_row_local(split_node.inputs[0])
    if blocker is not None:
        return _unshardable(_describe_blocker(blocker))

    # Resolve the SUM strategy exactly as lowering would, so the merge
    # reproduces the single engine's arithmetic.
    strategy: Optional[SumStrategy] = None
    if agg.function in ("sum", "avg"):
        nodes = topological_nodes(plan.outputs)
        lowering = NodeLowering(cost_model, nodes)
        strategy = lowering._resolve_strategy(agg, id(split_node), agg.label())
        if strategy is None or not strategy.supports_moments:
            name = type(strategy).__name__ if strategy is not None else "none"
            return _unshardable(
                f"{agg.label()}: resolved SUM strategy {name} is not "
                "moment-closed, so shard partials cannot be merged exactly"
            )

    partial_attribute = f"partial_{agg.result_attribute}"
    partial_agg = replace(
        agg,
        function="sum" if agg.function == "avg" else agg.function,
        strategy=strategy,
        having=None,
        output_attribute=partial_attribute,
    )
    if isinstance(split_node, FusedSelectAggregateNode):
        local_root: LogicalNode = replace(split_node, aggregate=partial_agg)
    else:
        local_root = partial_agg
    local = LogicalPlan(outputs=(local_root,), names=("partials",))
    local.validate()

    suffix = _build_suffix(suffix_chain)
    merge = MergeSpec(
        function=agg.function,
        output_attribute=agg.result_attribute,
        partial_attribute=partial_attribute,
        strategy=strategy,
        having=agg.having,
        grouped=agg.key is not None,
        check_independence=agg.check_independence,
        window_desc=repr(agg.window),
    )
    strategy_desc = f", strategy={type(strategy).__name__}" if strategy else ""
    return ShardingDecision(
        shardable=True,
        reason=(
            f"split at {agg.label()}: shards run the partial aggregate "
            f"({partial_agg.function} into {partial_attribute!r}{strategy_desc}), "
            "the coordinator merges window moments"
            + (" and applies HAVING" if agg.having is not None else "")
        ),
        local=local,
        merge=merge,
        suffix=suffix,
        partitioning="any",
    )


def _build_suffix(suffix_chain: List[LogicalNode]) -> Optional[LogicalPlan]:
    """Rebuild the root chain above the split over a merged-result source.

    ``suffix_chain`` is ordered root-first; the rebuilt plan reads from
    an open-schema source (the coordinator pushes merged result tuples
    into it), so schema checks that need upstream knowledge are
    skipped, exactly as for any open source.
    """
    if not suffix_chain:
        return None
    current: LogicalNode = SourceNode(name=PARTIAL_SOURCE)
    for node in reversed(suffix_chain):
        current = node.with_inputs(current)
    suffix = LogicalPlan(outputs=(current,))
    suffix.validate()
    return suffix


def explain_sharding(decision: ShardingDecision, workers: Optional[int] = None) -> str:
    """Render a sharding decision for ``explain()`` reports."""
    lines = ["Sharding", "========"]
    if workers is not None:
        lines.append(f"workers: {workers}")
    if not decision.shardable:
        lines.append("sharded: no (single-engine fallback)")
        lines.append(f"reason: {decision.reason}")
        return "\n".join(lines)
    lines.append("sharded: yes")
    lines.append(f"partitioning: {decision.partitioning}")
    lines.append(f"reason: {decision.reason}")
    lines.append("")
    lines.append("Shard-local segment (replicated per worker)")
    lines.append("-------------------------------------------")
    lines.append(decision.local.explain())
    lines.append("")
    lines.append("Coordinator merge")
    lines.append("-----------------")
    if decision.merge is None:
        lines.append("ordered chunk merge (restores global input order)")
    else:
        spec = decision.merge
        strategy = type(spec.strategy).__name__ if spec.strategy else "count"
        lines.append(
            f"window-partial merge: {spec.function}({spec.partial_attribute}) "
            f"per {spec.window_desc}"
            + (" per group" if spec.grouped else "")
            + f" via {strategy}"
        )
        if spec.having is not None:
            lines.append(
                f"HAVING on merged result: P[> {spec.having.threshold}] "
                f">= {spec.having.min_probability}"
            )
    if decision.suffix is not None:
        lines.append("")
        lines.append("Coordinator suffix")
        lines.append("------------------")
        lines.append(decision.suffix.explain())
    return "\n".join(lines)
