"""Declarative query layer: builder -> logical plan IR -> cost-aware planner.

This package is the "compiled from a query" path of the paper's
Section 3, structured like a small DBMS front end:

* :class:`Stream` (:mod:`repro.plan.builder`) — fluent, DAG-capable
  query builder.  Handles are immutable; reuse one handle in two
  chains for fan-out, ``join``/``union`` for fan-in.
* :mod:`repro.plan.nodes` — the immutable logical plan IR with schema
  checking and ``explain()``.
* :mod:`repro.plan.rewrites` — semantics-preserving rewrite rules
  (filter pushdown, filter fusion, select→aggregate fusion).
* :mod:`repro.plan.cost` — the cost model choosing SUM strategies
  (CF approximation / CLT / CF inversion) and batch vs tuple execution.
* :class:`Planner` / :class:`CompiledQuery`
  (:mod:`repro.plan.planner`) — lowering onto the
  :class:`~repro.streams.engine.StreamEngine`, end-to-end
  ``explain()`` and per-box ``statistics()``.

Quick taste::

    from repro.plan import Stream
    from repro.streams import TumblingCountWindow

    query = (
        Stream.source("sensors", uncertain=("value",), family="gmm")
        .where_probably("value", ">", 20.0)
        .window(TumblingCountWindow(100))
        .aggregate("value")            # strategy chosen by the cost model
        .summarize("sum_value")
        .compile()
    )
    print(query.explain())
    query.push_many("sensors", tuples)
    results = query.finish()
"""

from .builder import Stream
from .cost import CostModel, ExecutionChoice, StrategyChoice
from .fingerprint import callable_fingerprint, node_fingerprint, plan_fingerprints
from .nodes import (
    AggregateNode,
    ColumnStat,
    DeriveNode,
    FilterNode,
    FusedSelectAggregateNode,
    JoinNode,
    LogicalNode,
    LogicalPlan,
    PipeNode,
    PlanError,
    ProbFilterNode,
    SourceNode,
    StreamSchema,
    SummarizeNode,
    UnionNode,
    explain_logical,
)
from .physical import FusedBatchSegment, FusedSelectAggregate
from .planner import CompiledQuery, NodeLowering, Planner, compile_streams
from .sharding import (
    MergeSpec,
    ShardingDecision,
    explain_sharding,
    split_for_sharding,
)
from .rewrites import (
    DEFAULT_RULES,
    RewriteRule,
    RewriteTrace,
    apply_rewrites,
    default_rules,
    fuse_adjacent_filters,
    fuse_select_into_aggregate,
    push_filter_below_derive,
    push_filter_below_join,
    reorder_cheap_filter_first,
    reorder_selective_prob_filter_first,
)

__all__ = [
    "Stream",
    "LogicalPlan",
    "LogicalNode",
    "SourceNode",
    "DeriveNode",
    "FilterNode",
    "ProbFilterNode",
    "AggregateNode",
    "JoinNode",
    "UnionNode",
    "SummarizeNode",
    "PipeNode",
    "FusedSelectAggregateNode",
    "StreamSchema",
    "PlanError",
    "explain_logical",
    "Planner",
    "CompiledQuery",
    "compile_streams",
    "CostModel",
    "StrategyChoice",
    "ExecutionChoice",
    "RewriteRule",
    "RewriteTrace",
    "apply_rewrites",
    "DEFAULT_RULES",
    "default_rules",
    "push_filter_below_derive",
    "push_filter_below_join",
    "fuse_adjacent_filters",
    "reorder_cheap_filter_first",
    "reorder_selective_prob_filter_first",
    "fuse_select_into_aggregate",
    "FusedSelectAggregate",
    "FusedBatchSegment",
    "NodeLowering",
    "ColumnStat",
    "callable_fingerprint",
    "node_fingerprint",
    "plan_fingerprints",
    "MergeSpec",
    "ShardingDecision",
    "split_for_sharding",
    "explain_sharding",
]
