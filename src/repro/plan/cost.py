"""Cost model: SUM-strategy selection and batch-vs-tuple execution choice.

The paper's Table 2 measures the speed/accuracy trade-off of the SUM
algorithms; this module encodes its conclusions as a small, fully
deterministic cost model the planner consults when the query does not
pin a strategy explicitly:

* **CLT** is (nearly) free and accurate once the window holds enough
  summands — the error of the Gaussian approximation shrinks like
  ``O(1/sqrt(n))``, so past ``clt_window_threshold`` summands it wins
  outright.
* **CF approximation** (single component) matches the first two
  cumulants in closed form — exact for Gaussian inputs at CLT-level
  cost, and the best speed/accuracy balance for mid-sized non-Gaussian
  windows (the paper's headline choice).
* **CF inversion** is exact but pays a quadrature per window; it is
  only worth it for *small* windows of non-Gaussian summands, where
  the CLT has not kicked in and the inversion cost is bounded.

The execution-mode choice is structural: batch execution only pays off
when the plan's boxes actually run vectorised kernels, so the model
counts physical operators that advertise ``supports_batch``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.aggregation import CFApproximationSum, CFInversionSum, CLTSum, SumStrategy
from repro.streams.operators.base import Operator
from repro.streams.windows import (
    NowWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
    WindowSpec,
)

__all__ = ["CostModel", "StrategyChoice", "ExecutionChoice"]

#: Distribution families for which the 2-cumulant CF fit is *exact*.
_MOMENT_CLOSED_FAMILIES = frozenset({"gaussian", "normal"})


@dataclass(frozen=True)
class StrategyChoice:
    """A cost-model strategy decision plus its one-line justification."""

    strategy: SumStrategy
    reason: str


@dataclass(frozen=True)
class ExecutionChoice:
    """A cost-model execution decision (mode + batch size) and why."""

    mode: str  # "batch" or "tuple"
    batch_size: Optional[int]
    reason: str


class CostModel:
    """Deterministic cost model for strategy and execution-mode choices.

    Thresholds are tunable so experiments can shift the trade-off
    points; the defaults follow the Table 2 discussion (see module
    docstring).
    """

    def __init__(
        self,
        clt_window_threshold: int = 50,
        inversion_window_limit: int = 8,
        default_batch_size: int = 256,
        min_vectorized_fraction: float = 0.5,
    ):
        if clt_window_threshold < 2:
            raise ValueError("clt_window_threshold must be at least 2")
        if inversion_window_limit < 1:
            raise ValueError("inversion_window_limit must be at least 1")
        if default_batch_size < 1:
            raise ValueError("default_batch_size must be at least 1")
        if not 0.0 <= min_vectorized_fraction <= 1.0:
            raise ValueError("min_vectorized_fraction must lie in [0, 1]")
        self.clt_window_threshold = clt_window_threshold
        self.inversion_window_limit = inversion_window_limit
        self.default_batch_size = default_batch_size
        self.min_vectorized_fraction = min_vectorized_fraction

    # ------------------------------------------------------------------
    # Window sizing
    # ------------------------------------------------------------------
    def expected_window_size(
        self, window: WindowSpec, rate_hint: Optional[float]
    ) -> Optional[int]:
        """Estimate how many tuples one window will hold (None = unknown)."""
        if isinstance(window, TumblingCountWindow):
            return window.size
        if isinstance(window, NowWindow):
            return 1
        if isinstance(window, (TumblingTimeWindow, SlidingTimeWindow)) and rate_hint:
            return max(1, int(round(window.length * rate_hint)))
        return None

    # ------------------------------------------------------------------
    # SUM strategy
    # ------------------------------------------------------------------
    def choose_sum_strategy(
        self,
        window: WindowSpec,
        family: Optional[str],
        rate_hint: Optional[float] = None,
    ) -> StrategyChoice:
        """Pick the SUM/AVG strategy for an aggregate without an explicit one."""
        n = self.expected_window_size(window, rate_hint)
        family_key = family.lower() if family else None

        if family_key in _MOMENT_CLOSED_FAMILIES:
            return StrategyChoice(
                CFApproximationSum(),
                f"family={family_key}: 2-cumulant CF fit is exact for Gaussian summands",
            )
        if n is not None and n >= self.clt_window_threshold:
            return StrategyChoice(
                CLTSum(),
                f"window of ~{n} summands >= {self.clt_window_threshold}: "
                "CLT error is negligible at near-zero cost",
            )
        if n is not None and n <= self.inversion_window_limit:
            return StrategyChoice(
                CFInversionSum(),
                f"small window of ~{n} non-Gaussian summands: "
                "exact CF inversion is affordable",
            )
        size_desc = "unknown size" if n is None else f"~{n} summands"
        return StrategyChoice(
            CFApproximationSum(),
            f"window of {size_desc}: CF approximation is the best "
            "speed/accuracy balance (Table 2)",
        )

    # ------------------------------------------------------------------
    # Execution mode
    # ------------------------------------------------------------------
    def choose_execution(
        self,
        operators: Sequence[Operator],
        window_sizes: Sequence[int] = (),
    ) -> ExecutionChoice:
        """Pick batch vs tuple execution for a lowered physical plan.

        Batch execution is chosen when at least
        ``min_vectorized_fraction`` of the boxes run vectorised batch
        kernels; otherwise the per-tuple fallback loops would dominate
        and the tuple path's simpler scheduling wins.  The batch size
        is the default, stretched to cover the largest expected window
        so windowed aggregates see whole windows per bulk insert.
        """
        if not operators:
            return ExecutionChoice("tuple", None, "no query boxes to vectorise")
        vectorized = [op for op in operators if getattr(op, "supports_batch", False)]
        fraction = len(vectorized) / len(operators)
        if fraction < self.min_vectorized_fraction:
            return ExecutionChoice(
                "tuple",
                None,
                f"only {len(vectorized)}/{len(operators)} boxes run vectorised "
                "batch kernels; per-tuple fallback loops would dominate",
            )
        batch_size = self.default_batch_size
        if window_sizes:
            batch_size = max(batch_size, *window_sizes)
        return ExecutionChoice(
            "batch",
            batch_size,
            f"{len(vectorized)}/{len(operators)} boxes run vectorised batch "
            f"kernels; batch_size={batch_size}",
        )

    def resolve_batch_size(
        self, batch_size: Optional[int], window_sizes: Sequence[int] = ()
    ) -> int:
        """Batch size for an explicitly requested batch mode."""
        if batch_size is not None:
            return batch_size
        if window_sizes:
            return max(self.default_batch_size, *window_sizes)
        return self.default_batch_size
