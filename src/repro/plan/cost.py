"""Cost model: SUM-strategy selection and batch-vs-tuple execution choice.

The paper's Table 2 measures the speed/accuracy trade-off of the SUM
algorithms; this module encodes its conclusions as a small, fully
deterministic cost model the planner consults when the query does not
pin a strategy explicitly:

* **CLT** is (nearly) free and accurate once the window holds enough
  summands — the error of the Gaussian approximation shrinks like
  ``O(1/sqrt(n))``, so past ``clt_window_threshold`` summands it wins
  outright.
* **CF approximation** (single component) matches the first two
  cumulants in closed form — exact for Gaussian inputs at CLT-level
  cost, and the best speed/accuracy balance for mid-sized non-Gaussian
  windows (the paper's headline choice).
* **CF inversion** is exact but pays a quadrature per window; it is
  only worth it for *small* windows of non-Gaussian summands, where
  the CLT has not kicked in and the inversion cost is bounded.

The execution-mode choice is structural: batch execution only pays off
when the plan's boxes actually run vectorised kernels, so the model
counts physical operators that advertise ``supports_batch``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.aggregation import CFApproximationSum, CFInversionSum, CLTSum, SumStrategy
from repro.core.selection import Comparison
from repro.streams.operators.base import Operator
from repro.streams.windows import (
    NowWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
    WindowSpec,
)

from .nodes import (
    ColumnStat,
    DeriveNode,
    FilterNode,
    LogicalNode,
    ProbFilterNode,
    SourceNode,
)

__all__ = ["CostModel", "StrategyChoice", "ExecutionChoice"]

#: Distribution families for which the 2-cumulant CF fit is *exact*.
_MOMENT_CLOSED_FAMILIES = frozenset({"gaussian", "normal"})


@dataclass(frozen=True)
class StrategyChoice:
    """A cost-model strategy decision plus its one-line justification."""

    strategy: SumStrategy
    reason: str


@dataclass(frozen=True)
class ExecutionChoice:
    """A cost-model execution decision (mode + batch size) and why."""

    mode: str  # "batch" or "tuple"
    batch_size: Optional[int]
    reason: str


class CostModel:
    """Deterministic cost model for strategy and execution-mode choices.

    Thresholds are tunable so experiments can shift the trade-off
    points; the defaults follow the Table 2 discussion (see module
    docstring).
    """

    def __init__(
        self,
        clt_window_threshold: int = 50,
        inversion_window_limit: int = 8,
        default_batch_size: int = 256,
        min_vectorized_fraction: float = 0.5,
        det_filter_cost: float = 1.0,
        prob_filter_cost: float = 4.0,
        default_filter_selectivity: float = 0.5,
    ):
        if clt_window_threshold < 2:
            raise ValueError("clt_window_threshold must be at least 2")
        if inversion_window_limit < 1:
            raise ValueError("inversion_window_limit must be at least 1")
        if default_batch_size < 1:
            raise ValueError("default_batch_size must be at least 1")
        if not 0.0 <= min_vectorized_fraction <= 1.0:
            raise ValueError("min_vectorized_fraction must lie in [0, 1]")
        if det_filter_cost <= 0.0 or prob_filter_cost <= 0.0:
            raise ValueError("filter costs must be positive")
        if not 0.0 <= default_filter_selectivity <= 1.0:
            raise ValueError("default_filter_selectivity must lie in [0, 1]")
        self.clt_window_threshold = clt_window_threshold
        self.inversion_window_limit = inversion_window_limit
        self.default_batch_size = default_batch_size
        self.min_vectorized_fraction = min_vectorized_fraction
        self.det_filter_cost = det_filter_cost
        self.prob_filter_cost = prob_filter_cost
        self.default_filter_selectivity = default_filter_selectivity

    # ------------------------------------------------------------------
    # Window sizing
    # ------------------------------------------------------------------
    def expected_window_size(
        self, window: WindowSpec, rate_hint: Optional[float]
    ) -> Optional[int]:
        """Estimate how many tuples one window will hold (None = unknown)."""
        if isinstance(window, TumblingCountWindow):
            return window.size
        if isinstance(window, NowWindow):
            return 1
        if isinstance(window, (TumblingTimeWindow, SlidingTimeWindow)) and rate_hint:
            return max(1, int(round(window.length * rate_hint)))
        return None

    # ------------------------------------------------------------------
    # SUM strategy
    # ------------------------------------------------------------------
    def choose_sum_strategy(
        self,
        window: WindowSpec,
        family: Optional[str],
        rate_hint: Optional[float] = None,
    ) -> StrategyChoice:
        """Pick the SUM/AVG strategy for an aggregate without an explicit one."""
        n = self.expected_window_size(window, rate_hint)
        family_key = family.lower() if family else None

        if family_key in _MOMENT_CLOSED_FAMILIES:
            return StrategyChoice(
                CFApproximationSum(),
                f"family={family_key}: 2-cumulant CF fit is exact for Gaussian summands",
            )
        if n is not None and n >= self.clt_window_threshold:
            return StrategyChoice(
                CLTSum(),
                f"window of ~{n} summands >= {self.clt_window_threshold}: "
                "CLT error is negligible at near-zero cost",
            )
        if n is not None and n <= self.inversion_window_limit:
            return StrategyChoice(
                CFInversionSum(),
                f"small window of ~{n} non-Gaussian summands: "
                "exact CF inversion is affordable",
            )
        size_desc = "unknown size" if n is None else f"~{n} summands"
        return StrategyChoice(
            CFApproximationSum(),
            f"window of {size_desc}: CF approximation is the best "
            "speed/accuracy balance (Table 2)",
        )

    # ------------------------------------------------------------------
    # Filter selectivity
    # ------------------------------------------------------------------
    def column_stat_for(
        self, node: LogicalNode, attribute: str
    ) -> Optional[ColumnStat]:
        """Find the source-declared statistics for ``attribute`` above ``node``.

        Walks upstream through row-wise nodes (filters, derives that do
        not introduce the attribute) to the :class:`SourceNode`.  Any
        shape-changing node (join, union, aggregate, pipe) ends the
        walk: the attribute's population there is not the declared one.
        """
        current: LogicalNode = node
        while True:
            if isinstance(current, SourceNode):
                return current.stat_for(attribute)
            if isinstance(current, DeriveNode):
                if attribute in current.introduced:
                    return None
            elif not isinstance(current, (FilterNode, ProbFilterNode)):
                return None
            inputs = current.inputs
            if len(inputs) != 1:
                return None
            current = inputs[0]

    @staticmethod
    def comparison_pass_rate(
        stat: ColumnStat,
        comparison: Comparison,
        threshold: float,
        upper: Optional[float] = None,
    ) -> float:
        """Pass-rate of a constant comparison under the declared CDF."""
        if stat.family == "uniform":

            def cdf(x: float) -> float:
                return min(1.0, max(0.0, (x - stat.a) / (stat.b - stat.a)))

        else:  # gaussian / normal

            def cdf(x: float) -> float:
                return 0.5 * (1.0 + math.erf((x - stat.a) / (stat.b * math.sqrt(2.0))))

        if comparison is Comparison.GREATER:
            rate = 1.0 - cdf(threshold)
        elif comparison is Comparison.LESS:
            rate = cdf(threshold)
        else:  # BETWEEN
            rate = cdf(upper if upper is not None else threshold) - cdf(threshold)
        return min(1.0, max(0.0, rate))

    def prob_filter_selectivity(self, node: ProbFilterNode) -> Optional[float]:
        """Estimate a probabilistic filter's pass-rate, or None.

        First-order estimate: the declared column statistics describe
        how the attribute varies *across* tuples, per-tuple uncertainty
        is taken as small against that spread, and upstream filters on
        the same attribute are ignored — so the pass-rate is simply the
        declared CDF evaluated at the comparison constants.
        """
        stat = self.column_stat_for(node.input, node.attribute)
        if stat is None:
            return None
        return self.comparison_pass_rate(
            stat, node.comparison, node.threshold, node.upper
        )

    def filter_cost(self, node: LogicalNode) -> float:
        """Relative per-tuple evaluation cost of a row filter."""
        if isinstance(node, FilterNode):
            return node.cost_hint if node.cost_hint is not None else self.det_filter_cost
        if isinstance(node, ProbFilterNode):
            return self.prob_filter_cost
        raise ValueError(f"not a row filter node: {type(node).__name__}")

    def filter_selectivity(self, node: LogicalNode) -> float:
        """Estimated pass-rate of a row filter (default when unknown)."""
        if isinstance(node, ProbFilterNode):
            estimate = self.prob_filter_selectivity(node)
            if estimate is not None:
                return estimate
        return self.default_filter_selectivity

    def prefer_first(self, first: LogicalNode, second: LogicalNode) -> bool:
        """Should ``first`` run before ``second`` (both row filters)?

        Classic predicate ordering: evaluating ``first`` then
        ``second`` costs ``c1 + s1*c2`` per input tuple versus
        ``c2 + s2*c1`` for the other order; the cheaper product of
        selectivity × cost wins.  Ties keep the current order.
        """
        c1, s1 = self.filter_cost(first), self.filter_selectivity(first)
        c2, s2 = self.filter_cost(second), self.filter_selectivity(second)
        return c1 + s1 * c2 < c2 + s2 * c1

    # ------------------------------------------------------------------
    # Execution mode
    # ------------------------------------------------------------------
    def choose_execution(
        self,
        operators: Sequence[Operator],
        window_sizes: Sequence[int] = (),
    ) -> ExecutionChoice:
        """Pick batch vs tuple execution for a lowered physical plan.

        Batch execution is chosen when at least
        ``min_vectorized_fraction`` of the boxes run vectorised batch
        kernels; otherwise the per-tuple fallback loops would dominate
        and the tuple path's simpler scheduling wins.  The batch size
        is the default, stretched to cover the largest expected window
        so windowed aggregates see whole windows per bulk insert.
        """
        if not operators:
            return ExecutionChoice("tuple", None, "no query boxes to vectorise")
        vectorized = [op for op in operators if getattr(op, "supports_batch", False)]
        fraction = len(vectorized) / len(operators)
        if fraction < self.min_vectorized_fraction:
            return ExecutionChoice(
                "tuple",
                None,
                f"only {len(vectorized)}/{len(operators)} boxes run vectorised "
                "batch kernels; per-tuple fallback loops would dominate",
            )
        batch_size = self.default_batch_size
        if window_sizes:
            batch_size = max(batch_size, *window_sizes)
        return ExecutionChoice(
            "batch",
            batch_size,
            f"{len(vectorized)}/{len(operators)} boxes run vectorised batch "
            f"kernels; batch_size={batch_size}",
        )

    def resolve_batch_size(
        self, batch_size: Optional[int], window_sizes: Sequence[int] = ()
    ) -> int:
        """Batch size for an explicitly requested batch mode."""
        if batch_size is not None:
            return batch_size
        if window_sizes:
            return max(self.default_batch_size, *window_sizes)
        return self.default_batch_size
