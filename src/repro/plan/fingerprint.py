"""Structural fingerprints for logical plan nodes.

Cross-query subplan sharing (:class:`repro.service.QuerySession`) needs
to recognise that two *independently built* logical plans contain the
same work: two queries that both read ``source("rfid")`` through the
same probabilistic filter and window should compile to **one** physical
operator chain, not two.  Node identity cannot express that — each
query builds its own node objects — so this module assigns every node a
*structural fingerprint*: a hashable value that is equal exactly when
two subtrees would lower to interchangeable physical boxes.

A fingerprint covers the node's type, its parameters, and (recursively)
the fingerprints of its inputs, so equality of fingerprints implies the
*whole subtree* matches — the only condition under which sharing a
stateful physical box (a window buffer, a join) between queries is
sound.

Callables are the subtle part.  Two textually identical lambdas are
distinct objects with unobservable semantics, so by default a callable
fingerprints by **object identity**: sharing happens when two queries
reuse the *same function object* (which the fluent API encourages, and
a UDF registry guarantees).  Code that compiles predicates from a
canonical text form — the CQL front end — can do better by tagging the
compiled closure::

    closure.__plan_fingerprint__ = ("cql-expr", canonical_text, ...)

and two closures compiled from the same text then share.  The tag must
uniquely determine the closure's behaviour; the CQL compiler includes
the identity of every referenced UDF in it.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.streams.windows import WindowSpec

from .nodes import (
    FusedSelectAggregateNode,
    LogicalNode,
    PipeNode,
    SourceNode,
    topological_nodes,
)

__all__ = [
    "callable_fingerprint",
    "value_fingerprint",
    "node_fingerprint",
    "plan_fingerprints",
]

#: Attribute under which a compiler can tag a closure with a canonical,
#: behaviour-determining fingerprint (see module docstring).
FINGERPRINT_ATTR = "__plan_fingerprint__"


def callable_fingerprint(fn: Callable) -> Hashable:
    """Fingerprint a callable: its canonical tag, or its identity."""
    tag = getattr(fn, FINGERPRINT_ATTR, None)
    if tag is not None:
        return ("tagged", tag)
    return ("instance", id(fn))


def value_fingerprint(value) -> Hashable:
    """Fingerprint one node parameter value.

    Handles the kinds of values logical nodes carry: plain hashables,
    callables, window specs, strategy objects, frozen dataclasses
    (``HavingClause``, ``ColumnStat``) and tuples thereof.  Unknown
    unhashable objects fall back to identity, which disables sharing
    for that node — safe, never wrong.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, frozenset):
        return ("fset", tuple(sorted(map(repr, value))))
    if isinstance(value, tuple):
        return tuple(value_fingerprint(v) for v in value)
    if isinstance(value, WindowSpec):
        attrs = tuple(sorted((k, value_fingerprint(v)) for k, v in vars(value).items()))
        return ("window", type(value).__name__, attrs)
    if is_dataclass(value) and not isinstance(value, type):
        attrs = tuple(
            (f.name, value_fingerprint(getattr(value, f.name))) for f in fields(value)
        )
        return ("dc", type(value).__name__, attrs)
    if callable(value):
        return ("fn", callable_fingerprint(value))
    state = getattr(value, "__dict__", None)
    if state is not None:
        # Parameter objects (e.g. SUM strategies) fingerprint by their
        # class and attribute values.
        attrs = tuple(sorted((k, value_fingerprint(v)) for k, v in state.items()))
        return ("obj", type(value).__name__, attrs)
    return ("id", id(value))


def node_fingerprint(
    node: LogicalNode, input_fingerprints: Tuple[Hashable, ...]
) -> Hashable:
    """Fingerprint one node given the fingerprints of its inputs."""
    if isinstance(node, PipeNode):
        # A piped operator is an opaque stateful instance: two PipeNodes
        # are interchangeable only when they wrap the *same* operator
        # object (the Figure 2 shared-T-operator case).
        return ("Pipe", id(node.operator)) + tuple(input_fingerprints)
    if isinstance(node, FusedSelectAggregateNode):
        # The payload nodes are parameters here, not inputs: the select
        # carries the node's true input, the aggregate contributes only
        # its settings (its ``input`` field points back at the select).
        return (
            "FusedSelectAggregate",
            node_fingerprint(node.select, tuple(input_fingerprints)),
            node_fingerprint(node.aggregate, ()),
        )
    params = []
    for f in fields(node):
        value = getattr(node, f.name)
        if isinstance(value, LogicalNode):
            continue  # covered by input_fingerprints
        if isinstance(value, tuple) and any(isinstance(v, LogicalNode) for v in value):
            continue  # UnionNode.sources
        params.append((f.name, value_fingerprint(value)))
    return (type(node).__name__, tuple(params)) + tuple(input_fingerprints)


def plan_fingerprints(
    roots: Tuple[LogicalNode, ...],
    source_overrides: Optional[Dict[str, Hashable]] = None,
) -> Dict[int, Hashable]:
    """Fingerprint every node reachable from ``roots``.

    Returns ``id(node) -> fingerprint`` (bottom-up, memoised; shared
    node objects fingerprint once).  ``source_overrides`` optionally
    maps a source *name* to a fixed fingerprint, which a session uses
    to make every reference to a registered stream resolve to the same
    physical entry regardless of how the query re-declared it.
    """
    fingerprints: Dict[int, Hashable] = {}
    for node in topological_nodes(roots):
        if (
            source_overrides is not None
            and isinstance(node, SourceNode)
            and node.name in source_overrides
        ):
            fingerprints[id(node)] = source_overrides[node.name]
            continue
        inputs = tuple(fingerprints[id(child)] for child in node.inputs)
        fingerprints[id(node)] = node_fingerprint(node, inputs)
    return fingerprints
