"""Physical operators that only the planner creates.

The generic boxes live in :mod:`repro.streams.operators` and
:mod:`repro.core`; this module holds the *fused* boxes produced by
planner rewrites, which have no stand-alone declarative surface.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.aggregation.operator import GroupByAggregate, UncertainAggregate
from repro.core.selection import UncertainPredicate
from repro.streams.batch import TupleBatch
from repro.streams.operators.base import Operator, OperatorError
from repro.streams.tuples import StreamTuple

__all__ = ["FusedSelectAggregate", "FusedBatchSegment"]


class FusedSelectAggregate(Operator):
    """A probabilistic selection fused into the windowed aggregate below it.

    Produced by the ``fuse_select_into_aggregate`` rewrite.  Compared
    to the two-box plan it

    * skips building annotated survivor tuples (the aggregate discards
      per-input attributes at the window boundary anyway), and
    * on the batch path evaluates the selection mask and the window
      moment columns in one pass over the batch.

    The wrapped aggregate is a regular :class:`UncertainAggregate` or
    :class:`GroupByAggregate`; this box drives its window buffer and
    emission machinery directly so windowing, HAVING and strategy
    semantics stay identical to the unfused plan.
    """

    supports_batch = True

    def __init__(
        self,
        predicate: UncertainPredicate,
        min_probability: float,
        aggregate: Operator,
        name: Optional[str] = None,
    ):
        if not isinstance(aggregate, (UncertainAggregate, GroupByAggregate)):
            raise TypeError(
                "FusedSelectAggregate wraps an UncertainAggregate or GroupByAggregate, "
                f"got {type(aggregate).__name__}"
            )
        super().__init__(name=name or f"FusedSelect+{type(aggregate).__name__}")
        self.predicate = predicate
        self.min_probability = min_probability
        self.aggregate = aggregate

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        if self.predicate.probability(item) < self.min_probability:
            return
        agg = self.aggregate
        yield from agg._emit(agg._buffer.add(item))

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        probs = self.predicate.probabilities(batch)
        survivors = batch.select(probs >= self.min_probability)
        agg = self.aggregate
        closes = agg._buffer.add_many(survivors)
        return TupleBatch(agg._emit(closes, vectorized=True))

    def flush(self) -> Iterable[StreamTuple]:
        yield from self.aggregate.flush()

    def state_snapshot(self) -> dict:
        # The selection is stateless; the fused box's only state lives
        # in the wrapped aggregate's window buffer.
        return {"aggregate": self.aggregate.state_snapshot()}

    def state_restore(self, state: Optional[dict]) -> None:
        if state is None:
            raise OperatorError(f"{self.name!r} expected a fused-aggregate state")
        self.aggregate.state_restore(state["aggregate"])


class FusedBatchSegment(Operator):
    """A linear chain of batch-capable boxes fused into one dispatch.

    Produced by the planner's union fan-in lowering: every arrow in a
    batch plan costs one scheduler round (stack push, counter and
    timing bookkeeping, schema hook) per batch, and the chains feeding
    a Union multiply those arrows.  This box runs its members'
    ``process_batch`` kernels back-to-back inside a single
    ``accept_batch``, so an entire branch pays one dispatch per batch.

    Semantics are exactly those of the unfused chain: members run in
    order on both paths, and ``flush`` cascades each member's
    end-of-stream output through the members after it — the same
    tuples, in the same order, the engine's topological flush would
    deliver.  The members must all advertise ``supports_batch``; the
    planner never fuses a per-tuple fallback box, so the segment's own
    ``supports_batch = True`` stays honest.
    """

    supports_batch = True

    def __init__(self, operators: Sequence[Operator], name: Optional[str] = None):
        if len(operators) < 2:
            raise OperatorError("a fused segment needs at least two member operators")
        for op in operators:
            if not op.supports_batch:
                raise OperatorError(
                    f"cannot fuse {op.name!r}: it runs the per-tuple fallback loop"
                )
        super().__init__(name=name or "Segment[" + " → ".join(op.name for op in operators) + "]")
        self.operators: List[Operator] = list(operators)

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        items = [item]
        for op in self.operators:
            nxt: List[StreamTuple] = []
            for it in items:
                nxt.extend(op.process(it))
            if not nxt:
                return
            items = nxt
        yield from items

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        for op in self.operators:
            if not len(batch):
                break
            batch = op.process_batch(batch)
            if not isinstance(batch, TupleBatch):
                batch = TupleBatch(batch)
        return batch

    def flush(self) -> Iterable[StreamTuple]:
        for i, op in enumerate(self.operators):
            items = list(op.flush())
            for later in self.operators[i + 1:]:
                nxt: List[StreamTuple] = []
                for it in items:
                    nxt.extend(later.process(it))
                items = nxt
            yield from items

    def state_snapshot(self) -> dict:
        return {
            "members": [
                {"name": op.name, "state": op.state_snapshot()} for op in self.operators
            ]
        }

    def state_restore(self, state: Optional[dict]) -> None:
        if state is None:
            raise OperatorError(f"{self.name!r} expected a segment state")
        members = state["members"]
        if len(members) != len(self.operators):
            raise OperatorError(
                f"{self.name!r}: segment has {len(self.operators)} members, "
                f"checkpoint recorded {len(members)}"
            )
        for op, entry in zip(self.operators, members):
            if entry["name"] != op.name:
                raise OperatorError(
                    f"{self.name!r}: member {op.name!r} does not match "
                    f"checkpointed member {entry['name']!r}"
                )
            op.state_restore(entry["state"])
