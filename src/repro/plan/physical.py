"""Physical operators that only the planner creates.

The generic boxes live in :mod:`repro.streams.operators` and
:mod:`repro.core`; this module holds the *fused* boxes produced by
planner rewrites, which have no stand-alone declarative surface.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.aggregation.operator import GroupByAggregate, UncertainAggregate
from repro.core.selection import UncertainPredicate
from repro.streams.batch import TupleBatch
from repro.streams.operators.base import Operator
from repro.streams.tuples import StreamTuple

__all__ = ["FusedSelectAggregate"]


class FusedSelectAggregate(Operator):
    """A probabilistic selection fused into the windowed aggregate below it.

    Produced by the ``fuse_select_into_aggregate`` rewrite.  Compared
    to the two-box plan it

    * skips building annotated survivor tuples (the aggregate discards
      per-input attributes at the window boundary anyway), and
    * on the batch path evaluates the selection mask and the window
      moment columns in one pass over the batch.

    The wrapped aggregate is a regular :class:`UncertainAggregate` or
    :class:`GroupByAggregate`; this box drives its window buffer and
    emission machinery directly so windowing, HAVING and strategy
    semantics stay identical to the unfused plan.
    """

    supports_batch = True

    def __init__(
        self,
        predicate: UncertainPredicate,
        min_probability: float,
        aggregate: Operator,
        name: Optional[str] = None,
    ):
        if not isinstance(aggregate, (UncertainAggregate, GroupByAggregate)):
            raise TypeError(
                "FusedSelectAggregate wraps an UncertainAggregate or GroupByAggregate, "
                f"got {type(aggregate).__name__}"
            )
        super().__init__(name=name or f"FusedSelect+{type(aggregate).__name__}")
        self.predicate = predicate
        self.min_probability = min_probability
        self.aggregate = aggregate

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        if self.predicate.probability(item) < self.min_probability:
            return
        agg = self.aggregate
        yield from agg._emit(agg._buffer.add(item))

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        probs = self.predicate.probabilities(batch)
        survivors = batch.select(probs >= self.min_probability)
        agg = self.aggregate
        closes = agg._buffer.add_many(survivors)
        return TupleBatch(agg._emit(closes, vectorized=True))

    def flush(self) -> Iterable[StreamTuple]:
        yield from self.aggregate.flush()
