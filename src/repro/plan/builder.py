"""`Stream`: the fluent, DAG-capable declarative query builder.

A :class:`Stream` is an immutable handle on a logical plan node.  Every
method returns a *new* handle, so intermediate handles can be kept and
reused — reusing one handle in two chains expresses fan-out (one box
feeding two arrows), and :meth:`Stream.join` / :meth:`Stream.union`
bring two chains back together::

    located = Stream.source("rfid", uncertain=("x", "y"))
    heavy   = located.window(TumblingTimeWindow(5.0)).group_by(area)\\
                     .aggregate("weight").having(200.0)
    hot     = located.join(sensors.where_probably("temp", ">", 60.0),
                           on=location_match, window_length=3.0)

`window()` / `group_by()` stage windowing state on the handle; the
following `aggregate()` consumes it, and `having()` refines the
aggregate just built.  `compile()` hands the plan to the cost-aware
planner (:mod:`repro.plan.planner`); `explain()` renders the logical
plan without compiling.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable, Mapping, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .planner import Planner

from repro.core.aggregation import HavingClause, SumStrategy
from repro.core.selection import Comparison
from repro.distributions import Distribution
from repro.streams.operators.base import Operator
from repro.streams.windows import WindowSpec

from .nodes import (
    AggregateNode,
    ColumnStat,
    DeriveNode,
    FilterNode,
    JoinNode,
    LogicalNode,
    LogicalPlan,
    PipeNode,
    PlanError,
    ProbFilterNode,
    SourceNode,
    SummarizeNode,
    UnionNode,
)

__all__ = ["Stream"]


def _column_stats(uncertain) -> Optional[tuple]:
    """Extract :class:`ColumnStat` declarations from an ``uncertain`` mapping.

    ``Stream.source`` accepts ``uncertain`` either as a plain iterable
    of attribute names or as a mapping ``name -> declaration`` where a
    declaration is ``None`` (name only), a :class:`ColumnStat`, a
    ``(family, a, b)`` tuple, or a distribution-like object exposing
    ``mean()``/``std()`` (e.g. a :class:`~repro.distributions.Gaussian`
    describing the population of per-tuple means).
    """
    if not isinstance(uncertain, Mapping):
        return None
    stats = []
    for name, decl in uncertain.items():
        if decl is None:
            continue
        if isinstance(decl, ColumnStat):
            if decl.attribute != name:
                raise PlanError(
                    f"column stat declared under {name!r} names attribute "
                    f"{decl.attribute!r}"
                )
            stats.append(decl)
        elif isinstance(decl, tuple) and len(decl) == 3:
            family, a, b = decl
            stats.append(ColumnStat(name, str(family), float(a), float(b)))
        elif isinstance(decl, Distribution):
            low, high = getattr(decl, "low", None), getattr(decl, "high", None)
            if low is not None and high is not None:
                stats.append(ColumnStat(name, "uniform", float(low), float(high)))
            else:
                stats.append(
                    ColumnStat(name, "gaussian", float(decl.mean()), float(decl.std()))
                )
        else:
            raise PlanError(
                f"cannot interpret column declaration for {name!r}: {decl!r} "
                "(use None, a ColumnStat, a (family, a, b) tuple or a distribution)"
            )
    return tuple(stats) or None


def _as_comparison(comparison: Union[Comparison, str]) -> Comparison:
    if isinstance(comparison, Comparison):
        return comparison
    try:
        return Comparison(comparison)
    except ValueError as exc:
        raise PlanError(
            f"unknown comparison {comparison!r}; use '>', '<' or 'between'"
        ) from exc


class Stream:
    """An immutable handle on a logical stream (see module docstring)."""

    __slots__ = ("node", "_pending_window", "_pending_key")

    def __init__(
        self,
        node: LogicalNode,
        _pending_window: Optional[WindowSpec] = None,
        _pending_key: Optional[Callable[..., Hashable]] = None,
    ):
        self.node = node
        self._pending_window = _pending_window
        self._pending_key = _pending_key

    def _wrap(self, node: LogicalNode, keep_staged: bool = False) -> Stream:
        """A new handle on ``node``.

        Row-wise stages pass ``keep_staged=True`` so a window/key staged
        before them still applies to the next ``aggregate()``; stages
        that cannot precede an aggregate refuse to silently discard
        staged state (see :meth:`_consume_staged`).
        """
        if keep_staged:
            return Stream(
                node,
                _pending_window=self._pending_window,
                _pending_key=self._pending_key,
            )
        return Stream(node)

    def _require_no_staged(self, stage: str) -> None:
        """Refuse to silently drop a staged ``window()``/``group_by()``."""
        if self._pending_window is not None or self._pending_key is not None:
            staged = "window()" if self._pending_window is not None else "group_by()"
            raise PlanError(
                f"{stage} would discard the staged {staged}; call aggregate() "
                f"first or restage the window after {stage}"
            )

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    @classmethod
    def source(
        cls,
        name: str = "input",
        values: Optional[Iterable[str]] = None,
        uncertain: Optional[Iterable[str]] = None,
        family: Optional[str] = None,
        rate_hint: Optional[float] = None,
    ) -> Stream:
        """Declare a named input stream.

        ``values`` / ``uncertain`` optionally declare the attributes
        tuples will carry, enabling schema checking across the plan;
        ``family`` declares the distribution family of the uncertain
        attributes for the cost model, and ``rate_hint`` (tuples/s)
        lets it size time windows.  ``uncertain`` may also be a mapping
        ``name -> population declaration`` (a distribution, a
        ``(family, a, b)`` tuple or a
        :class:`~repro.plan.nodes.ColumnStat`), which additionally
        gives the cost model per-column selectivity estimates.
        """
        return cls(
            SourceNode(
                name=name,
                values=None if values is None else frozenset(values),
                uncertain=None if uncertain is None else frozenset(uncertain),
                family=family,
                rate_hint=rate_hint,
                stats=_column_stats(uncertain),
            )
        )

    # ------------------------------------------------------------------
    # Row-wise stages
    # ------------------------------------------------------------------
    def derive(
        self,
        values: Optional[Mapping[str, Callable[..., Any]]] = None,
        uncertain: Optional[Mapping[str, Callable[..., Distribution]]] = None,
    ) -> Stream:
        """Add derived attributes computed from existing ones."""
        node = DeriveNode(
            input=self.node,
            value_functions=tuple((values or {}).items()),
            uncertain_functions=tuple((uncertain or {}).items()),
        )
        return self._wrap(node, keep_staged=True)

    def where(
        self,
        predicate: Callable[..., bool],
        uses: Optional[Iterable[str]] = None,
        description: Optional[str] = None,
        cost_hint: Optional[float] = None,
    ) -> Stream:
        """Deterministic filter.

        Declaring ``uses`` (the attributes the predicate reads) lets
        the planner push the filter below derives and reorder it
        against probabilistic filters; ``cost_hint`` declares the
        predicate's per-tuple cost relative to a trivial comparison
        (1.0) for the ordering rank.
        """
        node = FilterNode(
            input=self.node,
            predicate=predicate,
            uses=None if uses is None else frozenset(uses),
            description=description,
            cost_hint=cost_hint,
        )
        return self._wrap(node, keep_staged=True)

    def where_probably(
        self,
        attribute: str,
        comparison: Union[Comparison, str],
        threshold: float,
        upper: Optional[float] = None,
        min_probability: float = 0.5,
        annotate: Optional[str] = "selection_probability",
    ) -> Stream:
        """Probabilistic filter on an uncertain attribute (``temp > 60``)."""
        node = ProbFilterNode(
            input=self.node,
            attribute=attribute,
            comparison=_as_comparison(comparison),
            threshold=threshold,
            upper=upper,
            min_probability=min_probability,
            annotate=annotate,
        )
        return self._wrap(node, keep_staged=True)

    # ------------------------------------------------------------------
    # Windowed aggregation
    # ------------------------------------------------------------------
    def window(self, spec: WindowSpec) -> Stream:
        """Stage a window specification for the next ``aggregate()``."""
        if not isinstance(spec, WindowSpec):
            raise PlanError(f"window() expects a WindowSpec, got {type(spec).__name__}")
        return Stream(self.node, _pending_window=spec, _pending_key=self._pending_key)

    def group_by(self, key: Callable[..., Hashable]) -> Stream:
        """Stage a grouping key for the next ``aggregate()``."""
        return Stream(self.node, _pending_window=self._pending_window, _pending_key=key)

    def aggregate(
        self,
        attribute: str,
        function: str = "sum",
        strategy: Optional[SumStrategy] = None,
        window: Optional[WindowSpec] = None,
        key: Optional[Callable[..., Hashable]] = None,
        having: Optional[HavingClause] = None,
        output_attribute: Optional[str] = None,
        check_independence: bool = True,
    ) -> Stream:
        """Aggregate the staged (or passed) window, per group if keyed.

        With ``strategy=None`` the planner's cost model chooses among
        CF approximation, CLT and CF inversion from the window size and
        the source's declared distribution family.
        """
        spec = window or self._pending_window
        if spec is None:
            raise PlanError("aggregate() needs a window: call .window(spec) first")
        node = AggregateNode(
            input=self.node,
            window=spec,
            attribute=attribute,
            function=function,
            strategy=strategy,
            key=key or self._pending_key,
            having=having,
            output_attribute=output_attribute,
            check_independence=check_independence,
        )
        return self._wrap(node)

    def having(self, threshold: float, min_probability: float = 0.5) -> Stream:
        """Attach a probabilistic HAVING clause to the aggregate just built."""
        if not isinstance(self.node, AggregateNode):
            raise PlanError("having() must directly follow aggregate()")
        clause = HavingClause(threshold=threshold, min_probability=min_probability)
        return self._wrap(replace(self.node, having=clause))

    # ------------------------------------------------------------------
    # Multi-stream stages
    # ------------------------------------------------------------------
    def join(
        self,
        other: Stream,
        on: Callable[..., float],
        window_length: float,
        min_probability: float = 0.5,
        prefix_left: str = "left_",
        prefix_right: str = "right_",
        probability_attribute: str = "match_probability",
    ) -> Stream:
        """Probabilistic sliding-window join with ``other`` (the Q2 shape).

        ``on(left_tuple, right_tuple)`` returns the probability that
        the join predicate holds for the pair.
        """
        if not isinstance(other, Stream):
            raise PlanError(f"join() expects a Stream, got {type(other).__name__}")
        self._require_no_staged("join()")
        other._require_no_staged("join()")
        node = JoinNode(
            left=self.node,
            right=other.node,
            on=on,
            window_length=window_length,
            min_probability=min_probability,
            prefix_left=prefix_left,
            prefix_right=prefix_right,
            probability_attribute=probability_attribute,
        )
        return self._wrap(node)

    def union(self, *others: Stream) -> Stream:
        """Merge this stream with one or more others (identity per tuple)."""
        self._require_no_staged("union()")
        for other in others:
            other._require_no_staged("union()")
        nodes = (self.node,) + tuple(o.node for o in others)
        return self._wrap(UnionNode(sources=nodes))

    # ------------------------------------------------------------------
    # Output shaping / escape hatch
    # ------------------------------------------------------------------
    def summarize(
        self,
        attribute: str,
        confidence: float = 0.95,
        keep_distribution: bool = False,
    ) -> Stream:
        """Replace a result distribution with its summary statistics."""
        self._require_no_staged("summarize()")
        node = SummarizeNode(
            input=self.node,
            attribute=attribute,
            confidence=confidence,
            keep_distribution=keep_distribution,
        )
        return self._wrap(node)

    def pipe(self, operator: Operator, description: Optional[str] = None) -> Stream:
        """Route the stream through a custom operator box (e.g. a T operator).

        The operator instance is stateful, so a plan containing piped
        operators can only be compiled once.
        """
        if not isinstance(operator, Operator):
            raise PlanError(f"pipe() expects an Operator, got {type(operator).__name__}")
        self._require_no_staged("pipe()")
        return self._wrap(PipeNode(input=self.node, operator=operator, description=description))

    # ------------------------------------------------------------------
    # Plan / compile
    # ------------------------------------------------------------------
    def plan(self) -> LogicalPlan:
        """Freeze this handle into a validated single-output logical plan."""
        self._require_no_staged("plan()")
        plan = LogicalPlan(outputs=(self.node,))
        plan.validate()
        return plan

    def explain(self, optimize: bool = False) -> str:
        """Render the logical plan (optionally after planner rewrites)."""
        if optimize:
            from .planner import Planner

            optimized, traces = Planner().optimize(self.plan())
            lines = [optimized.explain()]
            if traces:
                lines.append("")
                lines.append("rewrites applied:")
                lines.extend(f"  - {t.rule}: {t.description}" for t in traces)
            return "\n".join(lines)
        return self.plan().explain()

    def compile(
        self,
        mode: str = "auto",
        batch_size: Optional[int] = None,
        optimize: bool = True,
        planner: Optional["Planner"] = None,
    ):
        """Optimize and lower this plan; returns a ``CompiledQuery``.

        ``mode`` is ``"auto"`` (cost model decides), ``"tuple"`` or
        ``"batch"``; ``optimize=False`` skips the rewrite rules (used
        by the planner equivalence tests).
        """
        from .planner import Planner

        active = planner or Planner()
        return active.compile(self.plan(), mode=mode, batch_size=batch_size, optimize=optimize)
