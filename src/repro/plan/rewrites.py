"""Planner rewrite rules over the logical plan IR.

Each rule is a small, local, semantics-preserving transformation.  The
driver (:func:`apply_rewrites`) rebuilds the DAG bottom-up, applying
rules at every node until a local fixpoint, and records a
:class:`RewriteTrace` for every application so `explain()` can show
exactly what fired.

The rules:

``push_filter_below_derive``
    ``Filter(Derive(x))`` → ``Derive(Filter(x))`` when the filter
    declares ``uses`` and touches none of the derived attributes.  The
    derive functions then run only on surviving tuples.

``push_filter_below_join``
    ``ProbFilter(Join(l, r))`` → ``Join(ProbFilter(l), r)`` (or the
    right side) when the filtered attribute carries exactly one side's
    prefix and the filter does not annotate.  The join then never pairs
    tuples the filter would discard.

``fuse_adjacent_filters``
    ``Filter(Filter(x))`` → one filter evaluating the conjunction —
    one box and one Python call per tuple instead of two.

``reorder_cheap_filter_first``
    ``Filter(ProbFilter(x))`` → ``ProbFilter(Filter(x))`` when the cost
    model's selectivity × cost rank favours it.  Both are
    order-preserving row filters, so outputs are identical; with the
    default costs (a deterministic predicate is cheap against an
    erf/CDF evaluation) the deterministic filter runs first unless its
    declared ``cost_hint`` is high and the probabilistic filter is
    estimated to be very selective.

``reorder_selective_prob_filter_first``
    ``ProbFilter(ProbFilter(x))`` → the more *selective* filter first,
    when both pass-rates can be estimated from declared column
    statistics (both filters cost one CDF evaluation, so selectivity
    alone decides).

``fuse_select_into_aggregate``
    ``Aggregate(ProbFilter(x))`` → one fused box computing the
    selection mask and the window moments in a single pass over the
    batch columns (no intermediate annotated tuples).  Applied only
    when the aggregate is the filter's sole consumer, since the fused
    box no longer exposes the filtered stream.

Safety notes are spelled out per rule below; every rule is covered by
an optimized-vs-naive equivalence test in ``tests/plan/``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .cost import CostModel
from .nodes import (
    AggregateNode,
    DeriveNode,
    FilterNode,
    FusedSelectAggregateNode,
    JoinNode,
    LogicalNode,
    LogicalPlan,
    ProbFilterNode,
    consumer_counts,
)

__all__ = [
    "RewriteTrace",
    "RewriteRule",
    "apply_rewrites",
    "DEFAULT_RULES",
    "default_rules",
    "push_filter_below_derive",
    "push_filter_below_join",
    "fuse_adjacent_filters",
    "reorder_cheap_filter_first",
    "reorder_selective_prob_filter_first",
    "fuse_select_into_aggregate",
]


@dataclass(frozen=True)
class RewriteTrace:
    """One applied rewrite: the rule name and what it did."""

    rule: str
    description: str


@dataclass(frozen=True)
class RewriteRule:
    """A named local rewrite: node -> (replacement, description) or None."""

    name: str
    apply: Callable[[LogicalNode, Dict[int, int]], Optional[Tuple[LogicalNode, str]]]


# ----------------------------------------------------------------------
# Rule implementations (each: node, consumers -> (new node, note) | None)
# ----------------------------------------------------------------------
def _push_filter_below_derive(
    node: LogicalNode, consumers: Dict[int, int]
) -> Optional[Tuple[LogicalNode, str]]:
    if not isinstance(node, FilterNode) or node.uses is None:
        return None
    child = node.input
    if not isinstance(child, DeriveNode):
        return None
    if consumers.get(id(child), 0) > 1:
        # The derived stream has other consumers; filtering below the
        # derive would change what they see.
        return None
    if node.uses & child.introduced:
        return None
    pushed = replace(node, input=child.input)
    return (
        replace(child, input=pushed),
        f"filter on {{{', '.join(sorted(node.uses))}}} now runs before "
        f"Derive[{', '.join(sorted(child.introduced))}]",
    )


def _push_filter_below_join(
    node: LogicalNode, consumers: Dict[int, int]
) -> Optional[Tuple[LogicalNode, str]]:
    if not isinstance(node, ProbFilterNode) or node.annotate is not None:
        # An annotating filter writes an un-prefixed probability
        # attribute; pushing it below the join would prefix it.
        return None
    child = node.input
    if not isinstance(child, JoinNode) or consumers.get(id(child), 0) > 1:
        return None
    for side, prefix in (("left", child.prefix_left), ("right", child.prefix_right)):
        other_prefix = child.prefix_right if side == "left" else child.prefix_left
        if not prefix or not node.attribute.startswith(prefix):
            continue
        if other_prefix and node.attribute.startswith(other_prefix):
            # Ambiguous prefixes (one is a prefix of the other): skip.
            return None
        stripped = node.attribute[len(prefix):]
        branch = child.left if side == "left" else child.right
        pushed = replace(node, input=branch, attribute=stripped)
        new_join = (
            replace(child, left=pushed) if side == "left" else replace(child, right=pushed)
        )
        return (
            new_join,
            f"probabilistic filter on {node.attribute!r} pushed to the {side} "
            f"join input as {stripped!r}",
        )
    return None


def _fuse_adjacent_filters(
    node: LogicalNode, consumers: Dict[int, int]
) -> Optional[Tuple[LogicalNode, str]]:
    if not isinstance(node, FilterNode):
        return None
    child = node.input
    if not isinstance(child, FilterNode) or consumers.get(id(child), 0) > 1:
        return None
    inner_pred, outer_pred = child.predicate, node.predicate

    def fused(item) -> bool:
        # Inner (upstream) predicate first: preserves evaluation order
        # and short-circuits exactly like the two separate boxes.
        return bool(inner_pred(item)) and bool(outer_pred(item))

    uses = None
    if node.uses is not None and child.uses is not None:
        uses = node.uses | child.uses
    inner_desc = child.description or "filter"
    outer_desc = node.description or "filter"
    merged = FilterNode(
        input=child.input,
        predicate=fused,
        uses=uses,
        description=f"{inner_desc} ∧ {outer_desc}",
    )
    return merged, f"adjacent filters '{inner_desc}' and '{outer_desc}' fused into one box"


def _make_reorder_cheap_filter_first(cost_model: CostModel):
    def rule(
        node: LogicalNode, consumers: Dict[int, int]
    ) -> Optional[Tuple[LogicalNode, str]]:
        if not isinstance(node, FilterNode) or node.uses is None:
            return None
        child = node.input
        if not isinstance(child, ProbFilterNode) or consumers.get(id(child), 0) > 1:
            return None
        if child.annotate is not None and child.annotate in node.uses:
            # The deterministic predicate reads the probability
            # annotation; it cannot run before the annotation exists.
            return None
        if not cost_model.prefer_first(node, child):
            # Selectivity × cost says the probabilistic filter already
            # sits in the cheaper position (e.g. an expensive
            # deterministic predicate behind a highly selective filter).
            return None
        pushed = replace(node, input=child.input)
        selectivity = cost_model.prob_filter_selectivity(child)
        basis = (
            "structural default"
            if selectivity is None
            else f"estimated pass-rate {selectivity:.3f}"
        )
        return (
            replace(child, input=pushed),
            f"deterministic filter on {{{', '.join(sorted(node.uses))}}} now runs "
            f"before the probabilistic filter on {child.attribute!r} ({basis})",
        )

    return rule


def _make_reorder_selective_prob_filter_first(cost_model: CostModel):
    def rule(
        node: LogicalNode, consumers: Dict[int, int]
    ) -> Optional[Tuple[LogicalNode, str]]:
        if not isinstance(node, ProbFilterNode):
            return None
        child = node.input
        if not isinstance(child, ProbFilterNode) or consumers.get(id(child), 0) > 1:
            return None
        # Swapping must not change what either predicate reads or what
        # annotation survives: skip when either filter's attribute is
        # the other's annotation, or both annotate the same attribute
        # (the later write wins, so order is observable).
        if node.attribute in (child.annotate,) or child.attribute in (node.annotate,):
            return None
        if node.annotate is not None and node.annotate == child.annotate:
            return None
        inner = cost_model.prob_filter_selectivity(child)
        outer_node = replace(node, input=child.input)  # selectivity vs the source
        outer = cost_model.prob_filter_selectivity(outer_node)
        if inner is None or outer is None or outer >= inner:
            return None
        swapped = replace(child, input=outer_node)
        return (
            swapped,
            f"probabilistic filter on {node.attribute!r} (pass-rate {outer:.3f}) "
            f"now runs before the one on {child.attribute!r} (pass-rate {inner:.3f})",
        )

    return rule


def _fuse_select_into_aggregate(
    node: LogicalNode, consumers: Dict[int, int]
) -> Optional[Tuple[LogicalNode, str]]:
    if not isinstance(node, AggregateNode):
        return None
    child = node.input
    if not isinstance(child, ProbFilterNode) or consumers.get(id(child), 0) > 1:
        # A shared filtered stream must stay materialised for its other
        # consumers.  (The aggregate discards per-input attributes, so
        # the annotation itself never survives the window boundary.)
        return None
    if child.annotate is not None and (
        node.key is not None or node.attribute == child.annotate
    ):
        # The fused box skips building annotated survivor tuples, so it
        # must not fire when the aggregate could read the annotation: a
        # group key is an opaque callable (it may read anything), and
        # the aggregated attribute itself could name the annotation.
        return None
    fused = FusedSelectAggregateNode(select=child, aggregate=node)
    return (
        fused,
        f"probabilistic filter on {child.attribute!r} fused into the "
        f"{node.function}({node.attribute}) window kernel",
    )


push_filter_below_derive = RewriteRule("push_filter_below_derive", _push_filter_below_derive)
push_filter_below_join = RewriteRule("push_filter_below_join", _push_filter_below_join)
fuse_adjacent_filters = RewriteRule("fuse_adjacent_filters", _fuse_adjacent_filters)
fuse_select_into_aggregate = RewriteRule(
    "fuse_select_into_aggregate", _fuse_select_into_aggregate
)


def default_rules(cost_model: Optional[CostModel] = None) -> Tuple[RewriteRule, ...]:
    """The default rule set, with ordering rules bound to ``cost_model``.

    Rule order matters only for the trace, not for correctness:
    pushdowns and reorders run before fusions so fused boxes see final
    positions.
    """
    model = cost_model or CostModel()
    return (
        push_filter_below_derive,
        push_filter_below_join,
        RewriteRule(
            "reorder_cheap_filter_first", _make_reorder_cheap_filter_first(model)
        ),
        RewriteRule(
            "reorder_selective_prob_filter_first",
            _make_reorder_selective_prob_filter_first(model),
        ),
        fuse_adjacent_filters,
        fuse_select_into_aggregate,
    )


DEFAULT_RULES: Tuple[RewriteRule, ...] = default_rules()
reorder_cheap_filter_first = DEFAULT_RULES[2]
reorder_selective_prob_filter_first = DEFAULT_RULES[3]

#: Upper bound on rule applications per node, against pathological
#: rule sets that keep rewriting each other's output.
_MAX_LOCAL_APPLICATIONS = 16


def apply_rewrites(
    plan: LogicalPlan, rules: Sequence[RewriteRule] = DEFAULT_RULES
) -> Tuple[LogicalPlan, List[RewriteTrace]]:
    """Rewrite ``plan`` bottom-up with ``rules``; return plan + trace.

    The DAG is rebuilt with memoisation so shared nodes stay shared in
    the rewritten plan, and consumer counts (computed on the *input*
    plan) gate the rules that must not duplicate or hide a shared
    stream.
    """
    consumers = consumer_counts(plan.outputs)
    traces: List[RewriteTrace] = []
    rebuilt: Dict[int, LogicalNode] = {}
    # Memoisation keys are object ids; keep every visited node alive so
    # a recycled id can never alias a dead intermediate node.
    keepalive: List[LogicalNode] = []

    def rebuild(node: LogicalNode) -> LogicalNode:
        cached = rebuilt.get(id(node))
        if cached is not None:
            return cached
        keepalive.append(node)
        new_inputs = tuple(rebuild(child) for child in node.inputs)
        current = node if new_inputs == node.inputs else node.with_inputs(*new_inputs)
        # Rewritten nodes inherit the original node's consumer count so
        # sharing gates keep working after a child was rebuilt.
        consumers.setdefault(id(current), consumers.get(id(node), 0))
        for _ in range(_MAX_LOCAL_APPLICATIONS):
            for rule in rules:
                outcome = rule.apply(current, consumers)
                if outcome is not None:
                    current, note = outcome
                    keepalive.append(current)
                    consumers.setdefault(id(current), consumers.get(id(node), 0))
                    # Freshly created children start at one consumer, and
                    # are themselves rebuilt so rules cascade (e.g. a
                    # filter pushed below one derive keeps descending
                    # through the next).
                    for child in current.inputs:
                        consumers.setdefault(id(child), 1)
                    child_inputs = tuple(rebuild(child) for child in current.inputs)
                    if child_inputs != current.inputs:
                        current = current.with_inputs(*child_inputs)
                        consumers.setdefault(id(current), consumers.get(id(node), 0))
                    traces.append(RewriteTrace(rule.name, note))
                    break
            else:
                break
        rebuilt[id(node)] = current
        return current

    new_outputs = tuple(rebuild(root) for root in plan.outputs)
    return LogicalPlan(outputs=new_outputs, names=plan.names), traces
