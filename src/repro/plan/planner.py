"""The cost-aware planner: rewrite, lower, and wire logical plans.

``Planner.compile`` takes a validated :class:`LogicalPlan` through
three phases:

1. **Optimize** — apply the rewrite rules of :mod:`repro.plan.rewrites`
   (skippable with ``optimize=False`` for equivalence testing).
2. **Lower** — map each logical node to a physical
   :class:`~repro.streams.operators.base.Operator`, consulting the
   :class:`~repro.plan.cost.CostModel` for aggregates without an
   explicit SUM strategy.  Shared logical nodes lower to one shared
   physical box with fan-out arrows.  The node-by-node lowering lives
   in :class:`NodeLowering` so the continuous-query service
   (:mod:`repro.service`) can reuse it box-by-box when attaching
   queries to a running engine.
3. **Wire** — build a :class:`~repro.streams.engine.StreamEngine`, pick
   batch vs tuple execution (cost model again, unless pinned), fuse
   union fan-in branches into :class:`FusedBatchSegment` boxes on the
   batch path, and attach one :class:`CollectSink` per plan output.

The result is a :class:`CompiledQuery`: push tuples in, ``finish()``,
read results — plus ``explain()`` (logical plan, rewrites, strategy and
execution decisions, physical boxes with vectorised/per-tuple tags) and
``statistics()`` (per-box counters from the engine).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.aggregation.operator import GroupByAggregate, UncertainAggregate
from repro.core.confidence import SummarizeResults
from repro.core.join import ProbabilisticJoin
from repro.core.selection import ProbabilisticSelect
from repro.streams.engine import StreamEngine
from repro.streams.operators.base import Operator, PassThroughOperator
from repro.streams.operators.basic import (
    AttributeDeriver,
    CollectSink,
    Filter,
    Union as UnionOperator,
)
from repro.streams.tuples import StreamTuple
from repro.streams.windows import TumblingCountWindow

from .cost import CostModel, ExecutionChoice, StrategyChoice
from .nodes import (
    AggregateNode,
    DeriveNode,
    FilterNode,
    FusedSelectAggregateNode,
    JoinNode,
    LogicalNode,
    LogicalPlan,
    PipeNode,
    PlanError,
    ProbFilterNode,
    SourceNode,
    SummarizeNode,
    UnionNode,
    topological_nodes,
)
from .physical import FusedBatchSegment, FusedSelectAggregate
from .rewrites import DEFAULT_RULES, RewriteRule, RewriteTrace, apply_rewrites, default_rules

__all__ = ["Planner", "CompiledQuery", "NodeLowering", "compile_streams"]


@dataclass(frozen=True)
class _StrategyDecision:
    """Record of one cost-model strategy choice, for explain()."""

    node_label: str
    choice: StrategyChoice


class NodeLowering:
    """Node-by-node lowering of logical nodes onto physical operators.

    One instance covers one set of ``nodes`` (a topologically ordered
    plan): it propagates (family, rate_hint) source hints downstream so
    the cost model can size windows anywhere in the plan, resolves SUM
    strategies for aggregates that did not pin one, and records the
    strategy decisions and expected window sizes the execution-mode
    choice needs.  ``Planner.compile`` drives it over a whole plan;
    :class:`repro.service.QuerySession` drives it per registered query,
    skipping nodes whose physical box already exists.
    """

    def __init__(self, cost_model: CostModel, nodes: Sequence[LogicalNode]):
        self.cost_model = cost_model
        self.strategy_decisions: List[_StrategyDecision] = []
        self.window_sizes: List[int] = []
        self._piped_operator_ids: set = set()
        # Propagate (family, rate_hint) hints from sources downstream.
        self._hints: Dict[int, Tuple[Optional[str], Optional[float]]] = {}
        for node in nodes:
            if isinstance(node, SourceNode):
                self._hints[id(node)] = (node.family, node.rate_hint)
            elif node.inputs:
                families = {self._hints.get(id(c), (None, None))[0] for c in node.inputs}
                rates = [self._hints.get(id(c), (None, None))[1] for c in node.inputs]
                family = families.pop() if len(families) == 1 else None
                rate = rates[0] if len(rates) == 1 else None
                self._hints[id(node)] = (family, rate)
            else:
                self._hints[id(node)] = (None, None)

    # ------------------------------------------------------------------
    # Aggregate helpers
    # ------------------------------------------------------------------
    def _resolve_strategy(self, node: AggregateNode, hint_id: int, label: str):
        if node.strategy is not None or node.function not in ("sum", "avg"):
            return node.strategy
        family, rate = self._hints.get(hint_id, (None, None))
        choice = self.cost_model.choose_sum_strategy(node.window, family, rate)
        self.strategy_decisions.append(_StrategyDecision(label, choice))
        return choice.strategy

    def _note_window(self, node: AggregateNode, hint_id: int) -> None:
        size = self.cost_model.expected_window_size(
            node.window, self._hints.get(hint_id, (None, None))[1]
        )
        if size is None and isinstance(node.window, TumblingCountWindow):
            size = node.window.size
        if size is not None:
            self.window_sizes.append(size)

    def _build_aggregate(self, node: AggregateNode, hint_id: int) -> Operator:
        strategy = self._resolve_strategy(node, hint_id, node.label())
        self._note_window(node, hint_id)
        common = dict(
            window=node.window,
            attribute=node.attribute,
            strategy=strategy,
            function=node.function,
            output_attribute=node.output_attribute,
            having=node.having,
            check_independence=node.check_independence,
        )
        if node.key is not None:
            return GroupByAggregate(key_function=node.key, **common)
        return UncertainAggregate(**common)

    # ------------------------------------------------------------------
    # Node lowering
    # ------------------------------------------------------------------
    def source_operator(self, node: SourceNode) -> Operator:
        """The physical entry box for a source: a named pass-through."""
        return PassThroughOperator(name=f"source:{node.name}")

    def lower(self, node: LogicalNode) -> Operator:
        """Create the physical operator for one non-source node (unwired)."""
        op: Operator
        if isinstance(node, SourceNode):
            raise PlanError("sources are wired, not lowered")  # pragma: no cover
        elif isinstance(node, DeriveNode):
            op = AttributeDeriver(
                value_functions=dict(node.value_functions),
                uncertain_functions=dict(node.uncertain_functions),
            )
        elif isinstance(node, FilterNode):
            op = Filter(node.predicate, name=f"Filter[{node.description or 'λ'}]")
        elif isinstance(node, ProbFilterNode):
            op = ProbabilisticSelect(
                node.predicate(),
                min_probability=node.min_probability,
                probability_attribute=node.annotate,
            )
        elif isinstance(node, FusedSelectAggregateNode):
            aggregate = self._build_aggregate(
                replace(node.aggregate, input=node.select), id(node)
            )
            op = FusedSelectAggregate(
                node.select.predicate(),
                node.select.min_probability,
                aggregate,
            )
        elif isinstance(node, AggregateNode):
            op = self._build_aggregate(node, id(node))
        elif isinstance(node, JoinNode):
            op = ProbabilisticJoin(
                window_length=node.window_length,
                match_probability=node.on,
                min_probability=node.min_probability,
                prefix_left=node.prefix_left,
                prefix_right=node.prefix_right,
                probability_attribute=node.probability_attribute,
            )
        elif isinstance(node, UnionNode):
            op = UnionOperator()
        elif isinstance(node, SummarizeNode):
            op = SummarizeResults(
                node.attribute,
                confidence=node.confidence,
                keep_distribution=node.keep_distribution,
            )
        elif isinstance(node, PipeNode):
            op = node.operator
            # Piped operators are stateful instances: wiring one into
            # two plans (a second compile(), or two pipe() calls with
            # the same instance) would cross-connect the engines.
            if id(op) in self._piped_operator_ids:
                raise PlanError(
                    f"operator {op.name!r} is piped into this plan twice; "
                    "each pipe() needs its own operator instance"
                )
            if op.downstream:
                raise PlanError(
                    f"piped operator {op.name!r} is already wired into a plan; "
                    "a Stream containing pipe() can only be compiled once"
                )
            self._piped_operator_ids.add(id(op))
        else:  # pragma: no cover - new node type not yet lowered
            raise PlanError(f"no lowering for node type {type(node).__name__}")
        return op


class CompiledQuery:
    """A compiled query: engine, named sources, one sink per output.

    Single-output queries behave like a classic compiled query:
    ``push(source, item)`` / ``push_many(source, items)`` /
    ``finish() -> results``.  Multi-output plans expose each output's
    results via :meth:`output`.
    """

    def __init__(
        self,
        engine: StreamEngine,
        sources: List[str],
        sinks: Dict[str, CollectSink],
        logical_plan: LogicalPlan,
        optimized_plan: LogicalPlan,
        rewrites: List[RewriteTrace],
        execution: ExecutionChoice,
        strategy_decisions: List[_StrategyDecision],
        operator_tags: List[Tuple[Operator, LogicalNode]],
    ):
        self.engine = engine
        self.sources = sources
        self._sinks = sinks
        self.logical_plan = logical_plan
        self.optimized_plan = optimized_plan
        self.rewrites = rewrites
        self.execution = execution
        self.strategy_decisions = strategy_decisions
        self._operator_tags = operator_tags

    # ------------------------------------------------------------------
    # Data flow
    # ------------------------------------------------------------------
    def push(self, source: str, item: StreamTuple) -> None:
        """Push one tuple (always the tuple-at-a-time path)."""
        self.engine.push(source, item)

    def push_many(self, source: str, items) -> None:
        """Push many tuples via the compiled execution mode."""
        self.engine.push_many(source, items)

    def push_batch(self, source: str, batch) -> None:
        """Push an explicit batch (always the batch path)."""
        self.engine.push_batch(source, batch)

    def finish(self) -> List[StreamTuple]:
        """Flush the plan; return the primary (first) output's results."""
        self.engine.finish()
        return self.results

    @property
    def results(self) -> List[StreamTuple]:
        """Results of the primary (first) output."""
        return self.output(self.logical_plan.names[0])

    def output(self, name: str) -> List[StreamTuple]:
        """Results collected for the named plan output."""
        try:
            sink = self._sinks[name]
        except KeyError as exc:
            raise PlanError(
                f"unknown output {name!r}; outputs are {sorted(self._sinks)}"
            ) from exc
        return list(sink.results)

    @property
    def output_names(self) -> List[str]:
        return list(self.logical_plan.names)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def statistics(self, detailed: bool = False):
        """Per-box statistics from the engine (see ``StreamEngine.statistics``)."""
        return self.engine.statistics(detailed=detailed)

    def explain(self) -> str:
        """Full report: logical plan, rewrites, decisions, physical plan."""
        lines: List[str] = ["Logical plan", "============"]
        lines.append(self.logical_plan.explain())
        lines.append("")
        lines.append("Rewrites")
        lines.append("========")
        if self.rewrites:
            lines.extend(f"- {t.rule}: {t.description}" for t in self.rewrites)
        else:
            lines.append("(none applied)")
        lines.append("")
        lines.append("Cost model")
        lines.append("==========")
        for decision in self.strategy_decisions:
            lines.append(
                f"- strategy for {decision.node_label}: "
                f"{decision.choice.strategy.name} ({decision.choice.reason})"
            )
        mode_desc = self.execution.mode
        if self.execution.mode == "batch":
            mode_desc += f"(batch_size={self.execution.batch_size})"
        lines.append(f"- execution: {mode_desc} ({self.execution.reason})")
        lines.append("")
        lines.append("Physical plan")
        lines.append("=============")
        batch_mode = self.execution.mode == "batch"
        for op, node in self._operator_tags:
            if batch_mode:
                tag = "vectorized" if op.supports_batch else "per-tuple fallback"
            else:
                tag = "tuple path"
            lines.append(f"- {op.name} <- {node.label()}  [{tag}]")
        return "\n".join(lines)


class Planner:
    """Rewrites logical plans and lowers them onto the stream engine."""

    def __init__(
        self,
        rules: Sequence[RewriteRule] = DEFAULT_RULES,
        cost_model: Optional[CostModel] = None,
    ):
        self.cost_model = cost_model or CostModel()
        if rules is DEFAULT_RULES and cost_model is not None:
            # Bind the ordering rules to the caller's cost model so its
            # selectivity estimates drive the filter-ordering ranks.
            rules = default_rules(self.cost_model)
        self.rules = tuple(rules)

    # ------------------------------------------------------------------
    # Phase 1: rewrite
    # ------------------------------------------------------------------
    def optimize(self, plan: LogicalPlan) -> Tuple[LogicalPlan, List[RewriteTrace]]:
        """Apply this planner's rewrite rules; returns (plan, trace)."""
        return apply_rewrites(plan, self.rules)

    # ------------------------------------------------------------------
    # Phases 2+3: lower and wire
    # ------------------------------------------------------------------
    def compile(
        self,
        plan: LogicalPlan,
        mode: str = "auto",
        batch_size: Optional[int] = None,
        optimize: bool = True,
    ) -> CompiledQuery:
        """Compile a validated logical plan into a runnable query."""
        if mode not in ("auto", "tuple", "batch"):
            raise PlanError(f"unknown execution mode {mode!r}; use auto, tuple or batch")
        plan.validate()
        if optimize:
            optimized, traces = self.optimize(plan)
            optimized.validate()
        else:
            optimized, traces = plan, []

        nodes = topological_nodes(optimized.outputs)
        lowering = NodeLowering(self.cost_model, nodes)
        lowered: Dict[int, Operator] = {}
        operator_tags: List[Tuple[Operator, LogicalNode]] = []
        engine_sources: Dict[str, Operator] = {}

        def physical(node: LogicalNode) -> Operator:
            cached = lowered.get(id(node))
            if cached is not None:
                return cached
            if isinstance(node, SourceNode):
                op = lowering.source_operator(node)
                engine_sources[node.name] = op
                operator_tags.append((op, node))
            else:
                op = lowering.lower(node)
                operator_tags.append((op, node))
                if isinstance(node, JoinNode):
                    left_op = physical(node.left)
                    right_op = physical(node.right)
                    left_op.connect(op.left_port())
                    right_op.connect(op.right_port())
                else:
                    for child in node.inputs:
                        physical(child).connect(op)
            lowered[id(node)] = op
            return op

        sinks: Dict[str, CollectSink] = {}
        for name, root in zip(optimized.names, optimized.outputs):
            root_op = physical(root)
            sink = CollectSink(name=f"sink:{name}")
            root_op.connect(sink)
            sinks[name] = sink

        # Present boxes in dataflow order (sources first) in explain().
        topo_index = {id(n): i for i, n in enumerate(nodes)}
        operator_tags.sort(key=lambda pair: topo_index.get(id(pair[1]), len(topo_index)))

        # The execution decision looks only at real query boxes: the
        # pass-throughs the planner inserts for sources are trivially
        # batch-friendly and would bias the vectorised fraction upward.
        source_ops = {id(op) for op in engine_sources.values()}
        real_boxes = [op for op, _ in operator_tags if id(op) not in source_ops]
        engine_mode, chosen_batch = self._choose_mode(
            mode, batch_size, real_boxes, lowering.window_sizes
        )
        if engine_mode.mode == "batch":
            operator_tags = _fuse_union_branches(
                operator_tags, engine_sources, sinks
            )
            operator_tags = _fuse_pipe_chains(
                operator_tags, engine_sources, sinks
            )
        engine = StreamEngine(batch_size=chosen_batch if engine_mode.mode == "batch" else None)
        for name, entry in engine_sources.items():
            engine.add_source(name, entry)
        for op, _ in operator_tags:
            engine.register(op)
        for sink in sinks.values():
            engine.register(sink)
        engine.validate()

        return CompiledQuery(
            engine=engine,
            sources=sorted(engine_sources),
            sinks=sinks,
            logical_plan=plan,
            optimized_plan=optimized,
            rewrites=traces,
            execution=engine_mode,
            strategy_decisions=lowering.strategy_decisions,
            operator_tags=operator_tags,
        )

    def _choose_mode(
        self,
        mode: str,
        batch_size: Optional[int],
        operators: Sequence[Operator],
        window_sizes: Sequence[int],
    ) -> Tuple[ExecutionChoice, Optional[int]]:
        if mode == "tuple":
            choice = ExecutionChoice("tuple", None, "pinned by compile(mode='tuple')")
            return choice, None
        if mode == "batch":
            size = self.cost_model.resolve_batch_size(batch_size, window_sizes)
            choice = ExecutionChoice(
                "batch", size, "pinned by compile(mode='batch')"
            )
            return choice, size
        choice = self.cost_model.choose_execution(operators, window_sizes)
        if batch_size is not None and choice.mode == "batch":
            choice = ExecutionChoice("batch", batch_size, choice.reason)
        return choice, choice.batch_size


def _fuse_union_branches(
    operator_tags: List[Tuple[Operator, LogicalNode]],
    engine_sources: Dict[str, Operator],
    sinks: Dict[str, CollectSink],
) -> List[Tuple[Operator, LogicalNode]]:
    """Fuse each batch-capable linear chain feeding a Union into one box.

    On the batch path, every arrow costs one scheduler dispatch and one
    ``accept_batch`` round (validation, counters, timing) per batch —
    and union fan-in multiplies arrows: each input branch is its own
    chain of small boxes.  This pass rewires every maximal linear chain
    of vectorised single-consumer boxes that ends in a Union input into
    a single :class:`FusedBatchSegment`, which runs the member kernels
    back-to-back inside one dispatch.

    Only applied when every member advertises ``supports_batch`` (so
    the fusion never hides a per-tuple fallback loop) and the chain is
    truly linear (one upstream, one downstream per member); source
    entry boxes and sinks are never fused so engine addressing and
    result collection are untouched.
    """
    node_of: Dict[int, LogicalNode] = {id(op): node for op, node in operator_tags}
    source_ids = {id(op) for op in engine_sources.values()}
    sink_ids = {id(s) for s in sinks.values()}
    upstream: Dict[int, List[Operator]] = {}
    for op, _ in operator_tags:
        for nxt in op.downstream:
            upstream.setdefault(id(nxt), []).append(op)

    def eligible(op: Operator) -> bool:
        return (
            id(op) not in source_ids
            and id(op) not in sink_ids
            and not isinstance(op, UnionOperator)
            and op.supports_batch
            and len(op.downstream) == 1
            and len(upstream.get(id(op), ())) == 1
        )

    fused: List[Tuple[List[Operator], Operator]] = []  # (chain, union)
    for op, _ in operator_tags:
        if not isinstance(op, UnionOperator):
            continue
        for pred in list(upstream.get(id(op), ())):
            chain: List[Operator] = []
            cur = pred
            while eligible(cur):
                chain.insert(0, cur)
                cur = upstream[id(cur)][0]
            if len(chain) >= 2:
                fused.append((chain, op))

    if not fused:
        return operator_tags

    removed: set = set()
    new_tags = list(operator_tags)
    for chain, union_op in fused:
        parent = upstream[id(chain[0])][0]
        segment = FusedBatchSegment(chain)
        # Sever the members from the graph and splice the segment in.
        parent.disconnect(chain[0])
        for member in chain:
            for nxt in list(member.downstream):
                member.disconnect(nxt)
        parent.connect(segment)
        segment.connect(union_op)
        removed.update(id(member) for member in chain)
        tail_node = node_of[id(chain[-1])]
        index = next(
            i for i, (op, _) in enumerate(new_tags) if id(op) == id(chain[-1])
        )
        new_tags.insert(index + 1, (segment, tail_node))
    return [(op, node) for op, node in new_tags if id(op) not in removed]


def _fuse_pipe_chains(
    operator_tags: List[Tuple[Operator, LogicalNode]],
    engine_sources: Dict[str, Operator],
    sinks: Dict[str, CollectSink],
) -> List[Tuple[Operator, LogicalNode]]:
    """Fuse linear runs of batch-capable piped operators into one box.

    ``pipe()`` chains are the T-operator idiom: several custom boxes in
    a row (transform, enrich, monitor), each costing a scheduler
    dispatch per batch.  Every maximal run of >= 2 consecutive
    PipeNode-lowered boxes that are linear (one upstream, one
    downstream) and advertise ``supports_batch`` is spliced into a
    :class:`FusedBatchSegment`, exactly like union fan-in branches.
    Per-tuple fallback boxes are never fused, so the segment's batch
    kernel claim stays honest.
    """
    node_of: Dict[int, LogicalNode] = {id(op): node for op, node in operator_tags}
    source_ids = {id(op) for op in engine_sources.values()}
    sink_ids = {id(s) for s in sinks.values()}
    upstream: Dict[int, List[Operator]] = {}
    for op, _ in operator_tags:
        for nxt in op.downstream:
            upstream.setdefault(id(nxt), []).append(op)

    def eligible(op: Operator) -> bool:
        return (
            id(op) not in source_ids
            and id(op) not in sink_ids
            and not isinstance(op, FusedBatchSegment)
            and isinstance(node_of.get(id(op)), PipeNode)
            and op.supports_batch
            and len(op.downstream) == 1
            and len(upstream.get(id(op), ())) == 1
        )

    runs: List[List[Operator]] = []
    for op, _ in operator_tags:
        if not eligible(op):
            continue
        parent = upstream[id(op)][0]
        if eligible(parent):
            continue  # not the head of its run
        run = [op]
        cur = op.downstream[0]
        while eligible(cur):
            run.append(cur)
            cur = cur.downstream[0]
        if len(run) >= 2:
            runs.append(run)

    if not runs:
        return operator_tags

    removed: set = set()
    new_tags = list(operator_tags)
    for run in runs:
        parent = upstream[id(run[0])][0]
        successor = run[-1].downstream[0]
        segment = FusedBatchSegment(run)
        parent.disconnect(run[0])
        for member in run:
            for nxt in list(member.downstream):
                member.disconnect(nxt)
        parent.connect(segment)
        segment.connect(successor)
        removed.update(id(member) for member in run)
        tail_node = node_of[id(run[-1])]
        index = next(i for i, (op, _) in enumerate(new_tags) if id(op) == id(run[-1]))
        new_tags.insert(index + 1, (segment, tail_node))
    return [(op, node) for op, node in new_tags if id(op) not in removed]


def compile_streams(
    outputs: Dict[str, "Stream"],
    mode: str = "auto",
    batch_size: Optional[int] = None,
    optimize: bool = True,
    planner: Optional[Planner] = None,
) -> CompiledQuery:
    """Compile several named output streams into one multi-output query.

    This is the Figure 2 shape: one shared prefix (a T operator) feeding
    several monitoring queries.  Shared Stream handles lower to shared
    physical boxes, so the common prefix executes once::

        query = compile_streams({"q1": heavy_areas, "q2": hot_objects})
        query.push_many("rfid", tuples)
        query.finish()
        alerts = query.output("q1")
    """
    from .builder import Stream

    if not outputs:
        raise PlanError("compile_streams() needs at least one named output stream")
    for name, stream in outputs.items():
        if not isinstance(stream, Stream):
            raise PlanError(f"output {name!r} is not a Stream")
    plan = LogicalPlan(
        outputs=tuple(s.node for s in outputs.values()),
        names=tuple(outputs.keys()),
    )
    plan.validate()
    active = planner or Planner()
    return active.compile(plan, mode=mode, batch_size=batch_size, optimize=optimize)
