"""Logical plan IR: immutable node dataclasses for declarative queries.

Section 3 of the paper describes every workload as a box-arrow diagram
"compiled from a query".  This module is the *logical* half of that
compilation: a query built with :class:`repro.plan.Stream` produces an
immutable DAG of the node types below, which the planner
(:mod:`repro.plan.planner`) rewrites and lowers to physical
:class:`~repro.streams.operators.base.Operator` boxes.

Design notes
------------
* Nodes are frozen dataclasses.  A node never mutates after
  construction; rewrites build new nodes.  Fan-out is expressed by
  *sharing*: two consumers holding the same node object read the same
  intermediate stream, and the planner lowers a shared node to a single
  physical box with two downstream arrows.
* Each node can infer its output :class:`StreamSchema` from its inputs.
  Schemas are *optional*: a source declared without attributes has an
  open schema and downstream checks are skipped, mirroring the repo's
  schema-optional tuples.
* :func:`explain_logical` renders the DAG as an indented tree (shared
  subtrees are printed once and referenced), which `Stream.explain()`
  and `CompiledQuery.explain()` embed in their reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.aggregation import AGGREGATE_FUNCTIONS, HavingClause, SumStrategy
from repro.core.selection import Comparison, UncertainPredicate
from repro.streams.operators.base import Operator
from repro.streams.windows import WindowSpec

__all__ = [
    "PlanError",
    "StreamSchema",
    "ColumnStat",
    "LogicalNode",
    "SourceNode",
    "DeriveNode",
    "FilterNode",
    "ProbFilterNode",
    "AggregateNode",
    "JoinNode",
    "UnionNode",
    "SummarizeNode",
    "PipeNode",
    "FusedSelectAggregateNode",
    "LogicalPlan",
    "topological_nodes",
    "consumer_counts",
    "explain_logical",
]


class PlanError(Exception):
    """Raised for malformed logical plans (unknown attributes, bad wiring)."""


# ----------------------------------------------------------------------
# Schema inference
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamSchema:
    """The attributes known to be present on a logical stream.

    ``None`` for either attribute set means "unknown / open": the
    source did not declare its shape, so downstream reference checks
    are skipped for that attribute kind.
    """

    values: Optional[FrozenSet[str]] = None
    uncertain: Optional[FrozenSet[str]] = None

    @staticmethod
    def open() -> StreamSchema:
        return StreamSchema(None, None)

    @property
    def is_open(self) -> bool:
        return self.values is None and self.uncertain is None

    def with_values(self, *names: str) -> StreamSchema:
        if self.values is None:
            return self
        return replace(self, values=self.values | frozenset(names))

    def with_uncertain(self, *names: str) -> StreamSchema:
        if self.uncertain is None:
            return self
        return replace(self, uncertain=self.uncertain | frozenset(names))

    def require_uncertain(self, name: str, context: str) -> None:
        if self.uncertain is not None and name not in self.uncertain:
            raise PlanError(
                f"{context}: uncertain attribute {name!r} is not produced upstream "
                f"(known: {sorted(self.uncertain)})"
            )

    def require_any(self, name: str, context: str) -> None:
        if self.values is None or self.uncertain is None:
            return
        if name not in self.values and name not in self.uncertain:
            raise PlanError(
                f"{context}: attribute {name!r} is not produced upstream "
                f"(known values: {sorted(self.values)}, "
                f"uncertain: {sorted(self.uncertain)})"
            )


@dataclass(frozen=True)
class ColumnStat:
    """Declared population statistics for one source column.

    ``family`` is ``"gaussian"`` (``a`` = mean, ``b`` = standard
    deviation) or ``"uniform"`` (``a`` = low, ``b`` = high).  The cost
    model uses these to estimate the pass-rate of constant-comparison
    filters from the family's CDF (see
    :meth:`~repro.plan.cost.CostModel.prob_filter_selectivity`).
    """

    attribute: str
    family: str
    a: float
    b: float

    def __post_init__(self) -> None:
        family = self.family.lower()
        object.__setattr__(self, "family", family)
        if family not in ("gaussian", "normal", "uniform"):
            raise PlanError(
                f"column stat for {self.attribute!r}: unsupported family {family!r} "
                "(use 'gaussian' or 'uniform')"
            )
        if family == "uniform" and self.b <= self.a:
            raise PlanError(
                f"column stat for {self.attribute!r}: uniform needs high > low"
            )
        if family in ("gaussian", "normal") and self.b <= 0.0:
            raise PlanError(
                f"column stat for {self.attribute!r}: gaussian needs a positive std"
            )


# ----------------------------------------------------------------------
# Node types
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class LogicalNode:
    """Base class for logical plan nodes.

    Equality is identity (``eq=False``): sharing a node object *is* the
    DAG fan-out, so two structurally equal nodes are still distinct
    streams.
    """

    @property
    def inputs(self) -> Tuple["LogicalNode", ...]:
        return ()

    def with_inputs(self, *inputs: LogicalNode) -> LogicalNode:
        """Return a copy of this node reading from ``inputs`` instead."""
        raise NotImplementedError

    def output_schema(self) -> StreamSchema:
        """Infer the schema of this node's output stream."""
        raise NotImplementedError

    def label(self) -> str:
        """One-line description used by ``explain()``."""
        return type(self).__name__

    def validate(self) -> None:
        """Check this node against its input schemas (default: schema only)."""
        self.output_schema()


def _callable_name(fn: Callable) -> str:
    name = getattr(fn, "__name__", None)
    if name is None or name == "<lambda>":
        return "λ"
    return name


@dataclass(frozen=True, eq=False)
class SourceNode(LogicalNode):
    """A named input stream, optionally with a declared schema.

    Parameters
    ----------
    name:
        Engine source name used by ``CompiledQuery.push(name, ...)``.
    values / uncertain:
        Optional declared attribute names.  Declaring them enables
        reference checking throughout the plan.
    family:
        Declared distribution family of the uncertain attributes
        (``"gaussian"``, ``"gmm"``, ``"empirical"``, ...).  The cost
        model uses it to pick the SUM strategy and the execution mode.
    rate_hint:
        Expected tuples per second; lets the cost model convert a time
        window into an expected window size.
    stats:
        Optional per-column population statistics
        (:class:`ColumnStat`); the cost model estimates filter
        selectivities from them.
    """

    name: str = "input"
    values: Optional[FrozenSet[str]] = None
    uncertain: Optional[FrozenSet[str]] = None
    family: Optional[str] = None
    rate_hint: Optional[float] = None
    stats: Optional[Tuple[ColumnStat, ...]] = None

    def stat_for(self, attribute: str) -> Optional[ColumnStat]:
        """Return the declared statistics for ``attribute``, if any."""
        for stat in self.stats or ():
            if stat.attribute == attribute:
                return stat
        return None

    def with_inputs(self, *inputs: LogicalNode) -> SourceNode:
        if inputs:
            raise PlanError("SourceNode takes no inputs")
        return self

    def output_schema(self) -> StreamSchema:
        return StreamSchema(
            None if self.values is None else frozenset(self.values),
            None if self.uncertain is None else frozenset(self.uncertain),
        )

    def label(self) -> str:
        parts = [f"Source[{self.name}"]
        if self.family is not None:
            parts.append(f", family={self.family}")
        parts.append("]")
        return "".join(parts)


@dataclass(frozen=True, eq=False)
class DeriveNode(LogicalNode):
    """Add derived attributes (the inner Select of Q1)."""

    input: LogicalNode
    value_functions: Tuple[Tuple[str, Callable], ...] = ()
    uncertain_functions: Tuple[Tuple[str, Callable], ...] = ()

    @property
    def inputs(self) -> Tuple[LogicalNode, ...]:
        return (self.input,)

    def with_inputs(self, *inputs: LogicalNode) -> DeriveNode:
        (node,) = inputs
        return replace(self, input=node)

    @property
    def introduced(self) -> FrozenSet[str]:
        """All attribute names this node introduces."""
        return frozenset(name for name, _ in self.value_functions) | frozenset(
            name for name, _ in self.uncertain_functions
        )

    def output_schema(self) -> StreamSchema:
        schema = self.input.output_schema()
        schema = schema.with_values(*(name for name, _ in self.value_functions))
        return schema.with_uncertain(*(name for name, _ in self.uncertain_functions))

    def validate(self) -> None:
        if not self.value_functions and not self.uncertain_functions:
            raise PlanError("derive() needs at least one derivation function")
        self.output_schema()

    def label(self) -> str:
        names = ", ".join(sorted(self.introduced))
        return f"Derive[{names}]"


@dataclass(frozen=True, eq=False)
class FilterNode(LogicalNode):
    """A deterministic filter (opaque predicate over the tuple).

    ``uses`` optionally declares which attributes the predicate reads;
    the planner can only push a filter below a derive or reorder it
    when the touched attributes are known.  ``cost_hint`` declares the
    predicate's per-tuple cost relative to a trivial comparison (1.0);
    the cost model's filter-ordering rank uses it.
    """

    input: LogicalNode
    predicate: Callable[..., bool]
    uses: Optional[FrozenSet[str]] = None
    description: Optional[str] = None
    cost_hint: Optional[float] = None

    @property
    def inputs(self) -> Tuple[LogicalNode, ...]:
        return (self.input,)

    def with_inputs(self, *inputs: LogicalNode) -> FilterNode:
        (node,) = inputs
        return replace(self, input=node)

    def output_schema(self) -> StreamSchema:
        schema = self.input.output_schema()
        if self.uses is not None:
            for name in sorted(self.uses):
                schema.require_any(name, "where()")
        return schema

    def label(self) -> str:
        desc = self.description or _callable_name(self.predicate)
        if self.uses:
            return f"Filter[{desc}, uses={{{', '.join(sorted(self.uses))}}}]"
        return f"Filter[{desc}]"


@dataclass(frozen=True, eq=False)
class ProbFilterNode(LogicalNode):
    """A probabilistic filter on one uncertain attribute (Section 5, Q2).

    ``annotate`` names the deterministic attribute that will carry the
    evaluated predicate probability on surviving tuples; ``None`` skips
    the annotation (and makes the filter eligible for pushdown below a
    join, since no annotation name needs re-prefixing).
    """

    input: LogicalNode
    attribute: str
    comparison: Comparison
    threshold: float
    upper: Optional[float] = None
    min_probability: float = 0.5
    annotate: Optional[str] = "selection_probability"

    @property
    def inputs(self) -> Tuple[LogicalNode, ...]:
        return (self.input,)

    def with_inputs(self, *inputs: LogicalNode) -> ProbFilterNode:
        (node,) = inputs
        return replace(self, input=node)

    def predicate(self) -> UncertainPredicate:
        return UncertainPredicate(self.attribute, self.comparison, self.threshold, self.upper)

    def output_schema(self) -> StreamSchema:
        schema = self.input.output_schema()
        schema.require_uncertain(self.attribute, "where_probably()")
        if self.annotate is not None:
            schema = schema.with_values(self.annotate)
        return schema

    def validate(self) -> None:
        if not 0.0 <= self.min_probability <= 1.0:
            raise PlanError("min_probability must lie in [0, 1]")
        if self.comparison is Comparison.BETWEEN and self.upper is None:
            raise PlanError("BETWEEN predicates require an upper bound")
        self.output_schema()

    def label(self) -> str:
        if self.comparison is Comparison.BETWEEN:
            pred = f"{self.threshold} <= {self.attribute} <= {self.upper}"
        else:
            pred = f"{self.attribute} {self.comparison.value} {self.threshold}"
        return f"ProbFilter[{pred}, p>={self.min_probability}]"


@dataclass(frozen=True, eq=False)
class AggregateNode(LogicalNode):
    """Windowed aggregation, optionally grouped, with a probabilistic HAVING.

    ``strategy=None`` asks the planner's cost model to choose the SUM
    strategy from the window size and the declared distribution family.
    """

    input: LogicalNode
    window: WindowSpec
    attribute: str
    function: str = "sum"
    strategy: Optional[SumStrategy] = None
    key: Optional[Callable[..., Hashable]] = None
    having: Optional[HavingClause] = None
    output_attribute: Optional[str] = None
    check_independence: bool = True

    @property
    def inputs(self) -> Tuple[LogicalNode, ...]:
        return (self.input,)

    def with_inputs(self, *inputs: LogicalNode) -> AggregateNode:
        (node,) = inputs
        return replace(self, input=node)

    @property
    def result_attribute(self) -> str:
        return self.output_attribute or f"{self.function}_{self.attribute}"

    def output_schema(self) -> StreamSchema:
        schema = self.input.output_schema()
        if self.function != "count":
            schema.require_any(self.attribute, "aggregate()")
        values = {"window_start", "window_end", "window_count"}
        uncertain = set()
        if self.key is not None:
            values.add("group")
        if self.function == "count":
            values.add(self.result_attribute)
        else:
            uncertain.add(self.result_attribute)
            values.add(f"{self.result_attribute}_mean")
            if self.having is not None:
                values.add("having_probability")
        return StreamSchema(frozenset(values), frozenset(uncertain))

    def validate(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"unsupported aggregate function {self.function!r}; "
                f"choose from {AGGREGATE_FUNCTIONS}"
            )
        self.output_schema()

    def label(self) -> str:
        parts = [f"Aggregate[{self.function}({self.attribute}) @ {self.window!r}"]
        if self.key is not None:
            parts.append(f", group_by={_callable_name(self.key)}")
        if self.strategy is None:
            parts.append(", strategy=auto")
        else:
            parts.append(f", strategy={self.strategy.name}")
        if self.having is not None:
            parts.append(
                f", having P[> {self.having.threshold}] >= {self.having.min_probability}"
            )
        parts.append("]")
        return "".join(parts)


@dataclass(frozen=True, eq=False)
class FusedSelectAggregateNode(LogicalNode):
    """A ProbFilter fused into the aggregate that consumes it.

    Produced only by the ``fuse_select_into_aggregate`` rewrite; the
    builder never creates one directly.  Lowered to a single physical
    box that computes the selection mask and the window moments in one
    pass over the batch columns.
    """

    select: ProbFilterNode
    aggregate: AggregateNode

    @property
    def inputs(self) -> Tuple[LogicalNode, ...]:
        return (self.select.input,)

    def with_inputs(self, *inputs: LogicalNode) -> FusedSelectAggregateNode:
        (node,) = inputs
        return replace(self, select=replace(self.select, input=node))

    def output_schema(self) -> StreamSchema:
        return replace(self.aggregate, input=self.select).output_schema()

    def label(self) -> str:
        return f"FusedSelectAggregate[{self.select.label()} ⨝ {self.aggregate.label()}]"


@dataclass(frozen=True, eq=False)
class JoinNode(LogicalNode):
    """Symmetric sliding-window probabilistic join of two streams (Q2)."""

    left: LogicalNode
    right: LogicalNode
    on: Callable[..., float]
    window_length: float = 3.0
    min_probability: float = 0.5
    prefix_left: str = "left_"
    prefix_right: str = "right_"
    probability_attribute: str = "match_probability"

    @property
    def inputs(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def with_inputs(self, *inputs: LogicalNode) -> JoinNode:
        left, right = inputs
        return replace(self, left=left, right=right)

    def output_schema(self) -> StreamSchema:
        left = self.left.output_schema()
        right = self.right.output_schema()

        def prefixed(names: Optional[FrozenSet[str]], prefix: str) -> Optional[FrozenSet[str]]:
            if names is None:
                return None
            return frozenset(f"{prefix}{name}" for name in names)

        lv, rv = prefixed(left.values, self.prefix_left), prefixed(right.values, self.prefix_right)
        lu = prefixed(left.uncertain, self.prefix_left)
        ru = prefixed(right.uncertain, self.prefix_right)
        values = None if lv is None or rv is None else lv | rv | {self.probability_attribute}
        uncertain = None if lu is None or ru is None else lu | ru
        return StreamSchema(values, uncertain)

    def validate(self) -> None:
        if self.window_length <= 0:
            raise PlanError("join window_length must be positive")
        if not 0.0 <= self.min_probability <= 1.0:
            raise PlanError("join min_probability must lie in [0, 1]")
        self.output_schema()

    def label(self) -> str:
        return (
            f"Join[on={_callable_name(self.on)}, window={self.window_length}s, "
            f"p>={self.min_probability}]"
        )


@dataclass(frozen=True, eq=False)
class UnionNode(LogicalNode):
    """Merge several streams into one (identity per tuple)."""

    sources: Tuple[LogicalNode, ...] = ()

    @property
    def inputs(self) -> Tuple[LogicalNode, ...]:
        return self.sources

    def with_inputs(self, *inputs: LogicalNode) -> UnionNode:
        return replace(self, sources=tuple(inputs))

    def output_schema(self) -> StreamSchema:
        schemas = [node.output_schema() for node in self.sources]
        values: Optional[FrozenSet[str]] = None
        uncertain: Optional[FrozenSet[str]] = None
        for schema in schemas:
            if schema.values is None:
                values = None
                break
            values = schema.values if values is None else values & schema.values
        for schema in schemas:
            if schema.uncertain is None:
                uncertain = None
                break
            uncertain = schema.uncertain if uncertain is None else uncertain & schema.uncertain
        return StreamSchema(values, uncertain)

    def validate(self) -> None:
        if len(self.sources) < 2:
            raise PlanError("union() needs at least two input streams")
        self.output_schema()

    def label(self) -> str:
        return f"Union[{len(self.sources)} inputs]"


@dataclass(frozen=True, eq=False)
class SummarizeNode(LogicalNode):
    """Replace a result distribution with summary statistics (Section 3)."""

    input: LogicalNode
    attribute: str
    confidence: float = 0.95
    keep_distribution: bool = False

    @property
    def inputs(self) -> Tuple[LogicalNode, ...]:
        return (self.input,)

    def with_inputs(self, *inputs: LogicalNode) -> SummarizeNode:
        (node,) = inputs
        return replace(self, input=node)

    def output_schema(self) -> StreamSchema:
        schema = self.input.output_schema()
        schema.require_uncertain(self.attribute, "summarize()")
        schema = schema.with_values(
            f"{self.attribute}_mean",
            f"{self.attribute}_variance",
            f"{self.attribute}_lo",
            f"{self.attribute}_hi",
        )
        if not self.keep_distribution and schema.uncertain is not None:
            schema = replace(schema, uncertain=schema.uncertain - {self.attribute})
        return schema

    def validate(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise PlanError("confidence must lie strictly between 0 and 1")
        self.output_schema()

    def label(self) -> str:
        return f"Summarize[{self.attribute}, confidence={self.confidence}]"


@dataclass(frozen=True, eq=False)
class PipeNode(LogicalNode):
    """Escape hatch: route the stream through a user-supplied operator.

    Used for boxes the declarative surface does not model (T operators,
    application-specific monitors).  The operator instance is stateful,
    so a plan containing PipeNodes can only be compiled once.
    """

    input: LogicalNode
    operator: Operator
    description: Optional[str] = None

    @property
    def inputs(self) -> Tuple[LogicalNode, ...]:
        return (self.input,)

    def with_inputs(self, *inputs: LogicalNode) -> PipeNode:
        (node,) = inputs
        return replace(self, input=node)

    def output_schema(self) -> StreamSchema:
        self.input.output_schema()
        # A custom operator may emit anything: the schema goes open.
        return StreamSchema.open()

    def label(self) -> str:
        return f"Pipe[{self.description or self.operator.name}]"


# ----------------------------------------------------------------------
# DAG traversal helpers
# ----------------------------------------------------------------------
def topological_nodes(roots: Tuple[LogicalNode, ...]) -> List[LogicalNode]:
    """Return all nodes reachable from ``roots`` in topological order
    (inputs before consumers), visiting shared nodes once."""
    order: List[LogicalNode] = []
    seen: set = set()

    for root in roots:
        stack: List[Tuple[LogicalNode, bool]] = [(root, False)]
        on_path: set = set()
        while stack:
            node, expanded = stack.pop()
            if expanded:
                on_path.discard(id(node))
                if id(node) not in seen:
                    seen.add(id(node))
                    order.append(node)
                continue
            if id(node) in seen:
                continue
            if id(node) in on_path:
                raise PlanError("logical plan contains a cycle")
            on_path.add(id(node))
            stack.append((node, True))
            for child in node.inputs:
                stack.append((child, False))
    return order


def consumer_counts(roots: Tuple[LogicalNode, ...]) -> Dict[int, int]:
    """Return ``id(node) -> number of consumers`` over the whole DAG.

    Root nodes count their sink as one consumer, so a root that also
    feeds another node reports 2 and is recognised as shared.
    """
    counts: Dict[int, int] = {}
    for node in topological_nodes(roots):
        counts.setdefault(id(node), 0)
        for child in node.inputs:
            counts[id(child)] = counts.get(id(child), 0) + 1
    for root in roots:
        counts[id(root)] = counts.get(id(root), 0) + 1
    return counts


def explain_logical(roots: Tuple[LogicalNode, ...], names: Tuple[str, ...] = ()) -> str:
    """Render a logical DAG as an indented tree.

    Shared subtrees are assigned a reference (``#1``, ``#2``, ...) the
    first time they are printed and referred to by it afterwards, so
    fan-out is visible without duplicating whole subtrees.
    """
    counts = consumer_counts(roots)
    refs: Dict[int, int] = {}
    printed: set = set()
    lines: List[str] = []

    def render(node: LogicalNode, depth: int) -> None:
        indent = "  " * depth
        shared = counts.get(id(node), 0) > 1
        if shared and id(node) in printed:
            lines.append(f"{indent}(see #{refs[id(node)]})")
            return
        tag = ""
        if shared:
            refs[id(node)] = len(refs) + 1
            tag = f"  #{refs[id(node)]}"
            printed.add(id(node))
        lines.append(f"{indent}{node.label()}{tag}")
        for child in node.inputs:
            render(child, depth + 1)

    for i, root in enumerate(roots):
        if names and i < len(names):
            lines.append(f"output {names[i]}:")
        render(root, 1 if names else 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# LogicalPlan: a validated set of output nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LogicalPlan:
    """An immutable logical plan: named output nodes plus validation.

    Most queries have a single output; multi-output plans express
    Figure 2-style fan-out (one T operator feeding Q1 and Q2) with the
    shared prefix lowered to shared physical boxes.
    """

    outputs: Tuple[LogicalNode, ...]
    names: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.outputs:
            raise PlanError("a logical plan needs at least one output")
        names = self.names
        if not names:
            names = tuple(
                "out" if len(self.outputs) == 1 else f"out{i}"
                for i in range(len(self.outputs))
            )
            object.__setattr__(self, "names", names)
        if len(names) != len(set(names)):
            raise PlanError(f"duplicate output names: {names}")
        if len(names) != len(self.outputs):
            raise PlanError("output names and output nodes must align")

    def validate(self) -> None:
        """Type/schema-check every node and verify source-name uniqueness."""
        source_names: Dict[str, int] = {}
        for node in topological_nodes(self.outputs):
            node.validate()
            if isinstance(node, SourceNode):
                previous = source_names.get(node.name)
                if previous is not None and previous != id(node):
                    raise PlanError(
                        f"two distinct sources both named {node.name!r}; "
                        "reuse one Stream.source handle for fan-out instead"
                    )
                source_names[node.name] = id(node)

    @property
    def nodes(self) -> List[LogicalNode]:
        return topological_nodes(self.outputs)

    @property
    def sources(self) -> List[SourceNode]:
        return [node for node in self.nodes if isinstance(node, SourceNode)]

    def explain(self) -> str:
        names = self.names if len(self.outputs) > 1 else ()
        return explain_logical(self.outputs, names)
