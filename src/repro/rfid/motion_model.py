"""Object motion model for the RFID particle filter.

The graphical model's state-evolution component: objects mostly stay
where they are (small positional jitter) but occasionally jump to a
different shelf.  The particle-filter transition model mirrors that
behaviour, mixing a tight random walk with occasional long-range jumps
so particle clouds can recover when an object actually moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.inference.graphical_model import StateSpaceModel, TransitionModel

from .sensor_model import DetectionModel, RFIDObservationModel

__all__ = ["RandomWalkWithJumps", "uniform_prior", "build_object_model"]


@dataclass(frozen=True)
class RandomWalkWithJumps(TransitionModel):
    """Random-walk transition with occasional uniform relocation jumps.

    Parameters
    ----------
    walk_sigma:
        Standard deviation of the per-second positional jitter (feet).
    jump_rate:
        Expected relocations per second; each relocation resamples the
        particle uniformly over the area bounds.
    bounds:
        ``(x_min, y_min, x_max, y_max)`` of the storage area; particles
        are clipped to it after every move.
    """

    walk_sigma: float = 0.2
    jump_rate: float = 0.002
    bounds: Tuple[float, float, float, float] = (0.0, 0.0, 100.0, 50.0)

    def __post_init__(self) -> None:
        if self.walk_sigma <= 0:
            raise ValueError("walk_sigma must be positive")
        if self.jump_rate < 0:
            raise ValueError("jump_rate must be non-negative")
        x_min, y_min, x_max, y_max = self.bounds
        if x_max <= x_min or y_max <= y_min:
            raise ValueError("bounds must describe a non-empty rectangle")

    def propagate(self, states: np.ndarray, dt: float, rng: np.random.Generator) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        n = states.shape[0]
        x_min, y_min, x_max, y_max = self.bounds
        sigma = self.walk_sigma * np.sqrt(max(dt, 0.0))
        moved = states + rng.normal(0.0, sigma, size=states.shape) if sigma > 0 else states.copy()
        jump_probability = 1.0 - np.exp(-self.jump_rate * dt)
        if jump_probability > 0:
            jumps = rng.random(n) < jump_probability
            n_jumps = int(np.count_nonzero(jumps))
            if n_jumps:
                moved[jumps, 0] = rng.uniform(x_min, x_max, size=n_jumps)
                moved[jumps, 1] = rng.uniform(y_min, y_max, size=n_jumps)
        moved[:, 0] = np.clip(moved[:, 0], x_min, x_max)
        moved[:, 1] = np.clip(moved[:, 1], y_min, y_max)
        return moved


def uniform_prior(
    bounds: Tuple[float, float, float, float],
) -> Callable[[int, np.random.Generator], np.ndarray]:
    """Return a prior sampler drawing locations uniformly over the area.

    Before any observation, an object could be anywhere in the storage
    area; the first few readings (and misses) then concentrate the
    particle cloud.
    """
    x_min, y_min, x_max, y_max = bounds
    if x_max <= x_min or y_max <= y_min:
        raise ValueError("bounds must describe a non-empty rectangle")

    def sampler(n: int, rng: np.random.Generator) -> np.ndarray:
        xs = rng.uniform(x_min, x_max, size=n)
        ys = rng.uniform(y_min, y_max, size=n)
        return np.column_stack([xs, ys])

    return sampler


def build_object_model(
    bounds: Tuple[float, float, float, float],
    detection: Optional[DetectionModel] = None,
    walk_sigma: float = 0.2,
    jump_rate: float = 0.002,
    prior: Optional[Callable[[int, np.random.Generator], np.ndarray]] = None,
) -> StateSpaceModel:
    """Assemble the per-object state-space model used by the RFID T operator."""
    transition = RandomWalkWithJumps(walk_sigma=walk_sigma, jump_rate=jump_rate, bounds=bounds)
    observation = RFIDObservationModel(detection)
    return StateSpaceModel(
        transition=transition,
        observation=observation,
        prior_sampler=prior or uniform_prior(bounds),
        state_dim=2,
    )
