"""The paper's example monitoring queries Q1 and Q2 over RFID streams.

Q1 (fire-code monitoring): per 5-second window, group objects by the
square-foot shelf area they are in and report areas whose total object
weight exceeds 200 pounds.  Because object locations are uncertain,
*group membership* is uncertain: each object belongs to each area with
some probability.  :class:`FireCodeMonitor` propagates that uncertainty
into a per-area total-weight distribution (a sum of independent
weight-scaled Bernoullis, approximated with a Gaussian via the CLT) and
applies the HAVING clause probabilistically.

Q2 (flammable-object alerts): join the object-location stream with a
temperature stream on probabilistic location equality, keeping
flammable objects and temperatures above 60 degrees C.
:func:`build_flammable_alert_join` wires the corresponding plan from
the generic core operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core import (
    Comparison,
    ProbabilisticJoin,
    ProbabilisticSelect,
    UncertainPredicate,
    match_probability_band,
)
from repro.distributions import Distribution, Gaussian
from repro.streams import Filter, StreamTuple, TumblingTimeWindow, WindowBuffer
from repro.streams.operators.base import Operator, OperatorError

__all__ = [
    "area_membership_probabilities",
    "FireCodeMonitor",
    "build_flammable_alert_join",
]


def area_membership_probabilities(
    x_dist: Distribution,
    y_dist: Distribution,
    cell_size: float,
    min_probability: float = 1e-3,
) -> Dict[Tuple[int, int], float]:
    """Return the probability that a location falls in each grid cell.

    Cells are axis-aligned squares of side ``cell_size`` (the "square
    foot of shelf area" in Q1 for ``cell_size=1``).  Assuming the x and
    y marginals are independent (which holds for the per-axis
    compressed distributions emitted by the T operator), the cell
    probability factorises into a product of interval probabilities.
    Cells with probability below ``min_probability`` are dropped.
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    probabilities: Dict[Tuple[int, int], float] = {}
    x_lo, x_hi = x_dist.support()
    y_lo, y_hi = y_dist.support()
    ix_lo, ix_hi = int(math.floor(x_lo / cell_size)), int(math.floor(x_hi / cell_size))
    iy_lo, iy_hi = int(math.floor(y_lo / cell_size)), int(math.floor(y_hi / cell_size))
    x_probs = {
        ix: x_dist.prob_in_interval(ix * cell_size, (ix + 1) * cell_size)
        for ix in range(ix_lo, ix_hi + 1)
    }
    y_probs = {
        iy: y_dist.prob_in_interval(iy * cell_size, (iy + 1) * cell_size)
        for iy in range(iy_lo, iy_hi + 1)
    }
    for ix, px in x_probs.items():
        if px < min_probability:
            continue
        for iy, py in y_probs.items():
            prob = px * py
            if prob >= min_probability:
                probabilities[(ix, iy)] = prob
    return probabilities


class FireCodeMonitor(Operator):
    """Q1: per-window, per-area total-weight monitoring under uncertainty.

    Parameters
    ----------
    window_length:
        The outer query window (5 seconds in the paper).
    weight_of:
        Lookup ``tag_id -> weight`` in pounds (the ``weight(R.tag_id)``
        function of Q1).
    cell_size:
        Side of the square area cells in feet.
    weight_limit:
        The fire-code threshold (200 pounds in the paper).
    min_violation_probability:
        Report an area only if the probability that its total weight
        exceeds the limit is at least this value.
    dedupe_per_window:
        Objects can be reported several times inside one window (once
        per scan); when True only the latest tuple per object in the
        window contributes.
    """

    def __init__(
        self,
        weight_of: Callable[[str], float],
        window_length: float = 5.0,
        cell_size: float = 1.0,
        weight_limit: float = 200.0,
        min_violation_probability: float = 0.5,
        dedupe_per_window: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if weight_limit <= 0:
            raise OperatorError("weight_limit must be positive")
        if not 0.0 <= min_violation_probability <= 1.0:
            raise OperatorError("min_violation_probability must lie in [0, 1]")
        self.weight_of = weight_of
        self.cell_size = cell_size
        self.weight_limit = weight_limit
        self.min_violation_probability = min_violation_probability
        self.dedupe_per_window = dedupe_per_window
        self._window = TumblingTimeWindow(window_length)
        self._buffer: WindowBuffer = self._window.new_buffer()

    def _window_results(self, close) -> Iterable[StreamTuple]:
        items = list(close.items)
        if not items:
            return
        if self.dedupe_per_window:
            latest: Dict[str, StreamTuple] = {}
            for item in items:
                latest[item.value("tag_id")] = item
            items = list(latest.values())

        # Aggregate each area's total weight as a sum of independent
        # weight-scaled Bernoulli memberships; approximate with a
        # Gaussian via the CLT (mean = sum w_i p_i, var = sum w_i^2 p_i (1 - p_i)).
        mean_by_area: Dict[Tuple[int, int], float] = {}
        var_by_area: Dict[Tuple[int, int], float] = {}
        lineage_by_area: Dict[Tuple[int, int], set] = {}
        for item in items:
            weight = float(self.weight_of(item.value("tag_id")))
            memberships = area_membership_probabilities(
                item.distribution("x"), item.distribution("y"), self.cell_size
            )
            for area, prob in memberships.items():
                mean_by_area[area] = mean_by_area.get(area, 0.0) + weight * prob
                var_by_area[area] = var_by_area.get(area, 0.0) + weight ** 2 * prob * (1.0 - prob)
                lineage_by_area.setdefault(area, set()).update(item.lineage)

        for area in sorted(mean_by_area):
            mean = mean_by_area[area]
            sigma = math.sqrt(max(var_by_area[area], 1e-12))
            total = Gaussian(mean, sigma)
            violation_probability = total.prob_greater_than(self.weight_limit)
            if violation_probability < self.min_violation_probability:
                continue
            yield StreamTuple(
                timestamp=close.end,
                values={
                    "area": area,
                    "window_start": close.start,
                    "window_end": close.end,
                    "violation_probability": violation_probability,
                    "total_weight_mean": mean,
                },
                uncertain={"total_weight": total},
                lineage=frozenset(lineage_by_area[area]),
            )

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        for close in self._buffer.add(item):
            yield from self._window_results(close)

    def flush(self) -> Iterable[StreamTuple]:
        for close in self._buffer.flush():
            yield from self._window_results(close)


def build_flammable_alert_join(
    object_type_of: Callable[[str], str],
    temperature_threshold: float = 60.0,
    location_tolerance: float = 2.0,
    window_length: float = 3.0,
    min_match_probability: float = 0.25,
    min_temperature_probability: float = 0.5,
) -> Tuple[Operator, Operator, ProbabilisticJoin]:
    """Build the Q2 plan and return ``(rfid_entry, temperature_entry, join)``.

    The RFID side filters to flammable objects (a deterministic
    predicate on ``object_type(tag_id)``); the temperature side applies
    the probabilistic ``temp > 60`` selection; the two sides meet in a
    sliding-window probabilistic join on location equality within
    ``location_tolerance`` feet.  Connect downstream consumers to the
    returned join operator.
    """
    flammable_filter = Filter(
        lambda item: object_type_of(item.value("tag_id")) == "flammable",
        name="Q2.flammable_filter",
    )
    temperature_select = ProbabilisticSelect(
        UncertainPredicate("temp", Comparison.GREATER, temperature_threshold),
        min_probability=min_temperature_probability,
        name="Q2.temp_select",
    )

    def match_probability(left: StreamTuple, right: StreamTuple) -> float:
        px = match_probability_band(
            left.distribution("x"), right.distribution("x"), location_tolerance
        )
        py = match_probability_band(
            left.distribution("y"), right.distribution("y"), location_tolerance
        )
        return px * py

    join = ProbabilisticJoin(
        window_length=window_length,
        match_probability=match_probability,
        min_probability=min_match_probability,
        prefix_left="obj_",
        prefix_right="temp_",
        name="Q2.location_join",
    )
    flammable_filter.connect(join.left_port())
    temperature_select.connect(join.right_port())
    return flammable_filter, temperature_select, join
