"""RFID object tracking and monitoring application (Section 2.1 / 4.1).

Ground-truth warehouse world, mobile-reader trace simulation, the
logistic sensing model, per-object motion models, the RFID data capture
and transformation (T) operator built on factorised particle filtering,
and the paper's example queries Q1 and Q2.
"""

from .motion_model import RandomWalkWithJumps, build_object_model, uniform_prior
from .queries import (
    FireCodeMonitor,
    area_membership_probabilities,
    build_flammable_alert_join,
)
from .sensor_model import DetectionModel, DetectionObservation, RFIDObservationModel
from .simulator import MobileReaderSimulator, RFIDReading, lawnmower_path
from .transform_operator import RFIDTransformOperator
from .world import Shelf, TaggedObject, WarehouseWorld

__all__ = [
    "WarehouseWorld",
    "Shelf",
    "TaggedObject",
    "DetectionModel",
    "DetectionObservation",
    "RFIDObservationModel",
    "RandomWalkWithJumps",
    "uniform_prior",
    "build_object_model",
    "MobileReaderSimulator",
    "RFIDReading",
    "lawnmower_path",
    "RFIDTransformOperator",
    "FireCodeMonitor",
    "area_membership_probabilities",
    "build_flammable_alert_join",
]
