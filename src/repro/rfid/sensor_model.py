"""RFID sensing model: detection probability and observation likelihood.

Section 4.1: "a distribution for RFID sensing can be devised using
logistic regression over factors such as the distance and angle between
the reader and an object."  :class:`DetectionModel` implements exactly
that parametric form; it is used both by the trace simulator (to decide
which tags a scan actually reports) and by the particle filter's
observation model (to weight location hypotheses by how well they
explain a detection or a miss).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.inference.graphical_model import ObservationModel

__all__ = ["DetectionModel", "DetectionObservation", "RFIDObservationModel"]


@dataclass(frozen=True)
class DetectionModel:
    """Logistic detection probability in distance (and optionally angle).

    ``P[detect | d, a] = max_rate * sigmoid(b0 + b_d * d + b_a * |a|)``

    With the default coefficients the probability is high close to the
    reader and decays to (almost) zero beyond roughly ``2 * midpoint``
    feet -- the "wide-range mobile reader" regime of the paper, where
    read rates are far below 100% and depend strongly on geometry.

    Parameters
    ----------
    midpoint:
        Distance (feet) at which the detection probability is half of
        ``max_rate``.
    steepness:
        Slope of the logistic in 1/feet; larger is a sharper cut-off.
    max_rate:
        Detection probability at zero distance (captures tag/antenna
        losses that no proximity can fix).
    angle_coefficient:
        Penalty per radian of reading angle away from boresight; zero
        disables the angle factor.
    """

    midpoint: float = 12.0
    steepness: float = 0.6
    max_rate: float = 0.95
    angle_coefficient: float = 0.0

    def __post_init__(self) -> None:
        if self.midpoint <= 0:
            raise ValueError("midpoint must be positive")
        if self.steepness <= 0:
            raise ValueError("steepness must be positive")
        if not 0.0 < self.max_rate <= 1.0:
            raise ValueError("max_rate must lie in (0, 1]")
        if self.angle_coefficient < 0:
            raise ValueError("angle_coefficient must be non-negative")

    def probability(self, distance, angle=0.0):
        """Return detection probability for distance (feet) and angle (rad)."""
        distance = np.asarray(distance, dtype=float)
        logit = self.steepness * (self.midpoint - distance) - self.angle_coefficient * np.abs(angle)
        out = self.max_rate / (1.0 + np.exp(-logit))
        return float(out) if out.ndim == 0 else out

    def effective_range(self, threshold: float = 0.02) -> float:
        """Return the distance beyond which detection is below ``threshold``.

        Used to size spatial-index queries: objects farther than this
        from the reader are (almost) never detected, and a non-detection
        carries (almost) no information about them.
        """
        if not 0.0 < threshold < self.max_rate:
            raise ValueError("threshold must lie in (0, max_rate)")
        # Invert the logistic: threshold = max_rate / (1 + exp(-s (m - d)))
        ratio = self.max_rate / threshold - 1.0
        return self.midpoint + math.log(ratio) / self.steepness


@dataclass(frozen=True)
class DetectionObservation:
    """One per-object observation extracted from a reader scan.

    ``detected`` is True when the object's tag id appeared in the scan
    and False when it did not (an informative miss for nearby objects).
    """

    reader_x: float
    reader_y: float
    detected: bool

    @property
    def reader_position(self) -> np.ndarray:
        return np.array([self.reader_x, self.reader_y], dtype=float)


class RFIDObservationModel(ObservationModel):
    """Particle-filter observation model wrapping a :class:`DetectionModel`."""

    def __init__(self, detection: Optional[DetectionModel] = None):
        self.detection = detection or DetectionModel()

    def likelihood(self, states: np.ndarray, observation: DetectionObservation) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        if states.ndim != 2 or states.shape[1] < 2:
            raise ValueError("states must be an (n, d>=2) array of candidate locations")
        deltas = states[:, :2] - observation.reader_position
        distances = np.linalg.norm(deltas, axis=1)
        p_detect = np.asarray(self.detection.probability(distances), dtype=float)
        if observation.detected:
            return p_detect
        return 1.0 - p_detect
