"""Ground-truth warehouse world for the RFID tracking application.

Section 2.1: a storage area contains shelves at known locations and
objects affixed with RFID tags at unknown locations; objects usually
stay on their shelf but occasionally move to another one.  A mobile
reader sweeps the area and produces noisy readings.

Because the paper's real warehouse traces are not available, this
module provides a synthetic but behaviourally equivalent world: it
maintains exact ground-truth object locations (so inference error can
be measured, as in Figure 3), moves objects between shelves with a
configurable rate, and records static attributes (weight, object type)
used by queries Q1 and Q2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import as_rng

__all__ = ["Shelf", "TaggedObject", "WarehouseWorld"]


@dataclass(frozen=True)
class Shelf:
    """A shelf tag at a fixed, known location (a reference object)."""

    shelf_id: str
    x: float
    y: float

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)


@dataclass
class TaggedObject:
    """A tagged object with ground-truth location and static attributes."""

    tag_id: str
    x: float
    y: float
    weight: float = 10.0
    object_type: str = "general"
    home_shelf: Optional[str] = None

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    @property
    def flammable(self) -> bool:
        return self.object_type == "flammable"


class WarehouseWorld:
    """A rectangular storage area with shelves and tagged objects.

    Parameters
    ----------
    width, height:
        Extent of the storage area in feet.
    shelf_grid:
        Number of shelf columns and rows; shelves are placed on a
        regular grid.
    n_objects:
        Number of tagged objects, assigned to shelves round-robin and
        jittered around the shelf location.
    move_rate:
        Expected number of shelf-to-shelf moves per object per second.
    flammable_fraction:
        Fraction of objects whose type is ``"flammable"`` (used by Q2).
    rng:
        Random generator or seed controlling the synthetic layout.
    """

    def __init__(
        self,
        width: float = 100.0,
        height: float = 50.0,
        shelf_grid: Tuple[int, int] = (10, 5),
        n_objects: int = 100,
        move_rate: float = 0.002,
        flammable_fraction: float = 0.2,
        weight_range: Tuple[float, float] = (5.0, 80.0),
        placement_jitter: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ):
        if width <= 0 or height <= 0:
            raise ValueError("warehouse dimensions must be positive")
        if n_objects < 1:
            raise ValueError("the world needs at least one object")
        if not 0.0 <= flammable_fraction <= 1.0:
            raise ValueError("flammable_fraction must lie in [0, 1]")
        self.width = float(width)
        self.height = float(height)
        self.move_rate = float(move_rate)
        self.placement_jitter = float(placement_jitter)
        self._rng = as_rng(rng)

        cols, rows = shelf_grid
        if cols < 1 or rows < 1:
            raise ValueError("shelf grid must have at least one column and one row")
        self.shelves: Dict[str, Shelf] = {}
        xs = np.linspace(width / (2 * cols), width - width / (2 * cols), cols)
        ys = np.linspace(height / (2 * rows), height - height / (2 * rows), rows)
        index = 0
        for yi in ys:
            for xi in xs:
                shelf_id = f"S{index:03d}"
                self.shelves[shelf_id] = Shelf(shelf_id, float(xi), float(yi))
                index += 1

        shelf_ids = list(self.shelves.keys())
        lo_w, hi_w = weight_range
        self.objects: Dict[str, TaggedObject] = {}
        for i in range(n_objects):
            shelf = self.shelves[shelf_ids[i % len(shelf_ids)]]
            jitter = self._rng.normal(0.0, placement_jitter, size=2)
            x = float(np.clip(shelf.x + jitter[0], 0.0, width))
            y = float(np.clip(shelf.y + jitter[1], 0.0, height))
            object_type = "flammable" if self._rng.random() < flammable_fraction else "general"
            self.objects[f"O{i:05d}"] = TaggedObject(
                tag_id=f"O{i:05d}",
                x=x,
                y=y,
                weight=float(self._rng.uniform(lo_w, hi_w)),
                object_type=object_type,
                home_shelf=shelf.shelf_id,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return len(self.objects)

    @property
    def n_shelves(self) -> int:
        return len(self.shelves)

    def object_ids(self) -> List[str]:
        return list(self.objects.keys())

    def shelf_ids(self) -> List[str]:
        return list(self.shelves.keys())

    def true_position(self, tag_id: str) -> np.ndarray:
        """Return the ground-truth position of an object or shelf tag."""
        if tag_id in self.objects:
            return self.objects[tag_id].position
        if tag_id in self.shelves:
            return self.shelves[tag_id].position
        raise KeyError(f"unknown tag {tag_id!r}")

    def shelf_positions(self) -> Dict[str, np.ndarray]:
        return {shelf_id: shelf.position for shelf_id, shelf in self.shelves.items()}

    def bounds(self) -> Tuple[float, float, float, float]:
        """Return ``(x_min, y_min, x_max, y_max)`` of the storage area."""
        return (0.0, 0.0, self.width, self.height)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, dt: float) -> List[str]:
        """Advance ground truth by ``dt`` seconds; return the moved objects.

        Each object moves to a uniformly chosen different shelf with
        probability ``1 - exp(-move_rate * dt)``, landing near the new
        shelf with the same placement jitter used at construction time.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if dt == 0 or self.move_rate == 0:
            return []
        move_probability = 1.0 - math.exp(-self.move_rate * dt)
        shelf_ids = self.shelf_ids()
        moved: List[str] = []
        for obj in self.objects.values():
            if self._rng.random() >= move_probability:
                continue
            candidates = [sid for sid in shelf_ids if sid != obj.home_shelf]
            target = self.shelves[candidates[self._rng.integers(len(candidates))]]
            jitter = self._rng.normal(0.0, self.placement_jitter, size=2)
            obj.x = float(np.clip(target.x + jitter[0], 0.0, self.width))
            obj.y = float(np.clip(target.y + jitter[1], 0.0, self.height))
            obj.home_shelf = target.shelf_id
            moved.append(obj.tag_id)
        return moved
