"""The RFID data capture and transformation (T) operator.

Turns raw mobile-reader readings (tag ids seen at a reader position)
into an object-location tuple stream with quantified uncertainty:

raw ``RFIDReading`` -> particle-filter inference per object ->
particle-cloud compression (Gaussian / mixture, Section 4.3) ->
``StreamTuple`` carrying the location distribution.

The operator owns a :class:`FactorizedParticleFilter` configured with
the paper's optimisations (factorisation, spatial indexing, particle
compression) and optionally an adaptive particle-count controller fed
by reference shelf tags (Section 4.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.transform import CompressionPolicy, TransformOperator
from repro.distributions import ParticleDistribution
from repro.inference import (
    CompressionConfig,
    FactorizedParticleFilter,
    ParticleCountController,
    ReferenceAccuracyMonitor,
)
from repro.streams.tuples import StreamTuple

from .motion_model import build_object_model
from .sensor_model import DetectionModel, DetectionObservation
from .simulator import RFIDReading
from .world import WarehouseWorld

__all__ = ["RFIDTransformOperator"]


class RFIDTransformOperator(TransformOperator):
    """T operator transforming RFID readings into location tuples with pdfs.

    Parameters
    ----------
    world:
        The warehouse layout.  Only the *known* facts are used for
        inference: the area bounds, the object ids (what tags exist),
        and the shelf-tag locations (the reference objects); ground-truth
        object locations are never read.
    detection:
        The sensing model assumed by inference.
    n_particles:
        Particles per tracked object.
    use_spatial_index / use_compression:
        Enable/disable the optimisations of Section 4.1 (exposed so the
        ablation benchmark can toggle them).
    emit_mode:
        ``"detected"`` emits one tuple per detected object per scan,
        ``"candidates"`` one per object whose filter was touched,
        ``"none"`` suppresses emission (pure inference, used when only
        the posteriors are needed).
    compression:
        Tuple-level compression policy (Section 4.3) applied to the
        particle clouds before emission.
    adaptive_controller:
        Optional particle-count controller driven by shelf-tag accuracy.
    rng:
        Random generator or seed.
    """

    def __init__(
        self,
        world: WarehouseWorld,
        detection: Optional[DetectionModel] = None,
        n_particles: int = 100,
        use_spatial_index: bool = True,
        use_compression: bool = True,
        walk_sigma: float = 0.2,
        jump_rate: float = 0.002,
        emit_mode: str = "detected",
        compression: Optional[CompressionPolicy] = None,
        adaptive_controller: Optional[ParticleCountController] = None,
        track_reference_tags: bool = False,
        rng=None,
        name: Optional[str] = None,
    ):
        super().__init__(compression=compression, raw_attribute="reading", name=name)
        if emit_mode not in ("detected", "candidates", "none"):
            raise ValueError(f"unknown emit_mode {emit_mode!r}")
        self.world = world
        self.detection = detection or DetectionModel()
        self.emit_mode = emit_mode
        self.adaptive_controller = adaptive_controller
        self.track_reference_tags = track_reference_tags
        self._rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

        bounds = world.bounds()
        self._model = build_object_model(
            bounds, detection=self.detection, walk_sigma=walk_sigma, jump_rate=jump_rate
        )
        sensing_range = self.detection.effective_range()
        self.filter = FactorizedParticleFilter(
            n_particles=n_particles,
            use_spatial_index=use_spatial_index,
            index_cell_size=max(sensing_range, 1.0),
            compression=CompressionConfig() if use_compression else None,
            rng=self._rng,
        )
        for tag_id in world.object_ids():
            self.filter.add_variable(tag_id, self._model)
        self._reference_ids: List[str] = []
        self.accuracy_monitor: Optional[ReferenceAccuracyMonitor] = None
        if track_reference_tags:
            self._reference_ids = world.shelf_ids()
            for shelf_id in self._reference_ids:
                self.filter.add_variable(shelf_id, self._model)
            self.accuracy_monitor = ReferenceAccuracyMonitor(
                {shelf_id: world.shelves[shelf_id].position for shelf_id in self._reference_ids}
            )
        self._sensing_range = sensing_range
        self._last_timestamp: Optional[float] = None
        #: Cumulative number of readings processed (diagnostic).
        self.readings_processed = 0

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _process_reading(self, reading: RFIDReading) -> List[str]:
        dt = 0.0
        if self._last_timestamp is not None:
            dt = max(reading.timestamp - self._last_timestamp, 0.0)
        self._last_timestamp = reading.timestamp

        detected = set(reading.detected_object_ids)
        if self.track_reference_tags:
            detected |= set(reading.detected_shelf_ids)

        def observation_for(tag_id) -> DetectionObservation:
            return DetectionObservation(
                reader_x=reading.reader_x,
                reader_y=reading.reader_y,
                detected=tag_id in detected,
            )

        region = (reading.reader_x, reading.reader_y, self._sensing_range)
        # Detected objects must be processed even if the index had them
        # registered far away (e.g. they just moved); merge both sets.
        candidates = set(self.filter.candidates(region)) | {
            tag_id for tag_id in detected if tag_id in set(self.filter.variables())
        }
        processed: List[str] = []
        for tag_id in sorted(candidates):
            pf = self.filter.filter_for(tag_id)
            pf.predict(dt)
            pf.update(observation_for(tag_id))
            self.filter.updates_performed += 1
            self.filter._after_update(tag_id, pf)
            processed.append(tag_id)

        self.readings_processed += 1
        self._update_reference_accuracy(reading)
        return processed

    def _update_reference_accuracy(self, reading: RFIDReading) -> None:
        if self.accuracy_monitor is None:
            return
        for shelf_id in reading.detected_shelf_ids:
            if shelf_id in set(self.filter.variables()):
                estimate = self.filter.estimate(shelf_id)
                self.accuracy_monitor.record_estimate(shelf_id, estimate)
        if self.adaptive_controller is not None:
            new_count = self.adaptive_controller.observe(self.accuracy_monitor.current_error())
            for tag_id in self.filter.variables():
                pf = self.filter.filter_for(tag_id)
                if pf.n_particles != new_count:
                    pf.set_particle_count(new_count)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def transform(self, observation: RFIDReading, timestamp: float) -> Iterable[StreamTuple]:
        processed = self._process_reading(observation)
        if self.emit_mode == "none":
            return
        if self.emit_mode == "detected":
            to_emit = [tag for tag in observation.detected_object_ids if tag in set(processed)]
        else:
            to_emit = [tag for tag in processed if tag in self.world.objects]
        for tag_id in to_emit:
            yield self._make_tuple(tag_id, observation.timestamp)

    def _make_tuple(self, tag_id: str, timestamp: float) -> StreamTuple:
        pf = self.filter.filter_for(tag_id)
        x_particles = ParticleDistribution(pf.particles[:, 0], pf.weights)
        y_particles = ParticleDistribution(pf.particles[:, 1], pf.weights)
        x_dist = self.compression.compress(x_particles, rng=self._rng)
        y_dist = self.compression.compress(y_particles, rng=self._rng)
        return StreamTuple(
            timestamp=timestamp,
            values={"tag_id": tag_id},
            uncertain={"x": x_dist, "y": y_dist},
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def location_error(self, tag_id: str) -> float:
        """Return the current XY-plane estimation error against ground truth.

        Only used by benchmarks and tests (the ground truth is known to
        the simulator, not to the operator's inference path).
        """
        estimate = self.filter.estimate(tag_id)
        truth = self.world.true_position(tag_id)
        return float(np.linalg.norm(estimate[:2] - truth))

    def mean_location_error(self, tag_ids: Optional[Sequence[str]] = None) -> float:
        """Return the mean XY-plane error over ``tag_ids`` (default: all objects)."""
        ids = list(tag_ids) if tag_ids is not None else self.world.object_ids()
        if not ids:
            raise ValueError("no objects to evaluate")
        return float(np.mean([self.location_error(tag_id) for tag_id in ids]))
