"""Mobile-reader trace simulator for the RFID application.

Because the paper's warehouse traces are unavailable, this simulator
produces behaviourally equivalent raw streams: a mobile reader sweeps
the storage area along a lawnmower path and, at each scan, reports the
tag ids it happened to detect -- object tags and shelf (reference) tags
alike -- according to the logistic detection model.  The ground truth
stays inside the simulator, which is what lets benchmarks measure
inference error exactly (Figure 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import as_rng

from .sensor_model import DetectionModel
from .world import WarehouseWorld

__all__ = ["RFIDReading", "MobileReaderSimulator", "lawnmower_path"]


@dataclass(frozen=True)
class RFIDReading:
    """One scan of the mobile reader: what the device actually outputs."""

    timestamp: float
    reader_x: float
    reader_y: float
    detected_object_ids: Tuple[str, ...]
    detected_shelf_ids: Tuple[str, ...]

    @property
    def reader_position(self) -> np.ndarray:
        return np.array([self.reader_x, self.reader_y], dtype=float)

    @property
    def n_detections(self) -> int:
        return len(self.detected_object_ids) + len(self.detected_shelf_ids)


def lawnmower_path(
    bounds: Tuple[float, float, float, float],
    lane_spacing: float,
    speed: float,
    scan_interval: float,
) -> Iterator[Tuple[float, float, float]]:
    """Yield ``(timestamp, x, y)`` scan points along a lawnmower sweep.

    The reader moves at ``speed`` feet/second along horizontal lanes
    spaced ``lane_spacing`` feet apart, scanning every ``scan_interval``
    seconds, and restarts the sweep when it reaches the last lane.
    """
    if lane_spacing <= 0 or speed <= 0 or scan_interval <= 0:
        raise ValueError("lane_spacing, speed and scan_interval must be positive")
    x_min, y_min, x_max, y_max = bounds
    lanes = max(int(math.floor((y_max - y_min) / lane_spacing)) + 1, 1)
    step = speed * scan_interval
    timestamp = 0.0
    while True:
        for lane in range(lanes):
            y = min(y_min + lane * lane_spacing, y_max)
            xs = np.arange(x_min, x_max + step, step)
            if lane % 2 == 1:
                xs = xs[::-1]
            for x in xs:
                yield (timestamp, float(np.clip(x, x_min, x_max)), float(y))
                timestamp += scan_interval


class MobileReaderSimulator:
    """Generates noisy RFID readings from a ground-truth warehouse world.

    Parameters
    ----------
    world:
        The ground-truth world (objects, shelves, motion).
    detection:
        Detection model shared with the inference side.  Using the same
        model for generation and inference isolates the error measured
        in Figure 3 to the sampling approximation, mirroring how the
        paper calibrates against a known trace.
    lane_spacing / speed / scan_interval:
        Reader sweep parameters.
    evolve_world:
        Whether ground truth moves between scans (objects changing
        shelves).
    read_capacity:
        Optional tag-contention model: when more than this many tags are
        within the reader's effective range, every tag's detection
        probability is scaled down proportionally ("contention among
        tags" in Section 2.1).  ``None`` disables contention.  The
        inference side does not know about contention, so denser
        deployments are genuinely harder -- the effect Figure 3(a)
        measures as error growing with the number of objects.
    rng:
        Random generator or seed for detection noise.
    """

    def __init__(
        self,
        world: WarehouseWorld,
        detection: Optional[DetectionModel] = None,
        lane_spacing: float = 10.0,
        speed: float = 4.0,
        scan_interval: float = 0.5,
        evolve_world: bool = True,
        read_capacity: Optional[int] = None,
        rng: np.random.Generator | int | None = None,
    ):
        if read_capacity is not None and read_capacity < 1:
            raise ValueError("read_capacity must be at least 1 when given")
        self.world = world
        self.detection = detection or DetectionModel()
        self.lane_spacing = lane_spacing
        self.speed = speed
        self.scan_interval = scan_interval
        self.evolve_world = evolve_world
        self.read_capacity = read_capacity
        self._rng = as_rng(rng)
        self._path = lawnmower_path(world.bounds(), lane_spacing, speed, scan_interval)
        self._last_timestamp: Optional[float] = None
        self._effective_range = self.detection.effective_range()

    def _contention_factor(self, reader: np.ndarray) -> float:
        """Return the detection-probability scaling due to tag contention."""
        if self.read_capacity is None:
            return 1.0
        positions = [obj.position for obj in self.world.objects.values()]
        positions += [shelf.position for shelf in self.world.shelves.values()]
        stacked = np.vstack(positions)
        in_range = int(np.count_nonzero(np.linalg.norm(stacked - reader, axis=1) <= self._effective_range))
        if in_range <= self.read_capacity:
            return 1.0
        return self.read_capacity / float(in_range)

    def _detect(self, reader: np.ndarray, position: np.ndarray, factor: float) -> bool:
        distance = float(np.linalg.norm(position - reader))
        return bool(self._rng.random() < factor * self.detection.probability(distance))

    def next_reading(self) -> RFIDReading:
        """Advance the reader by one scan and return the resulting reading."""
        timestamp, x, y = next(self._path)
        if self.evolve_world and self._last_timestamp is not None:
            self.world.step(timestamp - self._last_timestamp)
        self._last_timestamp = timestamp
        reader = np.array([x, y])
        factor = self._contention_factor(reader)
        detected_objects = tuple(
            obj.tag_id
            for obj in self.world.objects.values()
            if self._detect(reader, obj.position, factor)
        )
        detected_shelves = tuple(
            shelf.shelf_id
            for shelf in self.world.shelves.values()
            if self._detect(reader, shelf.position, factor)
        )
        return RFIDReading(
            timestamp=timestamp,
            reader_x=x,
            reader_y=y,
            detected_object_ids=detected_objects,
            detected_shelf_ids=detected_shelves,
        )

    def readings(self, count: int) -> List[RFIDReading]:
        """Return the next ``count`` readings."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.next_reading() for _ in range(count)]

    def __iter__(self) -> Iterator[RFIDReading]:
        while True:
            yield self.next_reading()
