"""Grid-based spatial index over tracked objects.

The paper's second particle-filter optimisation: "spatial indexing can
further limit the set of variables that must be processed at each time
step, since a reader can only observe a small set of objects at a
time."  The index maps each tracked object's current location estimate
to a grid cell and answers range queries around the reader position, so
the filter only updates objects that could plausibly have generated (or
failed to generate) a reading.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["GridIndex"]

Cell = Tuple[int, int]


class GridIndex:
    """A uniform 2-D grid index of object identifiers.

    Parameters
    ----------
    cell_size:
        Side length of a grid cell, in the same units as coordinates
        (feet in the RFID application).  Choosing it close to the reader
        range keeps range queries to a handful of cells.
    """

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cell_of: Dict[object, Cell] = {}
        self._members: Dict[Cell, Set[object]] = {}

    def _cell(self, x: float, y: float) -> Cell:
        return (int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size)))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def update(self, object_id, x: float, y: float) -> None:
        """Insert or move an object to the cell containing ``(x, y)``."""
        new_cell = self._cell(x, y)
        old_cell = self._cell_of.get(object_id)
        if old_cell == new_cell:
            return
        if old_cell is not None:
            members = self._members.get(old_cell)
            if members is not None:
                members.discard(object_id)
                if not members:
                    del self._members[old_cell]
        self._cell_of[object_id] = new_cell
        self._members.setdefault(new_cell, set()).add(object_id)

    def remove(self, object_id) -> None:
        """Remove an object from the index (no-op if absent)."""
        cell = self._cell_of.pop(object_id, None)
        if cell is None:
            return
        members = self._members.get(cell)
        if members is not None:
            members.discard(object_id)
            if not members:
                del self._members[cell]

    def __len__(self) -> int:
        return len(self._cell_of)

    def __contains__(self, object_id) -> bool:
        return object_id in self._cell_of

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_radius(self, x: float, y: float, radius: float) -> List[object]:
        """Return objects whose indexed cell intersects the query disc.

        The answer is conservative (a superset of the objects truly
        within ``radius``): candidates are every object registered in a
        cell overlapping the bounding square of the disc.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        min_cx, min_cy = self._cell(x - radius, y - radius)
        max_cx, max_cy = self._cell(x + radius, y + radius)
        found: List[object] = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                members = self._members.get((cx, cy))
                if members:
                    found.extend(members)
        return found

    def all_objects(self) -> List[object]:
        """Return every indexed object id."""
        return list(self._cell_of.keys())

    def cell_count(self) -> int:
        """Return the number of non-empty cells (diagnostic)."""
        return len(self._members)
