"""Resampling schemes and effective-sample-size diagnostics for particle filters."""

from __future__ import annotations

import numpy as np

from repro.distributions import DistributionError, normalize_weights

__all__ = [
    "effective_sample_size",
    "systematic_resample",
    "stratified_resample",
    "multinomial_resample",
    "residual_resample",
]


def effective_sample_size(weights: np.ndarray) -> float:
    """Return ``1 / sum(w_i^2)`` for normalised weights.

    The ESS measures how many particles are effectively contributing;
    filters resample when it falls below a fraction of the particle
    count.
    """
    w = normalize_weights(weights)
    return float(1.0 / np.sum(w ** 2))


def _check_count(n: int) -> None:
    if n < 1:
        raise ValueError("resample count must be at least 1")


def systematic_resample(weights: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    """Systematic resampling: one random offset, evenly spaced positions.

    Lowest variance of the classical schemes and O(n); the default used
    by the RFID particle filter.
    """
    _check_count(n)
    w = normalize_weights(weights)
    positions = (rng.random() + np.arange(n)) / n
    cumulative = np.cumsum(w)
    cumulative[-1] = 1.0
    return np.searchsorted(cumulative, positions)


def stratified_resample(weights: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    """Stratified resampling: one uniform draw per stratum."""
    _check_count(n)
    w = normalize_weights(weights)
    positions = (rng.random(n) + np.arange(n)) / n
    cumulative = np.cumsum(w)
    cumulative[-1] = 1.0
    return np.searchsorted(cumulative, positions)


def multinomial_resample(weights: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    """Plain multinomial resampling (highest variance, simplest)."""
    _check_count(n)
    w = normalize_weights(weights)
    return rng.choice(w.size, size=n, p=w)


def residual_resample(weights: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    """Residual resampling: deterministic copies plus multinomial residuals."""
    _check_count(n)
    w = normalize_weights(weights)
    counts = np.floor(n * w).astype(int)
    indices = np.repeat(np.arange(w.size), counts)
    remaining = n - indices.size
    if remaining > 0:
        residuals = n * w - counts
        total = residuals.sum()
        if total <= 0:
            extra = rng.choice(w.size, size=remaining)
        else:
            extra = rng.choice(w.size, size=remaining, p=residuals / total)
        indices = np.concatenate([indices, extra])
    return indices
