"""Linear-Gaussian Kalman filtering and smoothing.

The related-work systems the paper compares against use Kalman filters
to clean GPS-style readings.  We provide a standard implementation both
as a baseline T-operator technique for linear-Gaussian sensors and as a
correctness oracle for the particle filter on linear-Gaussian problems
(where the Kalman filter is exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import MultivariateGaussian

__all__ = ["KalmanFilter", "KalmanState"]


@dataclass(frozen=True)
class KalmanState:
    """Posterior mean and covariance after one filtering step."""

    mean: np.ndarray
    covariance: np.ndarray

    def as_distribution(self) -> MultivariateGaussian:
        return MultivariateGaussian(self.mean, self.covariance)


class KalmanFilter:
    """A discrete-time Kalman filter ``x' = F x + w``, ``z = H x + v``.

    Parameters
    ----------
    transition:
        State transition matrix ``F`` (d x d).
    observation:
        Observation matrix ``H`` (m x d).
    process_noise:
        Process noise covariance ``Q`` (d x d).
    observation_noise:
        Observation noise covariance ``R`` (m x m).
    initial_mean / initial_covariance:
        Prior state distribution.
    """

    def __init__(
        self,
        transition: Sequence[Sequence[float]],
        observation: Sequence[Sequence[float]],
        process_noise: Sequence[Sequence[float]],
        observation_noise: Sequence[Sequence[float]],
        initial_mean: Sequence[float],
        initial_covariance: Sequence[Sequence[float]],
    ):
        self.F = np.asarray(transition, dtype=float)
        self.H = np.asarray(observation, dtype=float)
        self.Q = np.asarray(process_noise, dtype=float)
        self.R = np.asarray(observation_noise, dtype=float)
        self.mean = np.asarray(initial_mean, dtype=float)
        self.covariance = np.asarray(initial_covariance, dtype=float)
        d = self.mean.size
        if self.F.shape != (d, d):
            raise ValueError(f"transition matrix must be {d}x{d}")
        if self.Q.shape != (d, d):
            raise ValueError(f"process noise must be {d}x{d}")
        m = self.H.shape[0]
        if self.H.shape != (m, d):
            raise ValueError("observation matrix has inconsistent shape")
        if self.R.shape != (m, m):
            raise ValueError(f"observation noise must be {m}x{m}")
        if self.covariance.shape != (d, d):
            raise ValueError(f"initial covariance must be {d}x{d}")

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def predict(self) -> KalmanState:
        """Propagate the state estimate one step forward."""
        self.mean = self.F @ self.mean
        self.covariance = self.F @ self.covariance @ self.F.T + self.Q
        return KalmanState(self.mean.copy(), self.covariance.copy())

    def update(self, measurement: Sequence[float]) -> KalmanState:
        """Incorporate one measurement."""
        z = np.asarray(measurement, dtype=float)
        innovation = z - self.H @ self.mean
        S = self.H @ self.covariance @ self.H.T + self.R
        K = self.covariance @ self.H.T @ np.linalg.inv(S)
        self.mean = self.mean + K @ innovation
        identity = np.eye(self.mean.size)
        self.covariance = (identity - K @ self.H) @ self.covariance
        # Symmetrise to fight numerical drift.
        self.covariance = 0.5 * (self.covariance + self.covariance.T)
        return KalmanState(self.mean.copy(), self.covariance.copy())

    def step(self, measurement: Optional[Sequence[float]]) -> KalmanState:
        """Predict and, if a measurement is available, update."""
        state = self.predict()
        if measurement is not None:
            state = self.update(measurement)
        return state

    def filter_sequence(
        self, measurements: Sequence[Optional[Sequence[float]]]
    ) -> List[KalmanState]:
        """Run the filter over a sequence of (possibly missing) measurements."""
        return [self.step(m) for m in measurements]

    def posterior(self) -> MultivariateGaussian:
        """Return the current posterior as a multivariate Gaussian."""
        return MultivariateGaussian(self.mean, self.covariance)
