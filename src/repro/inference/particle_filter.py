"""Particle filtering with the paper's stream-speed optimisations.

Section 4.1 describes sampling-based inference for the RFID T operator
and three optimisations that take it from 0.1 readings/second for 20
objects to over 1000 readings/second for 20 000 objects:

* **Factorisation** -- instead of one particle set over the joint state
  of all objects, keep an independent particle set per object (valid
  because object locations are conditionally independent given the
  reader trajectory).  :class:`FactorizedParticleFilter`.
* **Spatial indexing** -- only the objects near the reader can produce
  (or suppress) a reading, so only their filters need to be touched for
  each event.  Backed by :class:`repro.inference.spatial_index.GridIndex`.
* **Compression** -- once an object's particle cloud has stabilised in
  a small region, fewer particles suffice; the filter shrinks the cloud.

A joint (non-factorised) filter is also provided as the ablation
baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import (
    MultivariateGaussian,
    ParticleDistribution,
    as_rng,
    fit_multivariate_gaussian,
)

from .graphical_model import StateSpaceModel
from .resampling import effective_sample_size, systematic_resample
from .spatial_index import GridIndex

__all__ = [
    "CompressionConfig",
    "ParticleFilter",
    "FactorizedParticleFilter",
    "JointParticleFilter",
]


@dataclass(frozen=True)
class CompressionConfig:
    """Particle-cloud compression policy (Section 4.1, third optimisation).

    When the largest per-dimension standard deviation of a variable's
    particle cloud drops below ``stability_threshold``, the cloud is
    resampled down to ``compressed_count`` particles.  If it later grows
    above ``expansion_threshold`` (e.g. the object moved), the cloud is
    re-expanded to the filter's full particle count.
    """

    stability_threshold: float = 0.5
    compressed_count: int = 25
    expansion_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.stability_threshold <= 0:
            raise ValueError("stability_threshold must be positive")
        if self.compressed_count < 2:
            raise ValueError("compressed_count must be at least 2")
        if self.expansion_threshold <= self.stability_threshold:
            raise ValueError("expansion_threshold must exceed stability_threshold")


class ParticleFilter:
    """A bootstrap particle filter over one hidden variable.

    Particles are stored as an ``(n, d)`` array with a parallel weight
    vector.  The filter follows the usual predict / update / resample
    cycle; resampling is triggered when the effective sample size drops
    below ``resample_fraction * n``.
    """

    def __init__(
        self,
        model: StateSpaceModel,
        n_particles: int = 100,
        resample_fraction: float = 0.5,
        rng: np.random.Generator | int | None = None,
    ):
        if n_particles < 2:
            raise ValueError("n_particles must be at least 2")
        if not 0.0 < resample_fraction <= 1.0:
            raise ValueError("resample_fraction must lie in (0, 1]")
        self.model = model
        self.resample_fraction = resample_fraction
        self._rng = as_rng(rng)
        self.particles = model.sample_prior(n_particles, self._rng)
        self.weights = np.full(n_particles, 1.0 / n_particles)
        self.full_particle_count = n_particles

    # ------------------------------------------------------------------
    # Filtering cycle
    # ------------------------------------------------------------------
    @property
    def n_particles(self) -> int:
        return int(self.particles.shape[0])

    def predict(self, dt: float) -> None:
        """Propagate every particle through the transition model."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if dt == 0:
            return
        self.particles = np.asarray(
            self.model.transition.propagate(self.particles, dt, self._rng), dtype=float
        )

    def update(self, observation) -> float:
        """Reweight particles with the observation likelihood.

        Returns the (pre-normalisation) average likelihood, a proxy for
        how well the observation was explained.  If every particle has
        zero likelihood the weights are reset to uniform, which keeps
        the filter alive under severely conflicting evidence.
        """
        likelihood = np.asarray(
            self.model.observation.likelihood(self.particles, observation), dtype=float
        )
        likelihood = np.maximum(likelihood, 0.0)
        evidence = float(np.dot(self.weights, likelihood))
        raw = self.weights * likelihood
        total = raw.sum()
        if total <= 0.0 or not np.isfinite(total):
            self.weights = np.full(self.n_particles, 1.0 / self.n_particles)
        else:
            self.weights = raw / total
        if effective_sample_size(self.weights) < self.resample_fraction * self.n_particles:
            self.resample()
        return evidence

    def resample(self, size: Optional[int] = None) -> None:
        """Systematically resample to ``size`` (default: current count)."""
        n = size if size is not None else self.n_particles
        idx = systematic_resample(self.weights, n, self._rng)
        self.particles = self.particles[idx]
        self.weights = np.full(n, 1.0 / n)

    # ------------------------------------------------------------------
    # Posterior access
    # ------------------------------------------------------------------
    def estimate(self) -> np.ndarray:
        """Return the weighted-mean state estimate."""
        return self.weights @ self.particles

    def spread(self) -> np.ndarray:
        """Return the per-dimension weighted standard deviation."""
        mean = self.estimate()
        var = self.weights @ (self.particles - mean) ** 2
        return np.sqrt(np.maximum(var, 0.0))

    def marginal(self, dimension: int) -> ParticleDistribution:
        """Return the weighted-sample marginal of one state dimension."""
        if not 0 <= dimension < self.particles.shape[1]:
            raise IndexError(f"dimension {dimension} out of range")
        return ParticleDistribution(self.particles[:, dimension], self.weights)

    def posterior_gaussian(self) -> MultivariateGaussian:
        """Return the KL-optimal multivariate Gaussian fit of the cloud."""
        return fit_multivariate_gaussian(self.particles, self.weights)

    def set_particle_count(self, n: int) -> None:
        """Resample the cloud to exactly ``n`` particles."""
        if n < 2:
            raise ValueError("particle count must be at least 2")
        self.resample(size=n)


class FactorizedParticleFilter:
    """Per-variable particle filters with spatial indexing and compression.

    Parameters
    ----------
    n_particles:
        Particle budget per variable (before compression).
    use_spatial_index / index_cell_size:
        Enable the spatial-index optimisation; the cell size should be
        on the order of the sensing range.
    compression:
        Optional :class:`CompressionConfig` enabling cloud compression.
    resample_fraction:
        ESS fraction below which a variable's cloud is resampled.
    rng:
        Shared random generator or seed.
    """

    def __init__(
        self,
        n_particles: int = 100,
        use_spatial_index: bool = True,
        index_cell_size: float = 10.0,
        compression: Optional[CompressionConfig] = None,
        resample_fraction: float = 0.5,
        rng: np.random.Generator | int | None = None,
    ):
        if n_particles < 2:
            raise ValueError("n_particles must be at least 2")
        self.n_particles = n_particles
        self.resample_fraction = resample_fraction
        self.compression = compression
        self._rng = as_rng(rng)
        self._filters: Dict[object, ParticleFilter] = {}
        self._index: Optional[GridIndex] = GridIndex(index_cell_size) if use_spatial_index else None
        #: Number of per-variable filter updates performed (diagnostic for
        #: measuring how much work the spatial index saves).
        self.updates_performed = 0

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def add_variable(self, var_id, model: StateSpaceModel) -> None:
        """Register a hidden variable (e.g. one tagged object)."""
        if var_id in self._filters:
            raise ValueError(f"variable {var_id!r} already tracked")
        pf = ParticleFilter(
            model,
            n_particles=self.n_particles,
            resample_fraction=self.resample_fraction,
            rng=self._rng,
        )
        self._filters[var_id] = pf
        if self._index is not None:
            est = pf.estimate()
            self._index.update(var_id, float(est[0]), float(est[1]))

    def variables(self) -> List[object]:
        return list(self._filters.keys())

    def filter_for(self, var_id) -> ParticleFilter:
        return self._filters[var_id]

    def __len__(self) -> int:
        return len(self._filters)

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def candidates(self, region: Optional[Tuple[float, float, float]]) -> List[object]:
        """Return the variables that must be processed for an event.

        ``region`` is ``(x, y, radius)`` around the sensing device; when
        the spatial index is disabled (or no region is given) every
        variable is a candidate, which is exactly the work the index
        optimisation avoids.
        """
        if region is None or self._index is None:
            return self.variables()
        x, y, radius = region
        in_range = self._index.query_radius(x, y, radius)
        return [var_id for var_id in in_range if var_id in self._filters]

    def step(
        self,
        dt: float,
        observation_for: Callable[[object], Optional[object]],
        region: Optional[Tuple[float, float, float]] = None,
    ) -> List[object]:
        """Advance the filters affected by one sensing event.

        Every candidate variable is propagated by ``dt`` and, when
        ``observation_for`` returns a non-None observation for it,
        reweighted with that observation (which may represent either a
        detection or an informative non-detection).  Returns the list of
        variables processed.
        """
        processed = []
        for var_id in self.candidates(region):
            pf = self._filters[var_id]
            pf.predict(dt)
            observation = observation_for(var_id)
            if observation is not None:
                pf.update(observation)
                self.updates_performed += 1
            self._after_update(var_id, pf)
            processed.append(var_id)
        return processed

    def _after_update(self, var_id, pf: ParticleFilter) -> None:
        if self._index is not None:
            est = pf.estimate()
            self._index.update(var_id, float(est[0]), float(est[1]))
        if self.compression is None:
            return
        spread = float(np.max(pf.spread()))
        if spread < self.compression.stability_threshold and pf.n_particles > self.compression.compressed_count:
            pf.resample(size=self.compression.compressed_count)
        elif spread > self.compression.expansion_threshold and pf.n_particles < self.full_particle_count:
            pf.resample(size=self.full_particle_count)

    @property
    def full_particle_count(self) -> int:
        return self.n_particles

    # ------------------------------------------------------------------
    # Posterior access
    # ------------------------------------------------------------------
    def estimate(self, var_id) -> np.ndarray:
        return self._filters[var_id].estimate()

    def posterior_gaussian(self, var_id) -> MultivariateGaussian:
        return self._filters[var_id].posterior_gaussian()

    def marginal(self, var_id, dimension: int) -> ParticleDistribution:
        return self._filters[var_id].marginal(dimension)

    def total_particles(self) -> int:
        """Return the total number of particles across all variables."""
        return sum(pf.n_particles for pf in self._filters.values())


class JointParticleFilter:
    """A non-factorised filter over the concatenated state of all variables.

    This is the ablation baseline: a single particle set over the joint
    state space.  Each particle stores every variable's state, so the
    number of particles needed to cover the joint space grows quickly
    with the number of variables (the paper's "worst case of an
    exponential number of particles"), and each event touches every
    variable's coordinates.
    """

    def __init__(
        self,
        n_particles: int = 200,
        resample_fraction: float = 0.5,
        rng: np.random.Generator | int | None = None,
    ):
        if n_particles < 2:
            raise ValueError("n_particles must be at least 2")
        self.n_particles = n_particles
        self.resample_fraction = resample_fraction
        self._rng = as_rng(rng)
        self._models: Dict[object, StateSpaceModel] = {}
        self._order: List[object] = []
        self._particles: Optional[np.ndarray] = None  # (n, total_dim)
        self.weights = np.full(n_particles, 1.0 / n_particles)

    def add_variable(self, var_id, model: StateSpaceModel) -> None:
        if var_id in self._models:
            raise ValueError(f"variable {var_id!r} already tracked")
        self._models[var_id] = model
        self._order.append(var_id)
        prior = model.sample_prior(self.n_particles, self._rng)
        if self._particles is None:
            self._particles = prior
        else:
            self._particles = np.hstack([self._particles, prior])

    def _slice(self, var_id) -> slice:
        offset = 0
        for vid in self._order:
            dim = self._models[vid].state_dim
            if vid == var_id:
                return slice(offset, offset + dim)
            offset += dim
        raise KeyError(f"unknown variable {var_id!r}")

    def step(
        self,
        dt: float,
        observation_for: Callable[[object], Optional[object]],
        region: Optional[Tuple[float, float, float]] = None,
    ) -> List[object]:
        """Advance the joint filter by one event (all variables touched)."""
        if self._particles is None:
            return []
        log_likelihood = np.zeros(self.n_particles)
        for var_id in self._order:
            model = self._models[var_id]
            block = self._slice(var_id)
            states = self._particles[:, block]
            if dt > 0:
                states = np.asarray(model.transition.propagate(states, dt, self._rng), dtype=float)
                self._particles[:, block] = states
            observation = observation_for(var_id)
            if observation is not None:
                likelihood = np.maximum(
                    np.asarray(model.observation.likelihood(states, observation), dtype=float), 1e-300
                )
                log_likelihood += np.log(likelihood)
        weights = self.weights * np.exp(log_likelihood - log_likelihood.max())
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            self.weights = np.full(self.n_particles, 1.0 / self.n_particles)
        else:
            self.weights = weights / total
        if effective_sample_size(self.weights) < self.resample_fraction * self.n_particles:
            idx = systematic_resample(self.weights, self.n_particles, self._rng)
            self._particles = self._particles[idx]
            self.weights = np.full(self.n_particles, 1.0 / self.n_particles)
        return list(self._order)

    def estimate(self, var_id) -> np.ndarray:
        if self._particles is None:
            raise KeyError("no variables tracked")
        block = self._slice(var_id)
        return self.weights @ self._particles[:, block]

    def variables(self) -> List[object]:
        return list(self._order)
