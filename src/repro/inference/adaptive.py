"""Feedback control of the particle count (speed/accuracy trade-off).

Section 4.2: sampling-based inference trades accuracy against CPU time
through the number of particles.  The paper measures inference accuracy
*online* using reference objects whose true state is known (shelf tags
at fixed, known locations) and adjusts the particle count with a simple
feedback scheme: start small, keep doubling until the accuracy
requirement is met, then walk the count back down by a constant step
until the smallest sufficient count is found.

:class:`ParticleCountController` implements that scheme, and
:class:`ReferenceAccuracyMonitor` computes the accuracy signal from
reference objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ReferenceAccuracyMonitor", "ParticleCountController"]


class ReferenceAccuracyMonitor:
    """Tracks inference error on reference objects with known ground truth.

    The RFID application conceptually replicates each shelf tag's node
    in the graphical model: one copy is evidence, the other is hidden
    and estimated like any object.  Comparing the estimate with the
    known location yields a running accuracy measurement.
    """

    def __init__(self, true_positions: Mapping[object, Sequence[float]], window: int = 50):
        if not true_positions:
            raise ValueError("at least one reference object is required")
        if window < 1:
            raise ValueError("window must be at least 1")
        self._truth = {key: np.asarray(value, dtype=float) for key, value in true_positions.items()}
        self._window = window
        self._errors: List[float] = []

    @property
    def reference_ids(self) -> List[object]:
        return list(self._truth.keys())

    def record_estimate(self, reference_id, estimate: Sequence[float]) -> float:
        """Record an estimate for one reference object; return its error."""
        truth = self._truth.get(reference_id)
        if truth is None:
            raise KeyError(f"unknown reference object {reference_id!r}")
        estimate = np.asarray(estimate, dtype=float)
        error = float(np.linalg.norm(estimate - truth))
        self._errors.append(error)
        if len(self._errors) > self._window:
            self._errors = self._errors[-self._window :]
        return error

    def current_error(self) -> Optional[float]:
        """Return the windowed mean error, or None before any estimate."""
        if not self._errors:
            return None
        return float(np.mean(self._errors))

    def reset(self) -> None:
        self._errors.clear()


@dataclass
class ParticleCountController:
    """Feedback controller for the per-object particle count.

    Parameters
    ----------
    target_error:
        Accuracy requirement (same units as the monitor's error, e.g.
        feet of location error).
    initial_count / min_count / max_count:
        Particle-count bounds.
    decrease_step:
        Constant subtracted while walking the count back down once the
        accuracy requirement has been met.
    """

    target_error: float
    initial_count: int = 25
    min_count: int = 10
    max_count: int = 3200
    decrease_step: int = 10
    _count: int = field(init=False)
    _phase: str = field(init=False, default="doubling")
    _last_good: Optional[int] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.target_error <= 0:
            raise ValueError("target_error must be positive")
        if not (0 < self.min_count <= self.initial_count <= self.max_count):
            raise ValueError("particle-count bounds must satisfy 0 < min <= initial <= max")
        if self.decrease_step < 1:
            raise ValueError("decrease_step must be at least 1")
        self._count = self.initial_count

    @property
    def count(self) -> int:
        """Return the particle count the filter should currently use."""
        return self._count

    @property
    def phase(self) -> str:
        """Return the controller phase: ``doubling``, ``decreasing``, or ``settled``."""
        return self._phase

    def observe(self, measured_error: Optional[float]) -> int:
        """Feed one accuracy measurement and return the new particle count.

        The controller doubles the count while the error exceeds the
        target, then decreases it by a constant step while the error
        stays within the target, settling on the smallest count that
        meets the requirement.
        """
        if measured_error is None:
            return self._count
        meets = measured_error <= self.target_error
        if self._phase == "doubling":
            if meets:
                self._last_good = self._count
                self._phase = "decreasing"
            else:
                # Keep doubling (capped at max_count); the accuracy requirement
                # may still be met later, e.g. once more observations arrive.
                self._count = min(self._count * 2, self.max_count)
        elif self._phase == "decreasing":
            if meets:
                self._last_good = self._count
                next_count = self._count - self.decrease_step
                if next_count < self.min_count:
                    self._phase = "settled"
                else:
                    self._count = next_count
            else:
                # Went one step too far: return to the last count that met
                # the requirement and stop searching.
                self._count = self._last_good if self._last_good is not None else self._count
                self._phase = "settled"
        return self._count
