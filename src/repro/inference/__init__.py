"""Probabilistic inference substrate for T operators.

Graphical-model descriptions of the data generation process, particle
filtering with the paper's factorisation / spatial-indexing /
compression optimisations, adaptive particle-count control, and a
Kalman-filter baseline.
"""

from .adaptive import ParticleCountController, ReferenceAccuracyMonitor
from .graphical_model import (
    Factor,
    FactorGraph,
    ObservationModel,
    StateSpaceModel,
    TransitionModel,
)
from .kalman import KalmanFilter, KalmanState
from .particle_filter import (
    CompressionConfig,
    FactorizedParticleFilter,
    JointParticleFilter,
    ParticleFilter,
)
from .resampling import (
    effective_sample_size,
    multinomial_resample,
    residual_resample,
    stratified_resample,
    systematic_resample,
)
from .spatial_index import GridIndex

__all__ = [
    "TransitionModel",
    "ObservationModel",
    "StateSpaceModel",
    "Factor",
    "FactorGraph",
    "ParticleFilter",
    "FactorizedParticleFilter",
    "JointParticleFilter",
    "CompressionConfig",
    "GridIndex",
    "effective_sample_size",
    "systematic_resample",
    "stratified_resample",
    "multinomial_resample",
    "residual_resample",
    "ParticleCountController",
    "ReferenceAccuracyMonitor",
    "KalmanFilter",
    "KalmanState",
]
