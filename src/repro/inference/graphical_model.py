"""Graphical-model descriptions of the data generation process.

Section 4.1: the first step in designing a T operator is a probabilistic
model -- a joint distribution over hidden variables (what we want, e.g.
object locations) and evidence variables (what the device reports,
e.g. RFID readings) -- factored into local components: how the state of
the world evolves (transition model) and how observations are generated
from it (observation model).

This module provides:

* the :class:`TransitionModel` / :class:`ObservationModel` interfaces
  used by the particle filter, and
* a small :class:`FactorGraph` for describing and scoring the joint
  distribution explicitly, which tests use to validate that the
  factored inference targets the correct posterior.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "TransitionModel",
    "ObservationModel",
    "StateSpaceModel",
    "Factor",
    "FactorGraph",
]


class TransitionModel(abc.ABC):
    """How a hidden state evolves between consecutive time steps."""

    @abc.abstractmethod
    def propagate(self, states: np.ndarray, dt: float, rng: np.random.Generator) -> np.ndarray:
        """Sample next states for an ``(n, d)`` array of current states."""

    def log_density(self, previous: np.ndarray, current: np.ndarray, dt: float) -> np.ndarray:
        """Optional: log transition density (used by factor-graph scoring)."""
        raise NotImplementedError


class ObservationModel(abc.ABC):
    """How evidence is generated from the hidden state."""

    @abc.abstractmethod
    def likelihood(self, states: np.ndarray, observation) -> np.ndarray:
        """Return ``p(observation | state)`` for an ``(n, d)`` state array."""

    def log_likelihood(self, states: np.ndarray, observation) -> np.ndarray:
        return np.log(np.maximum(self.likelihood(states, observation), 1e-300))


@dataclass
class StateSpaceModel:
    """A pairing of transition and observation models for one hidden variable.

    The prior sampler draws the initial particle set; it receives the
    particle count and a random generator.
    """

    transition: TransitionModel
    observation: ObservationModel
    prior_sampler: Callable[[int, np.random.Generator], np.ndarray]
    state_dim: int = 2

    def sample_prior(self, n: int, rng: np.random.Generator) -> np.ndarray:
        states = np.asarray(self.prior_sampler(n, rng), dtype=float)
        if states.shape != (n, self.state_dim):
            raise ValueError(
                f"prior sampler returned shape {states.shape}, expected {(n, self.state_dim)}"
            )
        return states


# ----------------------------------------------------------------------
# Factor graph (explicit joint distribution, used for validation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Factor:
    """A local log-potential over a subset of variables."""

    name: str
    variables: Tuple[str, ...]
    log_potential: Callable[[Mapping[str, np.ndarray]], float]

    def score(self, assignment: Mapping[str, np.ndarray]) -> float:
        missing = [v for v in self.variables if v not in assignment]
        if missing:
            raise KeyError(f"factor {self.name!r} is missing variables {missing}")
        return float(self.log_potential(assignment))


class FactorGraph:
    """A set of variables and log-potential factors over them.

    The graph stores structure only; values are supplied at scoring
    time.  It supports joint log-density evaluation and a listing of
    the Markov blanket of each variable, which is what the paper's
    factorisation optimisation exploits (object locations are
    conditionally independent given the reader trajectory).
    """

    def __init__(self) -> None:
        self._variables: Dict[str, str] = {}
        self._factors: List[Factor] = []

    def add_variable(self, name: str, kind: str = "hidden") -> None:
        """Declare a variable; ``kind`` is ``"hidden"`` or ``"evidence"``."""
        if kind not in ("hidden", "evidence"):
            raise ValueError("variable kind must be 'hidden' or 'evidence'")
        if name in self._variables:
            raise ValueError(f"variable {name!r} already declared")
        self._variables[name] = kind

    def add_factor(self, factor: Factor) -> None:
        unknown = [v for v in factor.variables if v not in self._variables]
        if unknown:
            raise ValueError(f"factor {factor.name!r} references undeclared variables {unknown}")
        self._factors.append(factor)

    @property
    def variables(self) -> Mapping[str, str]:
        return dict(self._variables)

    @property
    def factors(self) -> Sequence[Factor]:
        return tuple(self._factors)

    def hidden_variables(self) -> List[str]:
        return [v for v, kind in self._variables.items() if kind == "hidden"]

    def evidence_variables(self) -> List[str]:
        return [v for v, kind in self._variables.items() if kind == "evidence"]

    def log_joint(self, assignment: Mapping[str, np.ndarray]) -> float:
        """Return the unnormalised joint log-density of a full assignment."""
        return float(sum(factor.score(assignment) for factor in self._factors))

    def markov_blanket(self, variable: str) -> List[str]:
        """Return the variables sharing a factor with ``variable``."""
        if variable not in self._variables:
            raise KeyError(f"unknown variable {variable!r}")
        neighbours = set()
        for factor in self._factors:
            if variable in factor.variables:
                neighbours.update(factor.variables)
        neighbours.discard(variable)
        return sorted(neighbours)

    def independent_components(self) -> List[List[str]]:
        """Return groups of hidden variables not linked by any factor.

        Variables in different components can be tracked by independent
        particle filters -- the formal justification for the paper's
        factorisation optimisation.
        """
        hidden = self.hidden_variables()
        index = {name: i for i, name in enumerate(hidden)}
        parent = list(range(len(hidden)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri

        for factor in self._factors:
            involved = [index[v] for v in factor.variables if v in index]
            for a, b in zip(involved, involved[1:]):
                union(a, b)

        groups: Dict[int, List[str]] = {}
        for name, i in index.items():
            groups.setdefault(find(i), []).append(name)
        return [sorted(group) for group in groups.values()]
