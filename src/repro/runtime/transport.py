"""Coordinator-side shard transports.

The sharded runtime's coordinator speaks one message protocol to its
shards (:mod:`repro.runtime.worker`); this module carries that protocol
over a TCP socket so a shard can live in a remote process
(:class:`repro.net.shard.ShardServer`) instead of a forked queue pair.

:class:`SocketShardChannel` is deliberately *non-blocking on both
directions*: sends go through an explicit backlog buffer pumped with
non-blocking writes, and receives parse whatever bytes have arrived
into complete frames.  The coordinator therefore keeps its existing
backpressure discipline — when a send cannot progress it drains
replies instead of deadlocking against a shard that is itself blocked
sending results back.

The :mod:`repro.net` imports are deferred to call time: the service
layer sits between :mod:`repro.runtime` and :mod:`repro.net` in the
import graph, and importing the net package at module load would close
that cycle.
"""

from __future__ import annotations

import select
import socket
from typing import List, Optional, Tuple

__all__ = ["SocketShardChannel"]


class SocketShardChannel:
    """One remote shard reached over TCP (see module docs).

    The constructor performs the attach handshake synchronously: it
    announces the shard slot this runner fills and waits for the
    server's acknowledgement (or its error report), so a bad address or
    an incompatible shard server fails at engine construction, not
    first push.
    """

    transport = "socket"

    def __init__(
        self,
        shard: int,
        address: str,
        max_payload: Optional[int] = None,
        connect_timeout: float = 10.0,
        plan_signature: Optional[List[str]] = None,
    ):
        from repro.net import framing, protocol  # deferred: import cycle

        self._framing = framing
        self._protocol = protocol
        self.shard = shard
        self.address = address
        self.max_payload = max_payload or framing.DEFAULT_MAX_PAYLOAD
        self.alive = True
        self._backlog = bytearray()
        self._reader = framing.FrameReader(self.max_payload)

        self.sock = socket.create_connection(
            protocol.parse_address(address), timeout=connect_timeout
        )
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        framing.send_frame(
            self.sock,
            protocol.SHARD_ATTACH,
            {"shard": shard, "signature": plan_signature},
        )
        kind, header, payload = framing.recv_frame(self.sock, self.max_payload)
        if kind != protocol.OK:
            message = protocol.decode_worker_message(kind, header, payload)
            detail = message[2] if message[0] == "error" else repr(message)
            raise ConnectionError(
                f"shard server {address} rejected the attach of shard {shard}:\n{detail}"
            )
        self.sock.setblocking(False)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def queue_message(self, message: Tuple) -> None:
        """Append one worker-protocol message to the send backlog."""
        self._backlog.extend(self._protocol.encode_worker_message(message))

    def pump_send(self) -> bool:
        """Write as much backlog as the socket accepts; True when drained."""
        while self._backlog:
            try:
                sent = self.sock.send(self._backlog)
            except (BlockingIOError, InterruptedError):
                return False
            except OSError:
                self.alive = False
                return False
            if sent <= 0:
                self.alive = False
                return False
            del self._backlog[:sent]
        return True

    @property
    def send_backlog_bytes(self) -> int:
        return len(self._backlog)

    def wait_writable(self, timeout: float) -> None:
        try:
            select.select((), (self.sock,), (), timeout)
        except OSError:
            self.alive = False

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def poll(self) -> List[Tuple]:
        """Drain received bytes; return every complete worker message."""
        if not self.alive:
            return []
        while True:
            try:
                data = self.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self.alive = False
                break
            if not data:
                self.alive = False
                break
            self._reader.feed(data)
        messages: List[Tuple] = []
        while True:
            frame = self._reader.next_frame()
            if frame is None:
                break
            messages.append(self._protocol.decode_worker_message(*frame))
        return messages

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, linger: float = 1.0) -> None:
        """Best-effort ``stop`` to the remote runner, then close the socket."""
        if self.alive:
            try:
                self.queue_message(("stop",))
                deadline_ticks = max(1, int(linger / 0.05))
                for _ in range(deadline_ticks):
                    if self.pump_send():
                        break
                    self.wait_writable(0.05)
            except OSError:
                pass
        self.sock.close()
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SocketShardChannel(shard={self.shard}, address={self.address!r})"
