"""Partitioning strategies for the sharded runtime.

The parent process slices its input stream into *chunks* (contiguous
runs of tuples, shipped as one encoded batch each) and a partitioner
decides which shard runs which tuples:

* :class:`RoundRobinPartitioner` assigns whole chunks to shards in
  rotation.  Chunk ids are globally ordered, so the coordinator can
  reassemble row-wise outputs in exactly the single-engine order — this
  is the only partitioner valid for plans whose merge is
  order-sensitive (``ShardingDecision.partitioning == "chunked"``).
* :class:`HashPartitioner` routes each tuple by a stable hash of one
  attribute, giving key locality (all tuples of a group on one shard).
  It does not preserve global order and is therefore only accepted for
  aggregate-split plans, whose window merge is order-insensitive.

Hashes are computed with :func:`zlib.crc32` over a canonical byte
rendering of the key — deterministic across processes and runs, unlike
Python's salted ``hash()``.
"""

from __future__ import annotations

import abc
import math
import zlib
from typing import Dict, List, Sequence, Union

from repro.streams.tuples import StreamTuple

__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "resolve_partitioner",
    "compute_adaptive_weights",
]


class Partitioner(abc.ABC):
    """Strategy mapping input tuples/chunks onto shard indices."""

    #: True when chunk ids assigned by this partitioner form one global
    #: sequence whose concatenation is the original input order.
    preserves_order: bool = False

    @abc.abstractmethod
    def split_chunk(
        self, chunk_index: int, items: Sequence[StreamTuple], n_shards: int
    ) -> Dict[int, List[StreamTuple]]:
        """Map one input chunk to ``{shard index: tuples}`` (order kept)."""


class RoundRobinPartitioner(Partitioner):
    """Whole chunks rotate across shards; global chunk order is preserved.

    ``weights`` (positive integers, one per shard) skew the rotation:
    with weights ``(2, 1)`` shard 0 receives two chunks for every one
    chunk shard 1 gets.  This is the knob for heterogeneous shard
    pools — e.g. deweighting a remote socket shard that pays
    serialization plus network latency per chunk, or an overloaded
    host.  Chunk ids remain one global sequence, so the ordered
    (row-wise) merge still reconstructs single-engine output order.
    """

    preserves_order = True

    def __init__(self, weights: Sequence[int] = ()):
        self.set_weights(weights)

    def set_weights(self, weights: Sequence[int]) -> None:
        """Replace the rotation weights (the adaptive-repartition hook).

        Safe to call between chunks: only *future* chunk assignments
        change, and chunk ids stay one global sequence, so the ordered
        merge is unaffected.
        """
        schedule: List[int] = []
        for shard, weight in enumerate(weights):
            if int(weight) != weight or weight < 1:
                raise ValueError(
                    f"round-robin weights must be positive integers, got {weight!r}"
                )
            schedule.extend([shard] * int(weight))
        self.weights = tuple(int(w) for w in weights)
        self._schedule = schedule

    def split_chunk(
        self, chunk_index: int, items: Sequence[StreamTuple], n_shards: int
    ) -> Dict[int, List[StreamTuple]]:
        if not self._schedule:
            return {chunk_index % n_shards: list(items)}
        if len(self.weights) != n_shards:
            raise ValueError(
                f"round-robin weights cover {len(self.weights)} shards "
                f"but the engine runs {n_shards}"
            )
        return {self._schedule[chunk_index % len(self._schedule)]: list(items)}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if self.weights:
            return f"RoundRobinPartitioner(weights={self.weights!r})"
        return "RoundRobinPartitioner()"


class HashPartitioner(Partitioner):
    """Route each tuple by a stable hash of one deterministic attribute."""

    preserves_order = False

    def __init__(self, attribute: str):
        if not attribute:
            raise ValueError("HashPartitioner needs an attribute name")
        self.attribute = attribute

    def shard_of(self, item: StreamTuple, n_shards: int) -> int:
        try:
            value = item.value(self.attribute)
        except KeyError as exc:
            raise KeyError(
                f"cannot hash-partition: tuple has no value {self.attribute!r}"
            ) from exc
        digest = zlib.crc32(repr(value).encode("utf-8"))
        return digest % n_shards

    def split_chunk(
        self, chunk_index: int, items: Sequence[StreamTuple], n_shards: int
    ) -> Dict[int, List[StreamTuple]]:
        split: Dict[int, List[StreamTuple]] = {}
        for item in items:
            split.setdefault(self.shard_of(item, n_shards), []).append(item)
        return split

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HashPartitioner(attribute={self.attribute!r})"


def compute_adaptive_weights(
    chunks_done: Sequence[int],
    in_flight: Sequence[int],
    max_weight: int = 4,
) -> List[int]:
    """Derive round-robin weights from observed per-shard progress.

    ``chunks_done`` is how many chunks each shard completed since the
    last rebalance and ``in_flight`` how many are currently queued at
    it — together a throughput estimate that charges a slow shard for
    its backlog.  The fastest shard anchors ``max_weight``; everyone
    else scales proportionally, floored at 1 so no shard starves (the
    ordered merge needs every shard to keep draining).  Pure function:
    the engine applies the result via
    :meth:`RoundRobinPartitioner.set_weights`.
    """
    if len(chunks_done) != len(in_flight):
        raise ValueError("chunks_done and in_flight must have one entry per shard")
    if max_weight < 1:
        raise ValueError(f"max_weight must be >= 1, got {max_weight}")
    # Effective progress: completed work minus a penalty for backlog
    # still sitting at the shard (it was offered work it hasn't done).
    scores = [
        max(0.0, float(done) - 0.5 * float(queued))
        for done, queued in zip(chunks_done, in_flight)
    ]
    best = max(scores, default=0.0)
    if best <= 0.0:
        return [1] * len(scores)
    weights = [max(1, round(max_weight * score / best)) for score in scores]
    # Canonical form: (4, 4) schedules identically to (1, 1) — divide out
    # the gcd so equal-progress rounds compare equal to the uniform start.
    divisor = math.gcd(*weights)
    return [weight // divisor for weight in weights]


def resolve_partitioner(spec: Union[str, Partitioner]) -> Partitioner:
    """Accept an instance, ``"round_robin[:w0,w1,...]"`` or ``"hash:<attr>"``."""
    if isinstance(spec, Partitioner):
        return spec
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name in ("round_robin", "roundrobin", "rr"):
            return RoundRobinPartitioner()
        for prefix in ("round_robin:", "roundrobin:", "rr:"):
            if name.startswith(prefix):
                weights = [int(part) for part in name[len(prefix) :].split(",") if part]
                return RoundRobinPartitioner(weights)
        if name.startswith("hash:"):
            return HashPartitioner(spec.split(":", 1)[1])
    raise ValueError(
        f"unknown partitioner {spec!r}; use 'round_robin', "
        "'round_robin:<w0>,<w1>,...', 'hash:<attribute>' or a Partitioner instance"
    )
