"""Coordinator-side merge operators for sharded execution.

Two recombination modes cover the plans the sharding pass accepts:

* :class:`OrderedChunkMerger` — k-way ordered merge for row-wise
  plans.  Every input chunk has a globally ordered id and row-wise
  operators are order-preserving and 1-to-(0 or 1), so emitting each
  chunk's outputs in ascending chunk id reproduces the single engine's
  output sequence exactly.
* :class:`WindowPartialMerger` — uncertainty-aware merge for
  aggregate-split plans.  Shard partials accumulate per window (and
  group); a window is emitted once every shard's *watermark* has passed
  its end — each shard ships its watermark atomically with the results
  it produced, so a passed watermark proves the shard's contribution to
  the window has arrived.  Emission order matches the single engine:
  windows in time order, groups sorted by ``repr`` within a window.
  The moment/mixture arithmetic lives in
  :mod:`repro.core.aggregation.merge`; this class adds the streaming
  bookkeeping.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.aggregation.merge import (
    WindowPartial,
    extract_partial,
    merge_window_partials,
)
from repro.distributions import Distribution
from repro.plan.sharding import MergeSpec
from repro.streams.tuples import StreamTuple

__all__ = ["OrderedChunkMerger", "WindowPartialMerger", "MergeProtocolError"]


class MergeProtocolError(RuntimeError):
    """Raised when shard results violate the merge protocol (missing chunks)."""


class OrderedChunkMerger:
    """Reassemble per-chunk shard outputs in global chunk order."""

    def __init__(self) -> None:
        self._pending: Dict[int, List[StreamTuple]] = {}
        self._next = 0

    def ingest(self, chunk_id: int, outputs: Sequence[StreamTuple]) -> List[StreamTuple]:
        """Record one chunk's outputs; return everything now emittable."""
        if chunk_id < self._next or chunk_id in self._pending:
            raise MergeProtocolError(
                f"chunk {chunk_id} delivered twice"
            )
        self._pending[chunk_id] = list(outputs)
        emitted: List[StreamTuple] = []
        while self._next in self._pending:
            emitted.extend(self._pending.pop(self._next))
            self._next += 1
        return emitted

    @property
    def pending_chunks(self) -> int:
        return len(self._pending)

    def drain(self) -> List[StreamTuple]:
        """End of stream: every sent chunk must have been ingested."""
        if self._pending:
            missing = [
                i
                for i in range(self._next, max(self._pending) + 1)
                if i not in self._pending
            ]
            raise MergeProtocolError(
                f"cannot drain ordered merge: chunks {missing} were never delivered"
            )
        return []

    def state_snapshot(self) -> dict:
        return {
            "kind": "ordered",
            "next": self._next,
            "pending": [
                {"chunk": chunk_id, "rows": list(rows)}
                for chunk_id, rows in sorted(self._pending.items())
            ],
        }

    def state_restore(self, state: dict) -> None:
        if state.get("kind") != "ordered":
            raise MergeProtocolError(
                f"cannot restore merger state of kind {state.get('kind')!r}"
            )
        self._next = int(state["next"])
        self._pending = {
            int(entry["chunk"]): list(entry["rows"]) for entry in state["pending"]
        }


def _emission_order(key: Tuple[float, float, Optional[Hashable]]):
    start, end, group = key
    return (start, end, repr(group))


class WindowPartialMerger:
    """Accumulate shard window-partials; emit merged windows by watermark."""

    def __init__(self, spec: MergeSpec, n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.spec = spec
        self.n_shards = n_shards
        self._pending: Dict[Tuple[float, float, Optional[Hashable]], List[WindowPartial]] = {}
        self._watermarks: List[float] = [-math.inf] * n_shards
        self._fed: set = set()

    def mark_fed(self, shard: int) -> None:
        """Note that ``shard`` has been sent data.

        Only fed shards gate emission: under hash partitioning a skewed
        key set can starve a shard entirely, and waiting on a shard
        that will never reply would stop streaming emission (and grow
        the pending table) until the final drain.  A fed shard whose
        reply is still in flight stays at ``-inf`` and gates correctly.
        """
        self._fed.add(shard)

    def ingest(
        self,
        shard: int,
        outputs: Sequence[StreamTuple],
        watermark: float,
    ) -> List[StreamTuple]:
        """Record one shard message (partials + watermark); emit ready windows."""
        for item in outputs:
            partial = extract_partial(
                item, self.spec.partial_attribute, grouped=self.spec.grouped
            )
            self._pending.setdefault(partial.key, []).append(partial)
        self._fed.add(shard)
        if watermark > self._watermarks[shard]:
            self._watermarks[shard] = watermark
        horizon = min(self._watermarks[s] for s in self._fed)
        if horizon == -math.inf:
            return []
        ready = [key for key in self._pending if key[1] <= horizon]
        return self._emit(ready)

    def _emit(self, keys) -> List[StreamTuple]:
        emitted: List[StreamTuple] = []
        for key in sorted(keys, key=_emission_order):
            merged = merge_window_partials(
                self._pending.pop(key),
                function=self.spec.function,
                output_attribute=self.spec.output_attribute,
                strategy=self.spec.strategy,
                having=self.spec.having,
                check_independence=self.spec.check_independence,
            )
            if merged is not None:  # None = filtered out by HAVING
                emitted.append(merged)
        return emitted

    @property
    def pending_windows(self) -> int:
        return len(self._pending)

    def drain(self) -> List[StreamTuple]:
        """End of stream: merge and emit every pending window."""
        out = self._emit(list(self._pending))
        self._watermarks = [-math.inf] * self.n_shards
        self._fed.clear()
        return out

    # ------------------------------------------------------------------
    # Durability: partials round-trip through the same result-tuple shape
    # the shards ship them in, so extract_partial is its own inverse and
    # the wire codec (which knows distributions and lineage) carries
    # everything — per-key list order included, which preserves the
    # float-summation order of a later merge.
    # ------------------------------------------------------------------
    def _partial_tuple(self, partial: WindowPartial) -> StreamTuple:
        values = {
            "window_start": partial.window_start,
            "window_end": partial.window_end,
            "window_count": partial.count,
        }
        uncertain = {}
        if partial.group is not None:
            values["group"] = partial.group
        if isinstance(partial.result, Distribution):
            uncertain[self.spec.partial_attribute] = partial.result
        else:
            values[self.spec.partial_attribute] = partial.result
        return StreamTuple(
            timestamp=partial.window_end,
            values=values,
            uncertain=uncertain,
            lineage=partial.lineage,
        )

    def state_snapshot(self) -> dict:
        return {
            "kind": "window",
            "watermarks": list(self._watermarks),
            "fed": sorted(self._fed),
            "pending": [
                [self._partial_tuple(p) for p in parts]
                for parts in self._pending.values()
            ],
        }

    def state_restore(self, state: dict) -> None:
        if state.get("kind") != "window":
            raise MergeProtocolError(
                f"cannot restore merger state of kind {state.get('kind')!r}"
            )
        watermarks = [float(w) for w in state["watermarks"]]
        if len(watermarks) != self.n_shards:
            raise MergeProtocolError(
                f"checkpoint recorded {len(watermarks)} shard watermarks, "
                f"this merger has {self.n_shards} shards"
            )
        self._watermarks = watermarks
        self._fed = set(int(s) for s in state["fed"])
        self._pending = {}
        for rows in state["pending"]:
            for item in rows:
                partial = extract_partial(
                    item, self.spec.partial_attribute, grouped=self.spec.grouped
                )
                self._pending.setdefault(partial.key, []).append(partial)
