"""Shared-memory ring transport between the coordinator and its shards.

The queue transport the sharded runtime started with pays one pickle
round trip per chunk on top of the columnar wire encoding — the parent
encodes a batch to bytes, the queue pickles those bytes, a pipe copies
the pickle, and the worker unpickles before it can even look at the
magic prefix.  This module replaces that path with single-producer /
single-consumer byte rings over :class:`multiprocessing.shared_memory`:
the parent writes each wire frame *once* into the ring, and the worker
decodes columns straight out of the mapped segment with
``np.frombuffer`` — no pickling, no pipe copy, no per-chunk allocation
on the transport itself.

Ring layout
-----------
One shared segment per direction per shard::

    offset 0    head            u64  total bytes written (monotonic)
    offset 64   tail            u64  total bytes read (monotonic)
    offset 128  records_written u64
    offset 192  records_read    u64
    offset 256  data            capacity = segment size - 256 bytes

Head and tail are free-running byte counters; ``index % capacity``
locates the position.  The counters are cache-line separated and each
is written by exactly one side (head/records_written by the producer,
tail/records_read by the consumer), so the aligned 8-byte stores act as
the SPSC synchronisation — on x86-64's total store order, a consumer
that observes a new head is guaranteed to observe the record bytes
written before it.

A record is ``[u32 length][length bytes]`` and is always contiguous: a
record that would straddle the physical end of the buffer is preceded
by a pad (the ``0xFFFFFFFF`` length marker, or an implicit skip when
fewer than 4 bytes remain) and written at offset 0 instead.  Because a
pad can cost up to one record's worth of space, the largest accepted
record is half the ring capacity.

Ownership and lifetime
----------------------
Workers are forked, so both sides inherit the *same* mapping — nobody
re-attaches by name, and only the creating (parent) process ever calls
:meth:`ShmRing.unlink`.  ``recv``/``poll`` hand out memoryviews that
alias ring memory; the consumer must finish with a record (decode it —
the batch decoder copies columns out into its own arrays) before
calling ``release``, which is what returns the bytes to the producer.

Doorbells
---------
Blocking is hybrid: each direction has a pipe "doorbell"; the producer
writes one byte (non-blocking, losses are harmless) after each record
and the consumer selects on the pipe with a short timeout before
re-sweeping the ring, so an idle side sleeps in the kernel instead of
spinning, while a missed wakeup only costs one timeout tick.
"""

from __future__ import annotations

import os
import secrets
import select
import struct
import time
from multiprocessing import shared_memory
from typing import Optional

from repro.analysis.sanitize import check as _sanitize_check
from repro.analysis.sanitize import sanitizer_enabled as _sanitizer_enabled

__all__ = ["ShmRing", "ShardShmTransport", "RingFullError"]

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Length marker of an explicit end-of-buffer pad record.
_PAD = 0xFFFFFFFF

_HEAD = 0
_TAIL = 64
_WRITTEN = 128
_READ = 192
_DATA = 256

#: Default sleep between retries when a blocking write finds no space.
_WRITE_BACKOFF = 0.0005


class RingFullError(RuntimeError):
    """A single record exceeds what the ring can ever hold."""


class ShmRing:
    """One SPSC byte ring over a shared-memory segment (see module docs).

    The creating process owns the segment name; forked consumers use
    the inherited mapping directly.  Exactly one process may write
    (``try_write``) and one may read (``next_view``/``release``) at a
    time — the header protocol assumes single-producer/single-consumer.
    """

    def __init__(self, data_bytes: int, name: Optional[str] = None):
        if data_bytes < (1 << 12):
            raise ValueError(f"ring data size must be at least 4 KiB, got {data_bytes}")
        if name is None:
            name = f"repro-ring-{os.getpid()}-{secrets.token_hex(4)}"
        self._shm = shared_memory.SharedMemory(
            create=True, name=name, size=_DATA + data_bytes
        )
        self.name = self._shm.name
        self._buf = self._shm.buf
        self.capacity = len(self._buf) - _DATA
        self._buf[:_DATA] = bytes(_DATA)
        # Each side mirrors the counter it owns to skip a shared load.
        self._local_head = 0
        self._local_tail = 0
        self._local_written = 0
        self._local_read = 0
        self._pending = 0
        self._pending_view: Optional[memoryview] = None
        self._closed = False
        # REPRO_SANITIZE=1 arms the ring invariants below; latched here
        # so a live ring never changes behaviour mid-flight.
        self._sanitize = _sanitizer_enabled()
        self._san_last_head = 0
        self._san_last_tail = 0

    # ------------------------------------------------------------------
    # Header counters
    # ------------------------------------------------------------------
    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    @property
    def max_record(self) -> int:
        """Largest accepted record payload (half the ring, minus framing)."""
        return self.capacity // 2 - 4

    @property
    def record_backlog(self) -> int:
        """Records written but not yet released by the consumer."""
        return self._load(_WRITTEN) - self._load(_READ)

    @property
    def used_bytes(self) -> int:
        return self._load(_HEAD) - self._load(_TAIL)

    # ------------------------------------------------------------------
    # Producer
    # ------------------------------------------------------------------
    def try_write(self, data) -> bool:
        """Write one record; False when the ring lacks space right now."""
        length = len(data)
        need = 4 + length
        cap = self.capacity
        if length > self.max_record:
            raise RingFullError(
                f"a {length}-byte frame can never fit this {cap}-byte ring "
                f"(max record {self.max_record}); raise ring_bytes or lower "
                "chunk_size"
            )
        head = self._local_head
        tail = self._load(_TAIL)
        if self._sanitize:
            _sanitize_check(
                tail >= self._san_last_tail,
                f"ring {self.name}: tail moved backwards "
                f"({self._san_last_tail} -> {tail})",
            )
            self._san_last_tail = tail
            _sanitize_check(
                tail <= head,
                f"ring {self.name}: consumer tail {tail} passed producer head {head}",
            )
            _sanitize_check(
                head - tail <= cap,
                f"ring {self.name}: {head - tail} used bytes exceed capacity {cap}",
            )
        pos = head % cap
        rem = cap - pos
        total = need if rem >= need else rem + need
        if cap - (head - tail) < total:
            return False
        buf = self._buf
        if rem >= need:
            _U32.pack_into(buf, _DATA + pos, length)
            buf[_DATA + pos + 4 : _DATA + pos + 4 + length] = data
        else:
            if rem >= 4:
                _U32.pack_into(buf, _DATA + pos, _PAD)
            _U32.pack_into(buf, _DATA, length)
            buf[_DATA + 4 : _DATA + 4 + length] = data
        self._local_head = head + total
        self._local_written += 1
        # Publish the payload before the head: program order suffices on
        # the total-store-order hardware this runtime targets.
        self._store(_HEAD, self._local_head)
        self._store(_WRITTEN, self._local_written)
        return True

    def write(self, data, on_stall=None, timeout: Optional[float] = None) -> None:
        """Blocking :meth:`try_write`; ``on_stall()`` runs per failed pass."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.try_write(data):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"no space freed in ring {self.name} for {timeout:.1f}s"
                )
            if on_stall is not None:
                on_stall()
            else:
                time.sleep(_WRITE_BACKOFF)

    # ------------------------------------------------------------------
    # Consumer
    # ------------------------------------------------------------------
    def next_view(self) -> Optional[memoryview]:
        """Return a view of the next record's payload, or ``None``.

        The view aliases ring memory and stays valid until
        :meth:`release`, which must be called exactly once per record
        before the next ``next_view``.
        """
        if self._pending:
            raise RuntimeError("previous record was not released")
        cap = self.capacity
        buf = self._buf
        tail = self._local_tail
        head = self._load(_HEAD)
        if self._sanitize:
            _sanitize_check(
                head >= self._san_last_head,
                f"ring {self.name}: head moved backwards "
                f"({self._san_last_head} -> {head})",
            )
            self._san_last_head = head
            _sanitize_check(
                head >= tail,
                f"ring {self.name}: producer head {head} behind consumer tail {tail}",
            )
            _sanitize_check(
                head - tail <= cap,
                f"ring {self.name}: {head - tail} unread bytes exceed capacity {cap}",
            )
        while tail != head:
            pos = tail % cap
            rem = cap - pos
            if rem < 4:
                tail += rem
                self._local_tail = tail
                self._store(_TAIL, tail)
                continue
            (length,) = _U32.unpack_from(buf, _DATA + pos)
            if length == _PAD:
                tail += rem
                self._local_tail = tail
                self._store(_TAIL, tail)
                continue
            if self._sanitize:
                _sanitize_check(
                    length <= self.max_record,
                    f"ring {self.name}: record length {length} exceeds "
                    f"max record {self.max_record} (corrupt length word)",
                )
                _sanitize_check(
                    4 + length <= rem,
                    f"ring {self.name}: {length}-byte record at offset {pos} "
                    f"straddles the physical buffer end ({rem} bytes remain); "
                    "end-of-buffer pad discipline violated",
                )
                _sanitize_check(
                    tail + 4 + length <= head,
                    f"ring {self.name}: record at offset {pos} extends past "
                    f"the published head ({tail + 4 + length} > {head})",
                )
            self._pending = 4 + length
            view = buf[_DATA + pos + 4 : _DATA + pos + 4 + length]
            self._pending_view = view
            return view
        return None

    def release(self) -> None:
        """Return the bytes of the last :meth:`next_view` to the producer."""
        if not self._pending:
            raise RuntimeError("no record pending release")
        if self._pending_view is not None:
            self._pending_view.release()
            self._pending_view = None
        self._local_tail += self._pending
        self._local_read += 1
        self._pending = 0
        self._store(_TAIL, self._local_tail)
        self._store(_READ, self._local_read)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap this process's view of the segment (not the name)."""
        if self._closed:
            return
        self._closed = True
        if self._pending_view is not None:
            self._pending_view.release()
            self._pending_view = None
        try:
            self._shm.close()
        except BufferError:  # a stray view still exported; unlink still works
            pass

    def unlink(self) -> None:
        """Remove the segment name (creating process only; idempotent)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ShmRing(name={self.name!r}, capacity={self.capacity})"


class _Doorbell:
    """A pipe wakeup: producers ring (lossy, non-blocking), consumers wait."""

    def __init__(self):
        self._r, self._w = os.pipe()
        os.set_blocking(self._r, False)
        os.set_blocking(self._w, False)

    def ring(self) -> None:
        try:
            os.write(self._w, b"\x00")
        except (BlockingIOError, InterruptedError):
            pass  # the pipe is saturated with wakeups already
        except OSError:
            pass  # closing; the consumer's timeout covers it

    def wait(self, timeout: float) -> None:
        try:
            ready, _, _ = select.select((self._r,), (), (), timeout)
        except (OSError, ValueError):
            return
        if ready:
            try:
                os.read(self._r, 4096)
            except (BlockingIOError, InterruptedError, OSError):
                pass

    def close(self) -> None:
        for fd in (self._r, self._w):
            try:
                os.close(fd)
            except OSError:
                pass


class ShardShmTransport:
    """The ring pair (chunks in, results out) of one forked shard.

    Created by the coordinator before the fork; the worker inherits the
    mappings.  Frames on the rings are exactly the
    :func:`repro.net.protocol.encode_worker_message` frames the socket
    shard transport speaks, so a shard's message stream is byte-
    identical whether it crosses a ring or a TCP connection.

    ``queue_capacity`` bounds the *records* in the inbound ring — the
    same chunks-in-flight backpressure contract the queue transport
    had — on top of the ring's own byte-space bound.
    """

    transport = "shm"

    def __init__(self, shard: int, ring_bytes: int, queue_capacity: int):
        self.shard = shard
        self.queue_capacity = queue_capacity
        token = secrets.token_hex(4)
        prefix = f"repro-ring-{os.getpid()}-{token}-s{shard}"
        self.in_ring = ShmRing(ring_bytes, name=f"{prefix}i")
        try:
            self.out_ring = ShmRing(ring_bytes, name=f"{prefix}o")
        except BaseException:
            self.in_ring.close()
            self.in_ring.unlink()
            raise
        self._to_worker = _Doorbell()
        self._to_parent = _Doorbell()

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def send(self, frame: bytes, on_stall=None) -> None:
        """Ship one frame to the worker, blocking under backpressure."""
        ring = self.in_ring
        if len(frame) > ring.max_record:
            ring.try_write(frame)  # raises RingFullError with the sizes
        while True:
            if ring.record_backlog < self.queue_capacity and ring.try_write(frame):
                self._to_worker.ring()
                return
            if on_stall is not None:
                on_stall()
            else:
                time.sleep(_WRITE_BACKOFF)

    def try_send(self, frame: bytes, timeout: float) -> bool:
        """Best-effort send (shutdown path): ignores the record bound."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if self.in_ring.try_write(frame):
                    self._to_worker.ring()
                    return True
            except RingFullError:
                return False
            if time.monotonic() > deadline:
                return False
            time.sleep(_WRITE_BACKOFF)

    def poll_reply(self, timeout: float) -> Optional[memoryview]:
        """Next result frame from the worker, or ``None`` after ``timeout``."""
        view = self.out_ring.next_view()
        if view is None:
            self._to_parent.wait(timeout)
            view = self.out_ring.next_view()
        return view

    def release_reply(self) -> None:
        self.out_ring.release()

    @property
    def queue_depth(self) -> int:
        """Chunk frames currently waiting in the inbound ring."""
        return self.in_ring.record_backlog

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def recv_request(self, timeout: float) -> Optional[memoryview]:
        view = self.in_ring.next_view()
        if view is None:
            self._to_worker.wait(timeout)
            view = self.in_ring.next_view()
        return view

    def release_request(self) -> None:
        self.in_ring.release()

    def reply(self, frame: bytes) -> None:
        """Ship one frame to the coordinator (blocks while the ring is full)."""
        self.out_ring.write(frame)
        self._to_parent.ring()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain_replies(self) -> None:
        """Discard queued replies (shutdown: unblocks a worker mid-write)."""
        while True:
            view = self.out_ring.next_view()
            if view is None:
                return
            view.release()
            self.out_ring.release()

    def close(self) -> None:
        """Unmap both rings and close the doorbells (this process only)."""
        self._to_worker.close()
        self._to_parent.close()
        self.in_ring.close()
        self.out_ring.close()

    def unlink(self) -> None:
        """Remove both segment names (parent only; idempotent)."""
        self.in_ring.unlink()
        self.out_ring.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ShardShmTransport(shard={self.shard}, ring={self.in_ring.name!r})"
