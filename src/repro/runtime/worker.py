"""Worker side of the sharded runtime.

A worker owns one full :class:`~repro.streams.engine.StreamEngine`
compiled from the shard-local plan segment and speaks a small message
protocol over a pair of queues:

parent → worker
    ``("chunk", source, chunk_id, payload)`` — one encoded tuple batch;
    ``("flush", token)`` — close partial windows (end-of-stream drain);
    ``("stats",)`` — snapshot per-box statistics;
    ``("stop",)`` — exit the loop.

worker → parent
    ``("results", shard, chunk_id, payload, watermark)`` — the outputs
    the chunk produced (possibly empty — the ordered merge needs every
    chunk acknowledged) plus the shard's event-time watermark, shipped
    atomically so the coordinator can trust a passed watermark;
    ``("flushed", shard, token, payload)`` — drain results;
    ``("stats", shard, rows)`` — statistics snapshot;
    ``("error", shard, traceback)`` — the worker died.

Tuples cross the process boundary through the compact binary codec of
:mod:`repro.streams.serialization`, not pickle: the payload sizes are
what the paper's stream-volume argument is about, and the codec keeps
them measurable.

:class:`ShardRunner` holds the engine-facing half without any queue
I/O, so the inline backend (and tests) can drive shards synchronously.
:func:`serve_shard_messages` is the protocol loop over abstract
``recv``/``send`` callables — the forked queue worker
(:func:`worker_main`) and the TCP shard server
(:class:`repro.net.shard.ShardServer`) both run it, so a shard behaves
identically whether its transport is a queue pair or a socket.
"""

from __future__ import annotations

import math
import traceback
from typing import Callable, List, Optional, Tuple

from repro.plan.nodes import LogicalPlan, topological_nodes
from repro.plan.planner import Planner
from repro.streams.batch import TupleBatch
from repro.streams.serialization import decode_batch, encode_batch_wire

__all__ = ["ShardRunner", "plan_signature", "serve_shard_messages", "worker_main"]


def plan_signature(plan: LogicalPlan) -> List[str]:
    """Deterministic structural signature of a (shard-local) plan.

    The topological sequence of node labels — address-free strings
    like ``ProbFilter[value > 20.0, p>=0.2]`` — is stable across
    processes and machines that construct the same query from the same
    code, so the socket shard transport uses it to verify at attach
    time that a remote :class:`repro.net.shard.ShardServer` hosts the
    same plan the coordinator split.
    """
    return [node.label() for node in topological_nodes(plan.outputs)]


class ShardRunner:
    """One shard: a compiled local plan plus chunk/flush/stats entry points."""

    def __init__(
        self,
        shard_id: int,
        plan: LogicalPlan,
        mode: str = "auto",
        batch_size: Optional[int] = None,
    ):
        self.shard_id = shard_id
        self.query = Planner().compile(
            plan, mode=mode, batch_size=batch_size, optimize=False
        )
        self._sink = self.query._sinks[plan.names[0]]
        self.watermark = -math.inf

    def chunk(self, source: str, batch: TupleBatch) -> Tuple[List, float]:
        """Run one chunk; return (outputs, watermark after the chunk)."""
        if len(batch):
            if self.query.engine.batch_size is not None:
                self.query.push_batch(source, batch)
            else:
                push = self.query.push
                for item in batch:
                    push(source, item)
            self.watermark = max(self.watermark, float(batch.timestamps()[-1]))
        return self._take(), self.watermark

    def flush(self) -> List:
        """Close partial windows and return their outputs."""
        self.query.engine.finish()
        return self._take()

    def _take(self) -> List:
        out = list(self._sink.results)
        self._sink.results.clear()
        return out

    def statistics_rows(self) -> List[Tuple[str, int, int, int, float]]:
        return [
            (s.name, s.tuples_in, s.tuples_out, s.batches_in, s.seconds)
            for s in self.query.statistics(detailed=True)
        ]


def serve_shard_messages(
    runner: ShardRunner,
    recv: Callable[[], Tuple],
    send: Callable[[Tuple], None],
) -> None:
    """Serve the shard protocol over abstract ``recv``/``send`` until ``stop``.

    ``recv`` blocks for the next parent→worker message tuple; ``send``
    ships one worker→parent reply.  The loop is transport-agnostic:
    queue pairs and socket framing both plug in here.
    """
    shard_id = runner.shard_id
    while True:
        message = recv()
        kind = message[0]
        if kind == "chunk":
            _, source, chunk_id, payload = message
            outputs, watermark = runner.chunk(source, decode_batch(payload))
            payload_out = encode_batch_wire(TupleBatch(outputs))
            send(("results", shard_id, chunk_id, payload_out, watermark))
        elif kind == "flush":
            outputs = runner.flush()
            send(("flushed", shard_id, message[1], encode_batch_wire(TupleBatch(outputs))))
        elif kind == "stats":
            send(("stats", shard_id, runner.statistics_rows()))
        elif kind == "stop":
            return
        else:  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unknown worker message {kind!r}")


def worker_main(
    shard_id: int,
    plan: LogicalPlan,
    mode: str,
    batch_size: Optional[int],
    in_queue,
    out_queue,
) -> None:
    """Process entry point: serve the shard protocol until ``stop``.

    Runs under the ``fork`` start method, so the logical plan — with
    all its closures — arrives by address-space inheritance, and each
    worker compiles its own private operator instances from it.
    """
    try:
        runner = ShardRunner(shard_id, plan, mode=mode, batch_size=batch_size)
        serve_shard_messages(runner, in_queue.get, out_queue.put)
    except BaseException:
        out_queue.put(("error", shard_id, traceback.format_exc()))
