"""Worker side of the sharded runtime.

A worker owns one full :class:`~repro.streams.engine.StreamEngine`
compiled from the shard-local plan segment and speaks a small message
protocol over a pair of queues:

parent → worker
    ``("chunk", source, chunk_id, payload)`` — one encoded tuple batch;
    ``("flush", token)`` — close partial windows (end-of-stream drain);
    ``("stats",)`` — snapshot per-box statistics;
    ``("snapshot", token)`` — serialize the shard's operator state;
    ``("restore", token, payload)`` — install a serialized state;
    ``("stop",)`` — exit the loop.

worker → parent
    ``("results", shard, chunk_id, payload, watermark[, spans])`` — the
    outputs the chunk produced (possibly empty — the ordered merge
    needs every chunk acknowledged) plus the shard's event-time
    watermark, shipped atomically so the coordinator can trust a passed
    watermark; the optional sixth element carries the worker-side spans
    of a sampled trace (see :mod:`repro.obs.spans`) back to the
    coordinator's span buffer;
    ``("flushed", shard, token, payload)`` — drain results;
    ``("stats", shard, rows)`` — statistics snapshot;
    ``("snapshot", shard, token, payload)`` — serialized operator state;
    ``("restored", shard, token)`` — a restore was installed;
    ``("error", shard, traceback)`` — the worker died.

Tuples cross the process boundary through the compact binary codec of
:mod:`repro.streams.serialization`, not pickle: the payload sizes are
what the paper's stream-volume argument is about, and the codec keeps
them measurable.

:class:`ShardRunner` holds the engine-facing half without any queue
I/O, so the inline backend (and tests) can drive shards synchronously.
:func:`serve_shard_messages` is the protocol loop over abstract
``recv``/``send`` callables — the TCP shard server
(:class:`repro.net.shard.ShardServer`) runs it over socket framing.
The forked worker (:func:`worker_main`) instead serves the
shared-memory ring pair of a :class:`~repro.runtime.shm.ShardShmTransport`
directly (:func:`serve_shard_rings`): it parses each request frame in
place out of the mapped ring segment, copies the batch columns out,
releases the ring bytes back to the coordinator, *then* runs the chunk.
Both loops speak the same :mod:`repro.net.protocol` worker frames, so a
shard's message stream is byte-identical over a ring or a TCP stream.
"""

from __future__ import annotations

import math
import traceback
from typing import Callable, List, Optional, Tuple

from repro import obs
from repro.obs import spans as tracing
from repro.plan.nodes import LogicalPlan, topological_nodes
from repro.plan.planner import Planner
from repro.streams.batch import TupleBatch
from repro.streams.serialization import decode_batch, encode_batch_wire

__all__ = [
    "ShardRunner",
    "plan_signature",
    "serve_shard_messages",
    "serve_shard_rings",
    "worker_main",
]

#: How long a ring worker sleeps on its doorbell before re-sweeping.
_IDLE_TICK = 0.2


def _traced_output(outputs: List, batch: TupleBatch) -> TupleBatch:
    """Wrap chunk outputs, carrying the input batch's trace context along.

    The trace trailer survives the wire round trip, so the coordinator
    can account ingest→delivery latency across the process boundary.
    """
    out = TupleBatch(outputs)
    out.trace_id = batch.trace_id
    out.t_ingest = batch.t_ingest
    return out


def _run_chunk(
    runner: "ShardRunner", source: str, batch: TupleBatch, chunk_id: int
) -> Tuple[List, float, List]:
    """Run one chunk under its batch's trace context.

    Returns ``(outputs, watermark, spans)``.  When the batch carries a
    *sampled* trace, the chunk runs inside a ``shard.exec`` span whose
    id is the deterministic :func:`repro.obs.spans.exec_span_id` and
    whose parent is the coordinator's ship span for the same
    ``(trace, shard, chunk)`` coordinates — the cross-process hand-off.
    Operator spans recorded while the chunk runs nest under it, and the
    whole lot is drained from this process's buffer so it rides the
    ``results`` reply back to the coordinator.  Unsampled (or
    untraced) batches skip every clock read and allocation.
    """
    trace_id = batch.trace_id
    if trace_id is None:
        outputs, watermark = runner.chunk(source, batch)
        return outputs, watermark, []
    previous = obs.activate(obs.TraceContext(trace_id, batch.t_ingest))
    try:
        if not tracing.sampled(trace_id):
            outputs, watermark = runner.chunk(source, batch)
            return outputs, watermark, []
        exec_id = tracing.exec_span_id(trace_id, runner.shard_id, chunk_id)
        previous_parent = tracing.activate_parent(exec_id)
        t0 = obs.trace_clock()
        try:
            outputs, watermark = runner.chunk(source, batch)
        finally:
            tracing.activate_parent(previous_parent)
        tracing.record_span(
            "shard.exec",
            "shard",
            trace_id,
            t0,
            obs.trace_clock(),
            span_id=exec_id,
            parent_id=tracing.chunk_span_id(trace_id, runner.shard_id, chunk_id),
        )
        return outputs, watermark, tracing.local_spans().drain()
    finally:
        obs.activate(previous)


def plan_signature(plan: LogicalPlan) -> List[str]:
    """Deterministic structural signature of a (shard-local) plan.

    The topological sequence of node labels — address-free strings
    like ``ProbFilter[value > 20.0, p>=0.2]`` — is stable across
    processes and machines that construct the same query from the same
    code, so the socket shard transport uses it to verify at attach
    time that a remote :class:`repro.net.shard.ShardServer` hosts the
    same plan the coordinator split.
    """
    return [node.label() for node in topological_nodes(plan.outputs)]


class ShardRunner:
    """One shard: a compiled local plan plus chunk/flush/stats entry points."""

    def __init__(
        self,
        shard_id: int,
        plan: LogicalPlan,
        mode: str = "auto",
        batch_size: Optional[int] = None,
    ):
        self.shard_id = shard_id
        self.query = Planner().compile(
            plan, mode=mode, batch_size=batch_size, optimize=False
        )
        self._sink = self.query._sinks[plan.names[0]]
        self.watermark = -math.inf

    def chunk(self, source: str, batch: TupleBatch) -> Tuple[List, float]:
        """Run one chunk; return (outputs, watermark after the chunk)."""
        if len(batch):
            if self.query.engine.batch_size is not None:
                self.query.push_batch(source, batch)
            else:
                push = self.query.push
                for item in batch:
                    push(source, item)
            self.watermark = max(self.watermark, float(batch.timestamps()[-1]))
        return self._take(), self.watermark

    def flush(self) -> List:
        """Close partial windows and return their outputs."""
        self.query.engine.finish()
        return self._take()

    def _take(self) -> List:
        out = list(self._sink.results)
        self._sink.results.clear()
        return out

    def statistics_rows(self) -> List[Tuple[str, int, int, int, float]]:
        return [
            (s.name, s.tuples_in, s.tuples_out, s.batches_in, s.seconds)
            for s in self.query.statistics(detailed=True)
        ]

    # ------------------------------------------------------------------
    # Durability (checkpoint/recover RPC)
    # ------------------------------------------------------------------
    def state_payload(self) -> bytes:
        """Serialize this shard's engine state for a coordinator snapshot."""
        from repro.recovery.state import encode_state, snapshot_engine_ops

        return encode_state(
            {
                "watermark": self.watermark,
                "ops": snapshot_engine_ops(self.query.engine),
            }
        )

    def restore_payload(self, payload: bytes) -> None:
        """Install a state produced by :meth:`state_payload`."""
        from repro.recovery.state import decode_state, restore_engine_ops

        state = decode_state(payload)
        self.watermark = float(state["watermark"])
        restore_engine_ops(self.query.engine, state["ops"])


def serve_shard_messages(
    runner: ShardRunner,
    recv: Callable[[], Tuple],
    send: Callable[[Tuple], None],
) -> None:
    """Serve the shard protocol over abstract ``recv``/``send`` until ``stop``.

    ``recv`` blocks for the next parent→worker message tuple; ``send``
    ships one worker→parent reply.  The loop is transport-agnostic:
    queue pairs and socket framing both plug in here.
    """
    shard_id = runner.shard_id
    while True:
        message = recv()
        kind = message[0]
        if kind == "chunk":
            _, source, chunk_id, payload = message
            batch = decode_batch(payload)
            outputs, watermark, spans = _run_chunk(runner, source, batch, chunk_id)
            payload_out = encode_batch_wire(_traced_output(outputs, batch))
            send(("results", shard_id, chunk_id, payload_out, watermark, spans))
        elif kind == "flush":
            outputs = runner.flush()
            send(("flushed", shard_id, message[1], encode_batch_wire(TupleBatch(outputs))))
        elif kind == "stats":
            send(("stats", shard_id, runner.statistics_rows()))
        elif kind == "snapshot":
            send(("snapshot", shard_id, message[1], runner.state_payload()))
        elif kind == "restore":
            runner.restore_payload(message[2])
            send(("restored", shard_id, message[1]))
        elif kind == "stop":
            return
        else:  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unknown worker message {kind!r}")


def serve_shard_rings(runner: ShardRunner, transport) -> None:
    """Serve the shard protocol over a :class:`ShardShmTransport` ring pair.

    Requests are parsed *in place* out of the inbound ring — the batch
    decoder copies columns straight out of the mapped segment — and the
    ring bytes are released back to the coordinator *before* the chunk
    runs, so transport space frees as early as possible.
    """
    # Imported here, not at module top: repro.net imports this module
    # for ShardRunner, and the coordinator must stay importable without
    # the net package having loaded first.
    from repro.net.framing import parse_frame
    from repro.net.protocol import decode_worker_message, encode_worker_message

    shard_id = runner.shard_id
    while True:
        view = transport.recv_request(_IDLE_TICK)
        if view is None:
            continue
        kind, header, payload = parse_frame(view)
        message = decode_worker_message(kind, header, payload)
        if message[0] == "chunk":
            _, source, chunk_id, raw = message
            batch = decode_batch(raw)
            if isinstance(raw, memoryview):
                raw.release()
            transport.release_request()
            outputs, watermark, spans = _run_chunk(runner, source, batch, chunk_id)
            transport.reply(
                encode_worker_message(
                    ("results", shard_id, chunk_id, encode_batch_wire(_traced_output(outputs, batch)), watermark, spans)
                )
            )
            continue
        if message[0] == "restore":
            # The state payload is a view into the ring; copy it out
            # before releasing the record back to the coordinator.
            _, token, raw = message
            state_bytes = bytes(raw)
            if isinstance(raw, memoryview):
                raw.release()
            transport.release_request()
            runner.restore_payload(state_bytes)
            transport.reply(encode_worker_message(("restored", shard_id, token)))
            continue
        if isinstance(payload, memoryview):
            payload.release()
        transport.release_request()
        if message[0] == "flush":
            outputs = runner.flush()
            transport.reply(
                encode_worker_message(
                    ("flushed", shard_id, message[1], encode_batch_wire(TupleBatch(outputs)))
                )
            )
        elif message[0] == "stats":
            transport.reply(
                encode_worker_message(("stats", shard_id, runner.statistics_rows()))
            )
        elif message[0] == "snapshot":
            transport.reply(
                encode_worker_message(
                    ("snapshot", shard_id, message[1], runner.state_payload())
                )
            )
        elif message[0] == "stop":
            return
        else:  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unknown worker message {message[0]!r}")


def worker_main(
    shard_id: int,
    plan: LogicalPlan,
    mode: str,
    batch_size: Optional[int],
    transport,
) -> None:
    """Process entry point: serve the shard protocol until ``stop``.

    Runs under the ``fork`` start method, so the logical plan — with
    all its closures — and the shared-memory ring mappings arrive by
    address-space inheritance, and each worker compiles its own private
    operator instances from the plan.  The worker never unlinks the
    segments (the parent owns the names); it only unmaps on exit.
    """
    try:
        runner = ShardRunner(shard_id, plan, mode=mode, batch_size=batch_size)
        serve_shard_rings(runner, transport)
    except BaseException:
        from repro.net.protocol import encode_worker_message

        try:
            transport.reply(
                encode_worker_message(("error", shard_id, traceback.format_exc()))
            )
        except BaseException:
            pass
    finally:
        try:
            transport.close()
        except BaseException:
            pass
