"""`ShardedEngine`: partitioned multi-process execution of one query.

The parent process partitions source tuples into chunks, ships them to
N worker processes (each running a full
:class:`~repro.streams.engine.StreamEngine` on the shard-local plan
segment), and recombines the workers' outputs through the
uncertainty-aware merge operators of :mod:`repro.runtime.merge`:

* aggregate-split plans merge per-window partial moments/mixtures and
  apply HAVING (plus any row-wise coordinator suffix) on the merged
  result;
* row-wise plans reassemble chunk outputs in global input order.

Plans the sharding pass rejects (joins, count windows, ...) fall back
to a single in-process engine behind the same interface, and
``explain()`` says why — sharded and unsharded queries are driven
identically.

Transport: local shards exchange frames with the coordinator over
shared-memory ring buffers (:mod:`repro.runtime.shm`) — the columnar
wire encoding of a chunk is written once into the mapped segment and
the worker decodes columns straight out of it; no pickle, no pipe
copy.  Remote shards (``remote_shards=["host:port", ...]``) speak the
*same* frames over TCP (:mod:`repro.runtime.transport`), so the
highest shard slots can live on other machines behind one coordinator
interface.

The coordinator's fan-in is concurrent: one reader thread per shard
ring (and per remote socket) decodes replies and feeds the merge
operators as results arrive, so merge cost overlaps the workers'
compute instead of serializing behind the send loop.  Delivery to the
user-visible sink stays on the caller's thread (``_flush_ready``),
preserving the single-threaded listener contract of the service layer.

Backpressure is structural: each inbound ring bounds both its bytes
and its records (``queue_capacity``), the reply rings bound the other
direction, and a send that cannot proceed counts a stall and sleeps
while the reader threads keep draining.  The stall/queue-depth signal
closes an adaptive loop: every ``_REBALANCE_INTERVAL`` chunks the
coordinator recomputes round-robin weights from observed per-shard
completion rates (:func:`repro.runtime.partition.compute_adaptive_weights`),
so a slow or remote shard is automatically deweighted mid-stream.

Workers are forked, not spawned: logical plans carry closures
(predicates, derive functions, group keys) that never pickle, but fork
inherits them — and the ring mappings — by address space.  Tuples
cross processes only through :mod:`repro.streams.serialization`.
"""

from __future__ import annotations

import gc
import itertools
import math
import multiprocessing
import select
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro import obs
from repro.plan.builder import Stream
from repro.plan.nodes import LogicalPlan, PlanError
from repro.plan.planner import Planner
from repro.plan.sharding import (
    PARTIAL_SOURCE,
    ShardingDecision,
    explain_sharding,
    split_for_sharding,
)
from repro.streams.batch import TupleBatch
from repro.streams.engine import OperatorStats
from repro.streams.operators.base import Operator
from repro.streams.operators.basic import CollectSink
from repro.streams.serialization import decode_batch, encode_batch_wire
from repro.streams.tuples import StreamTuple

from .merge import OrderedChunkMerger, WindowPartialMerger
from .partition import (
    Partitioner,
    RoundRobinPartitioner,
    compute_adaptive_weights,
    resolve_partitioner,
)
from .shm import ShardShmTransport
from .transport import SocketShardChannel
from .worker import ShardRunner, plan_signature, worker_main

__all__ = ["ShardedEngine", "ShardError", "ShardedStatistics", "ShardBackpressure"]

#: How long finish()/statistics() wait for worker replies before
#: declaring a shard dead.
_REPLY_TIMEOUT = 60.0

#: Chunks between adaptive weight recomputations.
_REBALANCE_INTERVAL = 32

#: Sleep per failed send pass while the shard rings are full.
_STALL_BACKOFF = 0.0005

#: Distinct obs scopes for concurrently-live coordinators.
_sharded_scopes = itertools.count(1)


class ShardError(RuntimeError):
    """A worker process failed (its traceback is in the message)."""


@dataclass(frozen=True)
class ShardBackpressure:
    """Flow-control state of one shard, as seen by the coordinator.

    ``stalls`` counts the times a send to this shard could not proceed
    immediately (inbound ring full, or socket send buffer full) — the
    cumulative backpressure signal.  ``queue_depth`` is the chunk
    frames currently sitting unread in a local shard's inbound ring;
    ``in_flight_chunks`` the chunks shipped but not yet answered
    (meaningful for every transport); ``send_backlog_bytes`` the bytes
    a socket transport has buffered but not yet written.
    """

    shard: int
    transport: str  # "shm", "socket" or "inline"
    queue_depth: int
    in_flight_chunks: int
    stalls: int
    chunks_sent: int
    send_backlog_bytes: int = 0


@dataclass(frozen=True)
class ShardedStatistics:
    """Per-shard and coordinator box statistics."""

    shards: Dict[int, List[OperatorStats]]
    coordinator: List[OperatorStats]
    backpressure: Dict[int, ShardBackpressure] = field(default_factory=dict)


def _release_transports(transports) -> None:
    """Unmap and unlink every shard segment (close() and GC safety net)."""
    for transport in transports:
        try:
            transport.close()
        except BaseException:
            pass
        try:
            transport.unlink()
        except BaseException:
            pass


class ShardedEngine:
    """Run one compiled query across N shard processes (see module docs).

    Parameters
    ----------
    query:
        A :class:`~repro.plan.Stream` or single-output
        :class:`~repro.plan.LogicalPlan`.
    workers:
        Shard count.  ``0`` forces the single-engine fallback.
    partitioner:
        ``"round_robin"`` (default), ``"hash:<attribute>"`` or a
        :class:`~repro.runtime.partition.Partitioner`.  Hash
        partitioning is only accepted for aggregate-split plans, whose
        merge is order-insensitive.  An *unweighted* round-robin
        partitioner on the process backend is adaptively reweighted at
        runtime from per-shard completion rates; explicit weights pin
        the rotation.
    backend:
        ``"process"`` (forked workers, the real runtime) or
        ``"inline"`` (shards run synchronously in-process through the
        same protocol — deterministic, for tests and platforms without
        ``fork``).
    chunk_size:
        Tuples per shipped chunk.
    queue_capacity:
        Bound on the chunk frames a shard's inbound ring may hold; the
        ring's byte capacity bounds it further.  This is the
        backpressure knob: in-flight chunks per shard stay within
        about ``queue_capacity`` each way.
    ring_bytes:
        Data bytes of each shared-memory ring (one pair per local
        shard).  Defaults to a size comfortably holding
        ``queue_capacity`` chunks; raise it for very large chunks (a
        single frame may use at most half a ring).
    mode / batch_size:
        Execution mode for the shard-local engines (as in
        ``Planner.compile``); ``"auto"`` lets each worker's cost model
        decide.
    remote_shards:
        TCP addresses (``"host:port"``) of running
        :class:`repro.net.shard.ShardServer` processes.  The *highest*
        shard slots connect there instead of forking: with
        ``workers=4`` and two addresses, shards 0–1 fork locally and
        shards 2–3 run remotely.  Requires the ``"process"`` backend;
        when the plan falls back to a single engine the addresses are
        unused.  The remote server must host the same query (see
        :mod:`repro.net.shard` on plan distribution).
    sink:
        Optional result sink operator; every merged result is delivered
        through ``sink.accept``.  Defaults to a
        :class:`~repro.streams.operators.basic.CollectSink` exposed via
        :attr:`results`.
    """

    def __init__(
        self,
        query: Union[Stream, LogicalPlan],
        workers: int = 2,
        partitioner: Union[str, Partitioner] = "round_robin",
        backend: str = "process",
        chunk_size: int = 1024,
        queue_capacity: int = 8,
        ring_bytes: Optional[int] = None,
        mode: str = "auto",
        batch_size: Optional[int] = None,
        planner: Optional[Planner] = None,
        optimize: bool = True,
        sink: Optional[Operator] = None,
        remote_shards: Iterable[str] = (),
    ):
        if workers < 0:
            raise PlanError(f"workers must be non-negative, got {workers}")
        if chunk_size < 1:
            raise PlanError(f"chunk_size must be at least 1, got {chunk_size}")
        if queue_capacity < 1:
            raise PlanError(f"queue_capacity must be at least 1, got {queue_capacity}")
        if backend not in ("process", "inline"):
            raise PlanError(f"unknown backend {backend!r}; use 'process' or 'inline'")
        if ring_bytes is None:
            # Room for a queue_capacity of chunks at a generous bytes/tuple
            # estimate; tmpfs pages are allocated lazily, so an oversized
            # ring costs address space, not memory.
            ring_bytes = min(64 << 20, max(1 << 22, queue_capacity * chunk_size * 256))
        if ring_bytes < (1 << 12):
            raise PlanError(f"ring_bytes must be at least 4096, got {ring_bytes}")
        self._ring_bytes = int(ring_bytes)
        self.remote_shards = tuple(remote_shards)
        if self.remote_shards:
            if backend != "process":
                raise PlanError(
                    "remote_shards requires the 'process' backend "
                    f"(got {backend!r}); the inline backend is single-process"
                )
            if len(self.remote_shards) > workers:
                raise PlanError(
                    f"{len(self.remote_shards)} remote shard addresses but only "
                    f"workers={workers} shard slots"
                )

        if isinstance(query, Stream):
            plan = query.plan()
        elif isinstance(query, LogicalPlan):
            plan = query
            plan.validate()
        else:
            raise PlanError(
                f"ShardedEngine takes a Stream or LogicalPlan, got {type(query).__name__}"
            )

        self._planner = planner or Planner()
        self._optimize = optimize
        self.workers = workers
        self.backend = backend
        self.chunk_size = chunk_size
        self._queue_capacity = queue_capacity
        self.mode = mode
        self.batch_size = batch_size
        self._sink = sink if sink is not None else CollectSink(name="sink:sharded")
        self._closed = False
        #: Scope label for this coordinator's instruments in the
        #: :mod:`repro.obs` registry (stage timings, backpressure).
        self.obs_scope = f"sharded-{next(_sharded_scopes)}"

        if optimize:
            optimized, _ = self._planner.optimize(plan)
            optimized.validate()
        else:
            optimized = plan
        if workers == 0:
            self.decision = ShardingDecision(
                shardable=False, reason="workers=0 pins the single-engine fallback"
            )
        else:
            self.decision = split_for_sharding(optimized, self._planner.cost_model)

        self.partitioner = resolve_partitioner(partitioner)
        weights = getattr(self.partitioner, "weights", ())
        if weights and len(weights) != workers:
            # Fail before any worker forks; split_chunk would only
            # notice at the first full chunk, mid-stream.
            raise PlanError(
                f"round-robin weights cover {len(weights)} shards "
                f"but workers={workers}"
            )
        if (
            self.decision.shardable
            and self.decision.partitioning == "chunked"
            and not self.partitioner.preserves_order
        ):
            raise PlanError(
                f"{self.partitioner!r} does not preserve the global input order, "
                "which this row-wise plan's ordered merge requires; use the "
                "round-robin partitioner (or an aggregate-split plan)"
            )

        if not self.decision.shardable:
            # Single-engine fallback behind the sharded interface.
            self._compiled = self._planner.compile(
                plan, mode=mode, batch_size=batch_size, optimize=optimize
            )
            self._compiled_sink = self._compiled._sinks[self._compiled.logical_plan.names[0]]
            self.sources = list(self._compiled.sources)
        else:
            self._init_sharded()

    # ------------------------------------------------------------------
    # Sharded state
    # ------------------------------------------------------------------
    def _init_sharded(self) -> None:
        """Build mergers, suffix engine, shard transports and the worker pool."""
        decision = self.decision
        self.sources = sorted(s.name for s in decision.local.sources)
        if decision.ordered:
            self._merger = OrderedChunkMerger()
        else:
            self._merger = WindowPartialMerger(decision.merge, self.workers)
        self._suffix = None
        self._suffix_sink = None
        if decision.suffix is not None:
            self._suffix = self._planner.compile(
                decision.suffix, mode="tuple", optimize=False
            )
            self._suffix_sink = self._suffix._sinks[decision.suffix.names[0]]

        self._next_chunk = 0
        self._outstanding = 0
        # Pending chunk buffers.  The ordered (row-wise) merge needs
        # chunk ids to reproduce the exact arrival order across sources,
        # so it keeps ONE buffer and ships it whenever the source
        # switches; the window merge is order-insensitive, so each
        # source buffers independently and interleaved pushes still
        # ship full chunks.
        self._pending: Dict[str, List[StreamTuple]] = {}
        self._pending_source: Optional[str] = None
        #: Trace context captured when a buffer starts filling, so a
        #: chunk shipped later from flush (no active context on that
        #: call) still carries the ingest stamp of its tuples.
        self._pending_trace: Dict[str, Optional[obs.TraceContext]] = {}
        self._flush_token = 0
        self._flushed_tokens: Dict[int, int] = {}
        self._stats_rows: Dict[int, Optional[List]] = {}
        # Checkpoint RPC bookkeeping (state_snapshot / state_restore).
        self._snapshot_token = 0
        self._snapshot_rows: Dict[int, Optional[bytes]] = {}
        self._restored_shards: Dict[int, int] = {}
        self._ordered_flush: Dict[int, List[StreamTuple]] = {}
        # Backpressure accounting (see ShardBackpressure), held as
        # repro.obs counters so shard_statistics() and the METRICS verb
        # read the same cells.
        registry = obs.get_registry()
        self._stalls = [
            registry.counter(
                "repro_shard_stalls_total", engine=self.obs_scope, shard=str(s)
            )
            for s in range(self.workers)
        ]
        self._chunks_sent = [
            registry.counter(
                "repro_shard_chunks_sent_total", engine=self.obs_scope, shard=str(s)
            )
            for s in range(self.workers)
        ]
        self._chunks_done = [
            registry.counter(
                "repro_shard_chunks_done_total", engine=self.obs_scope, shard=str(s)
            )
            for s in range(self.workers)
        ]
        #: Ring/queue occupancy proxy: chunks shipped but not yet merged,
        #: published as a gauge so health rules can watch backpressure.
        self._outstanding_gauge = registry.gauge(
            "repro_shard_outstanding", engine=self.obs_scope
        )
        self._remote: Dict[int, SocketShardChannel] = {}
        self._processes = []
        self._transports: Dict[int, ShardShmTransport] = {}
        self._finalizer = None
        # Reply plumbing: reader threads decode and merge under the
        # condition's lock; merged output queues in _ready for delivery
        # on the caller's thread (_flush_ready).
        self._reply_cv = threading.Condition()
        self._reply_error: Optional[BaseException] = None
        self._ready: deque = deque()
        self._reader_threads: List[threading.Thread] = []
        self._stop_readers = threading.Event()
        self._last_reply = time.monotonic()
        # Coordinator-side stage accounting (stage_timings()), one
        # repro.obs counter per stage.  Encode/transport are only ever
        # touched by the caller's thread; decode/merge are shared with
        # the reader threads and every increment to them happens with
        # self._reply_cv held (the shared-dict-slot concurrency lint
        # enforces the shape that used to violate this).
        self._stage = {
            stage: registry.counter(
                "repro_stage_seconds_total", engine=self.obs_scope, stage=stage
            )
            for stage in ("encode", "transport", "decode", "merge")
        }
        # Adaptive repartitioning: only meaningful with real worker
        # processes and only allowed to act when the user did not pin
        # explicit weights.
        self._adaptive = (
            self.backend == "process"
            and self.workers >= 2
            and isinstance(self.partitioner, RoundRobinPartitioner)
            and not self.partitioner.weights
        )
        self._rebalance_sent_mark = 0
        self._rebalance_done_mark = [0] * self.workers

        if self.backend == "inline":
            self._runners = [
                ShardRunner(i, decision.local, mode=self.mode, batch_size=self.batch_size)
                for i in range(self.workers)
            ]
            return

        # Deferred: repro.net imports repro.runtime.worker, so pulling
        # the net package in at module load would close an import cycle.
        from repro.net.framing import parse_frame
        from repro.net.protocol import decode_worker_message, encode_worker_message

        self._parse_frame = parse_frame
        self._decode_worker_message = decode_worker_message
        self._encode_worker_message = encode_worker_message

        local_count = self.workers - len(self.remote_shards)
        # Connect the remote shards first: a bad address then fails
        # before any segment exists or worker forks, leaving nothing to
        # clean up.  The attach carries a structural signature of the
        # shard-local plan so a server hosting a *different* query
        # rejects loudly instead of merging mismatched partials silently.
        signature = plan_signature(decision.local)
        try:
            for offset, address in enumerate(self.remote_shards):
                shard = local_count + offset
                self._remote[shard] = SocketShardChannel(
                    shard, address, plan_signature=signature
                )
        except BaseException:
            # A later address failing must not leak the shard servers
            # already attached (each serves one coordinator at a time).
            for channel in self._remote.values():
                channel.close()
            raise
        if local_count:
            try:
                for shard in range(local_count):
                    self._transports[shard] = ShardShmTransport(
                        shard, self._ring_bytes, self._queue_capacity
                    )
            except BaseException:
                _release_transports(list(self._transports.values()))
                for channel in self._remote.values():
                    channel.close()
                raise
            # GC safety net: if the engine is dropped without close(),
            # the segment names must still leave /dev/shm.
            self._finalizer = weakref.finalize(
                self, _release_transports, list(self._transports.values())
            )
            context = multiprocessing.get_context("fork")
            # Pre-fork GC hygiene (the classic pre-fork-server pattern):
            # move every object the parent has allocated so far into the
            # permanent generation.  The forked workers inherit that heap
            # and would otherwise re-traverse all of it on every one of
            # *their* gen-2 collections while they churn through tuples —
            # measured at 3x worker throughput when the parent heap is
            # large.  The parent unfreezes afterwards; the workers keep
            # the frozen heap.
            gc.collect()
            gc.freeze()
            try:
                for shard in range(local_count):
                    process = context.Process(
                        target=worker_main,
                        args=(
                            shard,
                            decision.local,
                            self.mode,
                            self.batch_size,
                            self._transports[shard],
                        ),
                        daemon=True,
                        name=f"repro-shard-{shard}",
                    )
                    process.start()
                    self._processes.append(process)
            finally:
                gc.unfreeze()
        for shard, transport in self._transports.items():
            thread = threading.Thread(
                target=self._reader_loop_shm,
                args=(transport,),
                daemon=True,
                name=f"repro-reader-{shard}",
            )
            thread.start()
            self._reader_threads.append(thread)
        for channel in self._remote.values():
            thread = threading.Thread(
                target=self._reader_loop_socket,
                args=(channel,),
                daemon=True,
                name=f"repro-reader-{channel.shard}",
            )
            thread.start()
            self._reader_threads.append(thread)

    # ------------------------------------------------------------------
    # Data flow
    # ------------------------------------------------------------------
    @property
    def sharded(self) -> bool:
        """True when the plan actually runs across shard workers."""
        return self.decision.shardable

    def _ensure_open(self) -> None:
        if self._closed:
            raise ShardError(
                "this ShardedEngine is closed; create a new one to push more data"
            )
        if getattr(self, "_reply_error", None) is not None:
            self._raise_if_failed()

    def push(self, source: str, item: StreamTuple) -> None:
        """Buffer one tuple; full chunks ship to their shard."""
        self._ensure_open()
        if not self.sharded:
            self._compiled.push(source, item)
            self._drain_fallback()
            return
        self._check_source(source)
        if self.decision.ordered and self._pending_source not in (None, source):
            self._ship_pending()
        self._pending_source = source
        buffer = self._pending.setdefault(source, [])
        if not buffer:
            self._pending_trace[source] = obs.active()
        buffer.append(item)
        if len(buffer) >= self.chunk_size:
            self._ship_buffer(source)

    def push_many(self, source: str, items: Iterable[StreamTuple]) -> None:
        """Push a sequence of tuples (chunked and partitioned across shards)."""
        self._ensure_open()
        if not self.sharded:
            self._compiled.push_many(source, items)
            self._drain_fallback()
            return
        for item in items:
            self.push(source, item)

    def _check_source(self, source: str) -> None:
        if source not in self.sources:
            raise PlanError(
                f"unknown source {source!r}; this plan reads {self.sources}"
            )

    def _ship_pending(self) -> None:
        """Ship every non-empty pending buffer."""
        for source in list(self._pending):
            self._ship_buffer(source)
        self._pending_source = None

    def _ship_buffer(self, source: str) -> None:
        items = self._pending.pop(source, None)
        if not items:
            return
        encode_start = time.perf_counter()
        # The active trace context (stamped by the session/server at
        # ingest) rides each chunk's encoded batch as a trailer, so the
        # shard workers and the reply path inherit it without any frame
        # change.  Chunk granularity: a buffer shipped mid-ingest
        # carries the current context (latest-wins); one shipped from
        # flush falls back to the context captured when it started
        # filling.
        trace = obs.active() or self._pending_trace.pop(source, None)
        split = self.partitioner.split_chunk(self._next_chunk, items, self.workers)
        shipments = []
        for shard in sorted(split):
            tuples = split[shard]
            if not tuples:
                continue
            chunk_id = self._next_chunk
            self._next_chunk += 1
            batch = TupleBatch(tuples)
            if trace is not None:
                batch.trace_id = trace.trace_id
                batch.t_ingest = trace.t_ingest
            shipments.append((shard, chunk_id, encode_batch_wire(batch)))
        encode_seconds = time.perf_counter() - encode_start
        self._stage["encode"].inc(encode_seconds)
        traced = trace is not None and obs.sampled_trace(trace)
        if traced and shipments:
            now = obs.trace_clock()
            obs.record_span(
                "shard.encode",
                "shard",
                trace.trace_id,
                now - encode_seconds,
                now,
                parent_id=obs.root_span_id(trace.trace_id),
            )
        window_merger = isinstance(self._merger, WindowPartialMerger)
        for shard, chunk_id, payload in shipments:
            with self._reply_cv:
                self._outstanding += 1
                self._outstanding_gauge.set(self._outstanding)
                if window_merger:
                    self._merger.mark_fed(shard)
            self._chunks_sent[shard].inc()
            if traced:
                # The ship span's id is the deterministic hand-off key:
                # the worker parents its exec span to this exact string
                # without any id crossing the wire.
                t0 = obs.trace_clock()
                self._send(shard, ("chunk", source, chunk_id, payload))
                obs.record_span(
                    "shard.ship",
                    "shard",
                    trace.trace_id,
                    t0,
                    obs.trace_clock(),
                    span_id=obs.chunk_span_id(trace.trace_id, shard, chunk_id),
                    parent_id=obs.root_span_id(trace.trace_id),
                )
            else:
                self._send(shard, ("chunk", source, chunk_id, payload))
        if shipments:
            self._flush_ready()
            self._maybe_rebalance()

    def _maybe_rebalance(self) -> None:
        """Recompute round-robin weights from per-shard completion rates.

        The adaptive loop of the sharded runtime: every
        ``_REBALANCE_INTERVAL`` chunks, the chunks each shard completed
        since the last checkpoint (its observed service rate) and its
        current in-flight backlog feed
        :func:`~repro.runtime.partition.compute_adaptive_weights`; a
        shard that falls behind — a remote link, a loaded host — gets
        proportionally fewer future chunks.  Chunk ids stay one global
        sequence, so the ordered merge is unaffected.
        """
        if not self._adaptive:
            return
        sent = sum(int(c.value) for c in self._chunks_sent)
        if sent - self._rebalance_sent_mark < _REBALANCE_INTERVAL:
            return
        self._rebalance_sent_mark = sent
        with self._reply_cv:
            done = [int(c.value) for c in self._chunks_done]
        deltas = [d - mark for d, mark in zip(done, self._rebalance_done_mark)]
        self._rebalance_done_mark = done
        in_flight = [int(self._chunks_sent[s].value) - done[s] for s in range(self.workers)]
        weights = compute_adaptive_weights(deltas, in_flight)
        if tuple(weights) != self.partitioner.weights:
            self.partitioner.set_weights(weights)

    # ------------------------------------------------------------------
    # Worker I/O
    # ------------------------------------------------------------------
    def _send(self, shard: int, message) -> None:
        if self.backend == "inline":
            self._apply_reply(*self._decode_reply(self._run_inline(shard, message)))
            self._flush_ready()
            return
        send_start = time.perf_counter()
        channel = self._remote.get(shard)
        if channel is not None:
            channel.queue_message(message)
            while not channel.pump_send():
                if not channel.alive:
                    raise ShardError(
                        f"lost the connection to remote shard {shard} "
                        f"({channel.address}) while sending"
                    )
                self._stalls[shard].inc()
                self._raise_if_failed()
                self._check_workers_alive()
                channel.wait_writable(0.05)
        else:
            frame = self._encode_worker_message(message)
            self._transports[shard].send(
                frame, on_stall=lambda: self._on_send_stall(shard)
            )
        self._stage["transport"].inc(time.perf_counter() - send_start)

    def _on_send_stall(self, shard: int) -> None:
        """One failed send pass: count it, fail fast, let readers work."""
        self._stalls[shard].inc()
        self._raise_if_failed()
        self._check_workers_alive()
        time.sleep(_STALL_BACKOFF)

    def _run_inline(self, shard: int, message):
        runner = self._runners[shard]
        kind = message[0]
        if kind == "chunk":
            _, source, chunk_id, payload = message
            batch = decode_batch(payload)
            trace_id = batch.trace_id
            if trace_id is not None and obs.sampled(trace_id):
                # Inline shards run in the coordinator process, so the
                # exec span records straight into the local buffer (the
                # results tuple carries no spans) — same ids as a real
                # worker would produce.
                exec_id = obs.exec_span_id(trace_id, shard, chunk_id)
                previous_parent = obs.activate_parent(exec_id)
                t0 = obs.trace_clock()
                try:
                    outputs, watermark = runner.chunk(source, batch)
                finally:
                    obs.activate_parent(previous_parent)
                obs.record_span(
                    "shard.exec",
                    "shard",
                    trace_id,
                    t0,
                    obs.trace_clock(),
                    span_id=exec_id,
                    parent_id=obs.chunk_span_id(trace_id, shard, chunk_id),
                )
            else:
                outputs, watermark = runner.chunk(source, batch)
            out_batch = TupleBatch(outputs)
            out_batch.trace_id, out_batch.t_ingest = batch.trace_id, batch.t_ingest
            return ("results", shard, chunk_id, encode_batch_wire(out_batch), watermark)
        if kind == "flush":
            return ("flushed", shard, message[1], encode_batch_wire(TupleBatch(runner.flush())))
        if kind == "stats":
            return ("stats", shard, runner.statistics_rows())
        if kind == "snapshot":
            return ("snapshot", shard, message[1], runner.state_payload())
        if kind == "restore":
            runner.restore_payload(message[2])
            return ("restored", shard, message[1])
        raise RuntimeError(f"unknown inline message {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Reply fan-in (reader threads)
    # ------------------------------------------------------------------
    def _reader_loop_shm(self, transport: ShardShmTransport) -> None:
        """Drain one shard's reply ring: parse in place, decode, merge."""
        parse_frame = self._parse_frame
        decode_message = self._decode_worker_message
        try:
            while not self._stop_readers.is_set():
                view = transport.poll_reply(0.1)
                if view is None:
                    continue
                kind, header, payload = parse_frame(view)
                message = decode_message(kind, header, payload)
                reply, decode_seconds = self._decode_reply(message)
                if isinstance(payload, memoryview):
                    payload.release()
                transport.release_reply()
                self._apply_reply(reply, decode_seconds)
        except BaseException as exc:
            self._note_reply_error(exc)

    def _reader_loop_socket(self, channel: SocketShardChannel) -> None:
        """Drain one remote shard's socket: decode frames, merge."""
        try:
            while not self._stop_readers.is_set():
                try:
                    select.select((channel.sock,), (), (), 0.1)
                except (OSError, ValueError):
                    pass
                for message in channel.poll():
                    self._apply_reply(*self._decode_reply(message))
                if not channel.alive:
                    if not self._stop_readers.is_set():
                        raise ShardError(
                            f"lost the connection to remote shard {channel.shard} "
                            f"({channel.address})"
                        )
                    return
        except BaseException as exc:
            self._note_reply_error(exc)

    def _decode_reply(self, message):
        """Normalize a worker reply: decode batch payloads into rows.

        Runs *outside* the merge lock — payload decoding is the
        expensive part of fan-in and must overlap across reader
        threads.  Returns ``(reply, decode_seconds)``.
        """
        kind = message[0]
        if kind == "results":
            decode_start = time.perf_counter()
            shard, chunk_id, payload, watermark = message[1:5]
            spans = message[5] if len(message) > 5 else []
            batch = decode_batch(payload)
            rows = batch.to_tuples()
            trace = (
                obs.TraceContext(batch.trace_id, batch.t_ingest)
                if batch.trace_id is not None
                else None
            )
            decode_seconds = time.perf_counter() - decode_start
            if trace is not None and obs.sampled_trace(trace):
                now = obs.trace_clock()
                obs.record_span(
                    "shard.decode",
                    "shard",
                    trace.trace_id,
                    now - decode_seconds,
                    now,
                    parent_id=obs.exec_span_id(trace.trace_id, shard, chunk_id),
                )
            return (
                ("results", shard, chunk_id, rows, watermark, trace, spans),
                decode_seconds,
            )
        if kind == "flushed":
            decode_start = time.perf_counter()
            _, shard, token, payload = message
            rows = decode_batch(payload).to_tuples()
            return ("flushed", shard, token, rows), time.perf_counter() - decode_start
        if kind == "snapshot":
            # State payloads may be views into a reply ring about to be
            # released; copy the bytes out here, off the merge lock.
            _, shard, token, payload = message
            return ("snapshot", shard, token, bytes(payload)), 0.0
        return message, 0.0

    def _apply_reply(self, reply, decode_seconds: float) -> None:
        """Account one normalized reply and feed the merge (thread-safe)."""
        kind = reply[0]
        with self._reply_cv:
            self._stage["decode"].inc(decode_seconds)
            self._last_reply = time.monotonic()
            if kind == "results":
                _, shard, chunk_id, rows, watermark, trace, spans = reply
                self._outstanding -= 1
                self._outstanding_gauge.set(self._outstanding)
                self._chunks_done[shard].inc()
                if spans:
                    # Worker-side spans of a sampled trace, shipped in
                    # the reply header: fold them into the coordinator's
                    # buffer so one export holds the whole tree.
                    obs.local_spans().ingest(spans)
                merge_start = time.perf_counter()
                if isinstance(self._merger, OrderedChunkMerger):
                    merged = self._merger.ingest(chunk_id, rows)
                else:
                    merged = self._merger.ingest(shard, rows, watermark)
                merge_seconds = time.perf_counter() - merge_start
                self._stage["merge"].inc(merge_seconds)
                if trace is not None and obs.sampled_trace(trace):
                    now = obs.trace_clock()
                    obs.record_span(
                        "shard.merge",
                        "shard",
                        trace.trace_id,
                        now - merge_seconds,
                        now,
                        parent_id=obs.root_span_id(trace.trace_id),
                    )
                if merged:
                    self._ready.append((merged, trace))
            elif kind == "flushed":
                _, shard, token, rows = reply
                self._flushed_tokens[shard] = token
                if isinstance(self._merger, OrderedChunkMerger):
                    self._ordered_flush.setdefault(shard, []).extend(rows)
                else:
                    merge_start = time.perf_counter()
                    merged = self._merger.ingest(shard, rows, math.inf)
                    self._stage["merge"].inc(time.perf_counter() - merge_start)
                    if merged:
                        self._ready.append((merged, None))
            elif kind == "stats":
                self._stats_rows[reply[1]] = reply[2]
            elif kind == "snapshot":
                self._snapshot_rows[reply[1]] = reply[3]
            elif kind == "restored":
                self._restored_shards[reply[1]] = reply[2]
            elif kind == "error":
                raise ShardError(f"shard {reply[1]} failed:\n{reply[2]}")
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown worker reply {kind!r}")
            self._reply_cv.notify_all()

    def _note_reply_error(self, exc: BaseException) -> None:
        with self._reply_cv:
            if self._reply_error is None:
                self._reply_error = exc
            self._reply_cv.notify_all()

    def _raise_if_failed(self) -> None:
        exc = self._reply_error
        if exc is None:
            return
        if isinstance(exc, ShardError):
            raise exc
        raise ShardError(f"shard reply handling failed: {exc!r}") from exc

    def _await_replies(self, predicate, timeout: float = _REPLY_TIMEOUT) -> None:
        """Block until ``predicate()`` holds (called with the lock held).

        ``timeout`` is an *inactivity* bound: it restarts on every
        received reply, so a slow-but-progressing shard never trips it —
        only a shard that stops replying altogether does.
        """
        if self.backend == "inline":
            return
        with self._reply_cv:
            self._last_reply = max(self._last_reply, time.monotonic())
            while True:
                self._raise_if_failed()
                if predicate():
                    return
                self._reply_cv.wait(0.05)
                self._raise_if_failed()
                if predicate():
                    return
                self._check_workers_alive()
                if time.monotonic() - self._last_reply > timeout:
                    raise ShardError(
                        f"no shard replies for {timeout:.0f}s while waiting to drain"
                    )

    def _flush_ready(self) -> None:
        """Deliver merged output queued by the reader threads.

        Runs on the caller's thread only: the suffix engine and the
        user sink (which may be a service-layer subscription fan-out)
        keep their single-threaded contract.
        """
        ready = getattr(self, "_ready", None)
        if not ready:
            return
        while True:
            try:
                merged, trace = ready.popleft()
            except IndexError:
                return
            merge_start = time.perf_counter()
            self._deliver(merged, trace)
            with self._reply_cv:
                self._stage["merge"].inc(time.perf_counter() - merge_start)

    def _deliver(self, merged: List[StreamTuple], trace=None) -> None:
        """Route merged tuples through the coordinator suffix to the sink.

        When the batch that produced these rows carried a trace context,
        it is re-activated around delivery so downstream sinks (the
        service layer's per-query latency histograms in particular) see
        the originating ``t_ingest``.
        """
        if not merged:
            return
        previous = obs.activate(trace) if trace is not None else None
        traced = trace is not None and obs.sampled_trace(trace)
        t0 = obs.trace_clock() if traced else 0.0
        try:
            if self._suffix is not None:
                for item in merged:
                    self._suffix.push(PARTIAL_SOURCE, item)
                merged = list(self._suffix_sink.results)
                self._suffix_sink.results.clear()
            for item in merged:
                self._sink.accept(item)
        finally:
            if traced:
                obs.record_span(
                    "sink.deliver",
                    "sink",
                    trace.trace_id,
                    t0,
                    obs.trace_clock(),
                    parent_id=obs.root_span_id(trace.trace_id),
                )
            if trace is not None:
                obs.activate(previous)

    def _check_workers_alive(self) -> None:
        for process in getattr(self, "_processes", ()):
            if not process.is_alive() and process.exitcode not in (0, None):
                raise ShardError(
                    f"{process.name} exited with code {process.exitcode} "
                    "without reporting an error"
                )
        for channel in getattr(self, "_remote", {}).values():
            if not channel.alive:
                raise ShardError(
                    f"lost the connection to remote shard {channel.shard} "
                    f"({channel.address})"
                )

    def _drain_fallback(self) -> None:
        """Move fallback results from the compiled sink through the user sink."""
        results = self._compiled_sink.results
        if not results:
            return
        for item in list(results):
            self._sink.accept(item)
        results.clear()

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    def finish(self) -> List[StreamTuple]:
        """Drain the pipeline: flush every shard, merge everything pending.

        Mirrors ``StreamEngine.finish``: partial windows close and their
        results are emitted; the engine stays usable for further pushes.
        """
        self._ensure_open()
        if not self.sharded:
            self._compiled.finish()
            self._drain_fallback()
            return self.results
        self._ship_pending()
        self._flush_token += 1
        token = self._flush_token
        for shard in range(self.workers):
            self._send(shard, ("flush", token))
        self._await_replies(
            lambda: self._outstanding == 0
            and all(self._flushed_tokens.get(s) == token for s in range(self.workers))
        )
        self._flush_ready()
        with self._reply_cv:
            merge_start = time.perf_counter()
            merged = self._merger.drain()
            if isinstance(self._merger, OrderedChunkMerger):
                tails = [self._ordered_flush.pop(s, []) for s in range(self.workers)]
            else:
                tails = []
            self._stage["merge"].inc(time.perf_counter() - merge_start)
        self._deliver(merged)
        for rows in tails:
            self._deliver(rows)
        if self._suffix is not None:
            self._suffix.engine.finish()
            leftovers = list(self._suffix_sink.results)
            self._suffix_sink.results.clear()
            for item in leftovers:
                self._sink.accept(item)
        return self.results

    # ------------------------------------------------------------------
    # Durability: quiesce + coordinated state snapshot/restore
    # ------------------------------------------------------------------
    def quiesce(self) -> None:
        """Drain in-flight work without closing windows.

        Ships every buffered partial chunk, waits for the workers to
        answer all outstanding chunks, and delivers the merged results.
        Unlike :meth:`finish` this sends no flush: open windows stay
        open in the workers, so a snapshot taken afterwards captures a
        state from which processing continues exactly where it stopped.
        """
        self._ensure_open()
        if not self.sharded:
            # Fallback pushes run synchronously; nothing is in flight.
            self._drain_fallback()
            return
        self._ship_pending()
        self._await_replies(lambda: self._outstanding == 0)
        self._flush_ready()

    def state_snapshot(self) -> dict:
        """Quiesce and capture the engine's complete mutable state.

        Sharded engines fan a snapshot request out to every shard over
        the shm/socket transports (workers serialize their own operator
        state via the wire format) and combine it with the coordinator's
        merger, suffix-plan and partitioner state.  The single-engine
        fallback snapshots its compiled engine directly.
        """
        from repro.recovery.state import decode_state, snapshot_engine_ops

        self._ensure_open()
        if not self.sharded:
            self.quiesce()
            return {
                "mode": "fallback",
                "ops": snapshot_engine_ops(self._compiled.engine),
            }
        self.quiesce()
        shard_states: Dict[str, dict] = {}
        self._snapshot_token += 1
        token = self._snapshot_token
        with self._reply_cv:
            self._snapshot_rows = {shard: None for shard in range(self.workers)}
        for shard in range(self.workers):
            self._send(shard, ("snapshot", token))
        self._await_replies(
            lambda: all(
                self._snapshot_rows.get(s) is not None for s in range(self.workers)
            )
        )
        with self._reply_cv:
            rows = dict(self._snapshot_rows)
        for shard, payload in rows.items():
            shard_states[str(shard)] = decode_state(payload)
        weights = getattr(self.partitioner, "weights", None)
        return {
            "mode": "sharded",
            "next_chunk": self._next_chunk,
            "weights": list(weights) if weights else None,
            "merger": self._merger.state_snapshot(),
            "suffix": (
                snapshot_engine_ops(self._suffix.engine)
                if self._suffix is not None
                else None
            ),
            "shards": shard_states,
        }

    def state_restore(self, state: dict) -> None:
        """Install a :meth:`state_snapshot` into a freshly built engine.

        Must run before any pushes; requires the same query, worker
        count and sharding decision as the engine that took the
        snapshot.
        """
        from repro.recovery.state import encode_state, restore_engine_ops

        self._ensure_open()
        if not self.sharded:
            if state.get("mode") != "fallback":
                raise ShardError(
                    "checkpoint was taken from a sharded engine but this engine "
                    "runs the single-engine fallback; recover with the same "
                    "worker count"
                )
            restore_engine_ops(self._compiled.engine, state["ops"])
            return
        if state.get("mode") != "sharded":
            raise ShardError(
                "checkpoint was taken from a single-engine fallback but this "
                "engine is sharded; recover with the same worker count"
            )
        shard_states = state["shards"]
        if len(shard_states) != self.workers:
            raise ShardError(
                f"checkpoint recorded {len(shard_states)} shard states, this "
                f"engine has workers={self.workers}"
            )
        self._next_chunk = int(state["next_chunk"])
        weights = state.get("weights")
        if (
            weights
            and isinstance(self.partitioner, RoundRobinPartitioner)
            and len(weights) == self.workers
        ):
            self.partitioner.set_weights([int(w) for w in weights])
        self._merger.state_restore(state["merger"])
        if state.get("suffix") is not None:
            if self._suffix is None:
                raise ShardError(
                    "checkpoint carries a coordinator suffix state but this "
                    "engine compiled no suffix plan"
                )
            restore_engine_ops(self._suffix.engine, state["suffix"])
        self._snapshot_token += 1
        token = self._snapshot_token
        with self._reply_cv:
            self._restored_shards = {}
        for shard in range(self.workers):
            payload = encode_state(shard_states[str(shard)])
            self._send(shard, ("restore", token, payload))
        self._await_replies(
            lambda: all(
                self._restored_shards.get(s) == token for s in range(self.workers)
            )
        )

    def close(self) -> None:
        """Stop the workers, release and unlink the transports (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self.sharded or self.backend == "inline":
            return
        # 1. Stop the reader threads: from here the main thread owns
        #    the consumer side of every reply ring.
        self._stop_readers.set()
        for thread in self._reader_threads:
            thread.join(timeout=2.0)
        # 2. Ask the local workers to stop (best effort — the inbound
        #    ring may be full if a worker is wedged).
        if self._transports:
            stop_frame = self._encode_worker_message(("stop",))
            for transport in self._transports.values():
                transport.try_send(stop_frame, timeout=0.5)
        # 3. Join, draining reply rings so a worker blocked mid-reply
        #    can finish its write and see the stop frame.
        deadline = time.monotonic() + 2.0
        for process in self._processes:
            while process.is_alive() and time.monotonic() < deadline:
                for transport in self._transports.values():
                    try:
                        transport.drain_replies()
                    except BaseException:  # pragma: no cover - corrupt ring
                        pass
                process.join(timeout=0.05)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - worker wedged
                process.terminate()
                process.join(timeout=1.0)
        for channel in self._remote.values():
            channel.close()
        # 4. Unmap and unlink every segment: after this no /dev/shm
        #    entry of this engine remains.
        _release_transports(list(self._transports.values()))
        if self._finalizer is not None:
            self._finalizer.detach()

    def __enter__(self) -> ShardedEngine:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Results & introspection
    # ------------------------------------------------------------------
    @property
    def results(self) -> List[StreamTuple]:
        """All merged results delivered to the default sink so far."""
        self._flush_ready()
        return list(getattr(self._sink, "results", ()))

    def take(self) -> List[StreamTuple]:
        """Drain and return the collected results."""
        self._flush_ready()
        results = getattr(self._sink, "results", None)
        if results is None:
            return []
        out = list(results)
        results.clear()
        return out

    def statistics(self) -> ShardedStatistics:
        """Per-shard operator statistics plus the coordinator's own boxes."""
        coordinator: List[OperatorStats] = []
        if not self.sharded:
            return ShardedStatistics(
                shards={}, coordinator=self._compiled.statistics(detailed=True)
            )
        self._ensure_open()
        with self._reply_cv:
            self._stats_rows = {shard: None for shard in range(self.workers)}
        for shard in range(self.workers):
            self._send(shard, ("stats",))
        self._await_replies(
            lambda: all(
                self._stats_rows.get(s) is not None for s in range(self.workers)
            )
        )
        shards = {
            shard: [OperatorStats(*row) for row in rows]
            for shard, rows in self._stats_rows.items()
        }
        if self._suffix is not None:
            coordinator.extend(self._suffix.statistics(detailed=True))
        sink_view = obs.get_registry().operator_view(self.obs_scope, self._sink)
        coordinator.append(OperatorStats(*sink_view.stats()))
        return ShardedStatistics(
            shards=shards,
            coordinator=coordinator,
            backpressure=self.shard_statistics(),
        )

    def shard_statistics(self) -> Dict[int, ShardBackpressure]:
        """Per-shard backpressure state: queue depth, in-flight, stalls.

        Cheap (no worker round trip), so it is safe to sample in a hot
        monitoring loop; the single-engine fallback returns ``{}``.
        """
        if not self.sharded:
            return {}
        report: Dict[int, ShardBackpressure] = {}
        for shard in range(self.workers):
            channel = self._remote.get(shard)
            queue_depth = 0
            backlog = 0
            if self.backend == "inline":
                transport = "inline"
            elif channel is not None:
                transport = "socket"
                backlog = channel.send_backlog_bytes
            else:
                transport = "shm"
                queue_depth = self._transports[shard].queue_depth
            report[shard] = ShardBackpressure(
                shard=shard,
                transport=transport,
                queue_depth=queue_depth,
                in_flight_chunks=int(self._chunks_sent[shard].value)
                - int(self._chunks_done[shard].value),
                stalls=int(self._stalls[shard].value),
                chunks_sent=int(self._chunks_sent[shard].value),
                send_backlog_bytes=backlog,
            )
        return report

    def stage_timings(self) -> Dict[str, float]:
        """Cumulative coordinator-side seconds per pipeline stage.

        ``encode`` — partition + columnar wire encoding of outbound
        chunks; ``transport`` — time spent handing frames to shard
        transports, including backpressure stalls; ``decode`` — reply
        payloads back into tuples (reader threads, overlapped);
        ``merge`` — merge-operator ingest plus suffix/sink delivery.
        The single-engine fallback reports zeros.
        """
        if not self.sharded:
            return {"encode": 0.0, "transport": 0.0, "decode": 0.0, "merge": 0.0}
        with self._reply_cv:
            return {name: counter.value for name, counter in self._stage.items()}

    def explain(self) -> str:
        """The sharding decision, runtime configuration and fallback plan."""
        lines = [explain_sharding(self.decision, workers=self.workers)]
        lines.append("")
        lines.append("Runtime")
        lines.append("-------")
        lines.append(f"backend: {self.backend}")
        if self.backend == "process":
            lines.append(
                f"shard transport: shared-memory rings, ring_bytes={self._ring_bytes}"
            )
            lines.append(
                "adaptive repartitioning: "
                + ("on" if getattr(self, "_adaptive", False) else "off")
            )
        if self.remote_shards:
            local = self.workers - len(self.remote_shards)
            lines.append(
                f"remote shards: {local}..{self.workers - 1} over TCP "
                f"({', '.join(self.remote_shards)})"
            )
        lines.append(f"partitioner: {self.partitioner!r}")
        lines.append(
            f"chunk_size: {self.chunk_size}, queue_capacity: {self._queue_capacity}"
        )
        lines.append(f"worker execution: mode={self.mode}, batch_size={self.batch_size}")
        if not self.sharded:
            lines.append("")
            lines.append(self._compiled.explain())
        return "\n".join(lines)
