"""`ShardedEngine`: partitioned multi-process execution of one query.

The parent process partitions source tuples into chunks, ships them to
N worker processes over bounded queues (each worker runs a full
:class:`~repro.streams.engine.StreamEngine` on the shard-local plan
segment), and recombines the workers' outputs through the
uncertainty-aware merge operators of :mod:`repro.runtime.merge`:

* aggregate-split plans merge per-window partial moments/mixtures and
  apply HAVING (plus any row-wise coordinator suffix) on the merged
  result;
* row-wise plans reassemble chunk outputs in global input order.

Plans the sharding pass rejects (joins, count windows, ...) fall back
to a single in-process engine behind the same interface, and
``explain()`` says why — sharded and unsharded queries are driven
identically.

Backpressure is structural: the per-worker input queues and the shared
result queue are bounded, the parent drains results whenever a send
would block, and workers block on the result queue when the parent
lags.  ``finish()`` drains the pipeline (flushes every shard's partial
windows and merges everything pending); ``close()`` shuts the workers
down; the engine is a context manager that closes on exit.

Workers are forked, not spawned: logical plans carry closures
(predicates, derive functions, group keys) that never pickle, but fork
inherits them by address space.  Tuples cross processes only through
:mod:`repro.streams.serialization`.

Shards need not be local: ``remote_shards=["host:port", ...]`` assigns
the highest shard slots to :class:`repro.net.shard.ShardServer`
processes reached over TCP (:mod:`repro.runtime.transport`), speaking
the same worker protocol with frames instead of queue messages — the
multi-machine topology behind one coordinator interface.
"""

from __future__ import annotations

import gc
import math
import multiprocessing
import queue as queue_module
import select
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.plan.builder import Stream
from repro.plan.nodes import LogicalPlan, PlanError
from repro.plan.planner import Planner
from repro.plan.sharding import (
    PARTIAL_SOURCE,
    ShardingDecision,
    explain_sharding,
    split_for_sharding,
)
from repro.streams.batch import TupleBatch
from repro.streams.engine import OperatorStats
from repro.streams.operators.base import Operator
from repro.streams.operators.basic import CollectSink
from repro.streams.serialization import decode_batch, encode_batch_wire
from repro.streams.tuples import StreamTuple

from .merge import OrderedChunkMerger, WindowPartialMerger
from .partition import Partitioner, resolve_partitioner
from .transport import SocketShardChannel
from .worker import ShardRunner, plan_signature, worker_main

__all__ = ["ShardedEngine", "ShardError", "ShardedStatistics", "ShardBackpressure"]

#: How long finish()/statistics() wait for worker replies before
#: declaring a shard dead.
_REPLY_TIMEOUT = 60.0


class ShardError(RuntimeError):
    """A worker process failed (its traceback is in the message)."""


@dataclass(frozen=True)
class ShardBackpressure:
    """Flow-control state of one shard, as seen by the coordinator.

    ``stalls`` counts the times a send to this shard could not proceed
    immediately (input queue full, or socket send buffer full) and the
    coordinator had to drain replies instead — the cumulative
    backpressure signal.  ``queue_depth`` is the chunks currently
    waiting in a local worker's input queue; ``in_flight_chunks`` the
    chunks shipped but not yet answered (meaningful for every
    transport); ``send_backlog_bytes`` the bytes a socket transport has
    buffered but not yet written.
    """

    shard: int
    transport: str  # "queue", "socket" or "inline"
    queue_depth: int
    in_flight_chunks: int
    stalls: int
    chunks_sent: int
    send_backlog_bytes: int = 0


@dataclass(frozen=True)
class ShardedStatistics:
    """Per-shard and coordinator box statistics."""

    shards: Dict[int, List[OperatorStats]]
    coordinator: List[OperatorStats]
    backpressure: Dict[int, ShardBackpressure] = field(default_factory=dict)


class ShardedEngine:
    """Run one compiled query across N shard processes (see module docs).

    Parameters
    ----------
    query:
        A :class:`~repro.plan.Stream` or single-output
        :class:`~repro.plan.LogicalPlan`.
    workers:
        Shard count.  ``0`` forces the single-engine fallback.
    partitioner:
        ``"round_robin"`` (default), ``"hash:<attribute>"`` or a
        :class:`~repro.runtime.partition.Partitioner`.  Hash
        partitioning is only accepted for aggregate-split plans, whose
        merge is order-insensitive.
    backend:
        ``"process"`` (forked workers, the real runtime) or
        ``"inline"`` (shards run synchronously in-process through the
        same protocol — deterministic, for tests and platforms without
        ``fork``).
    chunk_size:
        Tuples per shipped chunk.
    queue_capacity:
        Bound of each worker's input queue, in chunks; the shared
        result queue is bounded proportionally.  This is the
        backpressure knob: total in-flight tuples are at most
        ``workers * queue_capacity * chunk_size`` each way.
    mode / batch_size:
        Execution mode for the shard-local engines (as in
        ``Planner.compile``); ``"auto"`` lets each worker's cost model
        decide.
    remote_shards:
        TCP addresses (``"host:port"``) of running
        :class:`repro.net.shard.ShardServer` processes.  The *highest*
        shard slots connect there instead of forking: with
        ``workers=4`` and two addresses, shards 0–1 fork locally and
        shards 2–3 run remotely.  Requires the ``"process"`` backend;
        when the plan falls back to a single engine the addresses are
        unused.  The remote server must host the same query (see
        :mod:`repro.net.shard` on plan distribution).
    sink:
        Optional result sink operator; every merged result is delivered
        through ``sink.accept``.  Defaults to a
        :class:`~repro.streams.operators.basic.CollectSink` exposed via
        :attr:`results`.
    """

    def __init__(
        self,
        query: Union[Stream, LogicalPlan],
        workers: int = 2,
        partitioner: Union[str, Partitioner] = "round_robin",
        backend: str = "process",
        chunk_size: int = 1024,
        queue_capacity: int = 8,
        mode: str = "auto",
        batch_size: Optional[int] = None,
        planner: Optional[Planner] = None,
        optimize: bool = True,
        sink: Optional[Operator] = None,
        remote_shards: Iterable[str] = (),
    ):
        if workers < 0:
            raise PlanError(f"workers must be non-negative, got {workers}")
        if chunk_size < 1:
            raise PlanError(f"chunk_size must be at least 1, got {chunk_size}")
        if queue_capacity < 1:
            raise PlanError(f"queue_capacity must be at least 1, got {queue_capacity}")
        if backend not in ("process", "inline"):
            raise PlanError(f"unknown backend {backend!r}; use 'process' or 'inline'")
        self.remote_shards = tuple(remote_shards)
        if self.remote_shards:
            if backend != "process":
                raise PlanError(
                    "remote_shards requires the 'process' backend "
                    f"(got {backend!r}); the inline backend is single-process"
                )
            if len(self.remote_shards) > workers:
                raise PlanError(
                    f"{len(self.remote_shards)} remote shard addresses but only "
                    f"workers={workers} shard slots"
                )

        if isinstance(query, Stream):
            plan = query.plan()
        elif isinstance(query, LogicalPlan):
            plan = query
            plan.validate()
        else:
            raise PlanError(
                f"ShardedEngine takes a Stream or LogicalPlan, got {type(query).__name__}"
            )

        self._planner = planner or Planner()
        self._optimize = optimize
        self.workers = workers
        self.backend = backend
        self.chunk_size = chunk_size
        self._queue_capacity = queue_capacity
        self.mode = mode
        self.batch_size = batch_size
        self._sink = sink if sink is not None else CollectSink(name="sink:sharded")
        self._closed = False

        if optimize:
            optimized, _ = self._planner.optimize(plan)
            optimized.validate()
        else:
            optimized = plan
        if workers == 0:
            self.decision = ShardingDecision(
                shardable=False, reason="workers=0 pins the single-engine fallback"
            )
        else:
            self.decision = split_for_sharding(optimized, self._planner.cost_model)

        self.partitioner = resolve_partitioner(partitioner)
        weights = getattr(self.partitioner, "weights", ())
        if weights and len(weights) != workers:
            # Fail before any worker forks; split_chunk would only
            # notice at the first full chunk, mid-stream.
            raise PlanError(
                f"round-robin weights cover {len(weights)} shards "
                f"but workers={workers}"
            )
        if (
            self.decision.shardable
            and self.decision.partitioning == "chunked"
            and not self.partitioner.preserves_order
        ):
            raise PlanError(
                f"{self.partitioner!r} does not preserve the global input order, "
                "which this row-wise plan's ordered merge requires; use the "
                "round-robin partitioner (or an aggregate-split plan)"
            )

        if not self.decision.shardable:
            # Single-engine fallback behind the sharded interface.
            self._compiled = self._planner.compile(
                plan, mode=mode, batch_size=batch_size, optimize=optimize
            )
            self._compiled_sink = self._compiled._sinks[self._compiled.logical_plan.names[0]]
            self.sources = list(self._compiled.sources)
        else:
            self._init_sharded()

    # ------------------------------------------------------------------
    # Sharded state
    # ------------------------------------------------------------------
    def _init_sharded(self) -> None:
        """Build mergers, suffix engine and the worker pool."""
        decision = self.decision
        self.sources = sorted(s.name for s in decision.local.sources)
        if decision.ordered:
            self._merger = OrderedChunkMerger()
        else:
            self._merger = WindowPartialMerger(decision.merge, self.workers)
        self._suffix = None
        self._suffix_sink = None
        if decision.suffix is not None:
            self._suffix = self._planner.compile(
                decision.suffix, mode="tuple", optimize=False
            )
            self._suffix_sink = self._suffix._sinks[decision.suffix.names[0]]

        self._next_chunk = 0
        self._outstanding = 0
        # Pending chunk buffers.  The ordered (row-wise) merge needs
        # chunk ids to reproduce the exact arrival order across sources,
        # so it keeps ONE buffer and ships it whenever the source
        # switches; the window merge is order-insensitive, so each
        # source buffers independently and interleaved pushes still
        # ship full chunks.
        self._pending: Dict[str, List[StreamTuple]] = {}
        self._pending_source: Optional[str] = None
        self._flush_token = 0
        self._flushed_tokens: Dict[int, int] = {}
        self._stats_rows: Dict[int, Optional[List]] = {}
        self._ordered_flush: Dict[int, List[StreamTuple]] = {}
        # Backpressure accounting (see ShardBackpressure).
        self._stalls = [0] * self.workers
        self._chunks_sent = [0] * self.workers
        self._chunks_done = [0] * self.workers
        self._remote: Dict[int, SocketShardChannel] = {}
        self._processes = []
        self._out_queue = None

        if self.backend == "inline":
            self._runners = [
                ShardRunner(i, decision.local, mode=self.mode, batch_size=self.batch_size)
                for i in range(self.workers)
            ]
            return
        local_count = self.workers - len(self.remote_shards)
        # Connect the remote shards first: a bad address then fails
        # before any worker forks, leaving nothing to clean up.  The
        # attach carries a structural signature of the shard-local plan
        # so a server hosting a *different* query rejects loudly
        # instead of merging mismatched partials silently.
        signature = plan_signature(decision.local)
        try:
            for offset, address in enumerate(self.remote_shards):
                shard = local_count + offset
                self._remote[shard] = SocketShardChannel(
                    shard, address, plan_signature=signature
                )
        except BaseException:
            # A later address failing must not leak the shard servers
            # already attached (each serves one coordinator at a time).
            for channel in self._remote.values():
                channel.close()
            raise
        if local_count == 0:
            return
        context = multiprocessing.get_context("fork")
        self._in_queues = [
            context.Queue(maxsize=self._queue_capacity) for _ in range(local_count)
        ]
        self._out_queue = context.Queue(maxsize=max(16, self._queue_capacity * local_count))
        # Pre-fork GC hygiene (the classic pre-fork-server pattern): move
        # every object the parent has allocated so far into the permanent
        # generation.  The forked workers inherit that heap and would
        # otherwise re-traverse all of it on every one of *their* gen-2
        # collections while they churn through tuples — measured at 3x
        # worker throughput when the parent heap is large.  The parent
        # unfreezes afterwards; the workers keep the frozen heap.
        gc.collect()
        gc.freeze()
        try:
            for shard in range(local_count):
                process = context.Process(
                    target=worker_main,
                    args=(
                        shard,
                        decision.local,
                        self.mode,
                        self.batch_size,
                        self._in_queues[shard],
                        self._out_queue,
                    ),
                    daemon=True,
                    name=f"repro-shard-{shard}",
                )
                process.start()
                self._processes.append(process)
        finally:
            gc.unfreeze()

    # ------------------------------------------------------------------
    # Data flow
    # ------------------------------------------------------------------
    @property
    def sharded(self) -> bool:
        """True when the plan actually runs across shard workers."""
        return self.decision.shardable

    def _ensure_open(self) -> None:
        if self._closed:
            raise ShardError(
                "this ShardedEngine is closed; create a new one to push more data"
            )

    def push(self, source: str, item: StreamTuple) -> None:
        """Buffer one tuple; full chunks ship to their shard."""
        self._ensure_open()
        if not self.sharded:
            self._compiled.push(source, item)
            self._drain_fallback()
            return
        self._check_source(source)
        if self.decision.ordered and self._pending_source not in (None, source):
            self._ship_pending()
        self._pending_source = source
        buffer = self._pending.setdefault(source, [])
        buffer.append(item)
        if len(buffer) >= self.chunk_size:
            self._ship_buffer(source)

    def push_many(self, source: str, items: Iterable[StreamTuple]) -> None:
        """Push a sequence of tuples (chunked and partitioned across shards)."""
        self._ensure_open()
        if not self.sharded:
            self._compiled.push_many(source, items)
            self._drain_fallback()
            return
        for item in items:
            self.push(source, item)

    def _check_source(self, source: str) -> None:
        if source not in self.sources:
            raise PlanError(
                f"unknown source {source!r}; this plan reads {self.sources}"
            )

    def _ship_pending(self) -> None:
        """Ship every non-empty pending buffer."""
        for source in list(self._pending):
            self._ship_buffer(source)
        self._pending_source = None

    def _ship_buffer(self, source: str) -> None:
        items = self._pending.pop(source, None)
        if not items:
            return
        split = self.partitioner.split_chunk(self._next_chunk, items, self.workers)
        for shard in sorted(split):
            tuples = split[shard]
            if not tuples:
                continue
            chunk_id = self._next_chunk
            self._next_chunk += 1
            payload = encode_batch_wire(TupleBatch(tuples))
            self._outstanding += 1
            self._chunks_sent[shard] += 1
            if isinstance(self._merger, WindowPartialMerger):
                self._merger.mark_fed(shard)
            self._send(shard, ("chunk", source, chunk_id, payload))

    # ------------------------------------------------------------------
    # Worker I/O
    # ------------------------------------------------------------------
    def _send(self, shard: int, message) -> None:
        if self.backend == "inline":
            self._dispatch(self._run_inline(shard, message))
            return
        channel = self._remote.get(shard)
        if channel is not None:
            channel.queue_message(message)
            while not channel.pump_send():
                if not channel.alive:
                    raise ShardError(
                        f"lost the connection to remote shard {shard} "
                        f"({channel.address}) while sending"
                    )
                self._stalls[shard] += 1
                self._drain(block=False)
                self._check_workers_alive()
                channel.wait_writable(0.05)
            return
        while True:
            try:
                self._in_queues[shard].put(message, timeout=0.05)
                return
            except queue_module.Full:
                self._stalls[shard] += 1
                self._drain(block=False)
                self._check_workers_alive()

    def _run_inline(self, shard: int, message):
        runner = self._runners[shard]
        kind = message[0]
        if kind == "chunk":
            _, source, chunk_id, payload = message
            outputs, watermark = runner.chunk(source, decode_batch(payload))
            return ("results", shard, chunk_id, encode_batch_wire(TupleBatch(outputs)), watermark)
        if kind == "flush":
            return ("flushed", shard, message[1], encode_batch_wire(TupleBatch(runner.flush())))
        if kind == "stats":
            return ("stats", shard, runner.statistics_rows())
        raise RuntimeError(f"unknown inline message {kind!r}")  # pragma: no cover

    def _dispatch(self, message) -> None:
        kind = message[0]
        if kind == "results":
            _, shard, chunk_id, payload, watermark = message
            outputs = decode_batch(payload).to_tuples()
            self._outstanding -= 1
            self._chunks_done[shard] += 1
            if isinstance(self._merger, OrderedChunkMerger):
                self._deliver(self._merger.ingest(chunk_id, outputs))
            else:
                self._deliver(self._merger.ingest(shard, outputs, watermark))
        elif kind == "flushed":
            _, shard, token, payload = message
            outputs = decode_batch(payload).to_tuples()
            self._flushed_tokens[shard] = token
            if isinstance(self._merger, OrderedChunkMerger):
                self._ordered_flush.setdefault(shard, []).extend(outputs)
            else:
                self._deliver(self._merger.ingest(shard, outputs, math.inf))
        elif kind == "stats":
            _, shard, rows = message
            self._stats_rows[shard] = rows
        elif kind == "error":
            _, shard, trace = message
            raise ShardError(f"shard {shard} failed:\n{trace}")
        else:  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unknown worker reply {kind!r}")

    def _deliver(self, merged: List[StreamTuple]) -> None:
        """Route merged tuples through the coordinator suffix to the sink."""
        if not merged:
            return
        if self._suffix is not None:
            for item in merged:
                self._suffix.push(PARTIAL_SOURCE, item)
            merged = list(self._suffix_sink.results)
            self._suffix_sink.results.clear()
        for item in merged:
            self._sink.accept(item)

    def _drain(self, block: bool, until=None, timeout: float = _REPLY_TIMEOUT) -> None:
        """Consume worker replies; with ``until``, block until it holds.

        ``timeout`` is an *inactivity* bound: it restarts on every
        received message, so a slow-but-progressing shard never trips
        it — only a shard that stops replying altogether does.
        """
        if self.backend == "inline":
            return
        deadline = time.monotonic() + timeout
        while True:
            if until is not None and until():
                return
            if self._pump_replies(wait=0.05 if block else 0.0):
                deadline = time.monotonic() + timeout
                continue
            if not block or until is None:
                return
            self._check_workers_alive()
            if time.monotonic() > deadline:
                raise ShardError(
                    f"no shard replies for {timeout:.0f}s while waiting to drain"
                )

    def _pump_replies(self, wait: float) -> bool:
        """Dispatch every available reply (queue and socket transports).

        A non-blocking sweep over the shared result queue and the
        remote socket channels; when it comes up empty and ``wait`` is
        set, block in one ``select`` over *all* reply transports (the
        queue's underlying pipe and the sockets together, so neither
        transport's replies wait behind a timeout on the other) and
        sweep again.  Returns whether any message was dispatched.
        """
        progressed = self._sweep_replies()
        if progressed or not wait:
            return progressed
        readers = [c.sock for c in self._remote.values() if c.alive]
        if self._out_queue is not None:
            queue_pipe = getattr(self._out_queue, "_reader", None)
            if queue_pipe is not None:
                readers.append(queue_pipe)
            elif not readers:  # pragma: no cover - no selectable pipe
                try:
                    message = self._out_queue.get(timeout=wait)
                except queue_module.Empty:
                    return False
                self._dispatch(message)
                return True
        if readers:
            try:
                select.select(readers, (), (), wait)
            except OSError:
                pass
        return self._sweep_replies()

    def _sweep_replies(self) -> bool:
        """One non-blocking pass over every reply transport."""
        progressed = False
        if self._out_queue is not None:
            while True:
                try:
                    message = self._out_queue.get_nowait()
                except queue_module.Empty:
                    break
                progressed = True
                self._dispatch(message)
        for channel in self._remote.values():
            for message in channel.poll():
                progressed = True
                self._dispatch(message)
        return progressed

    def _check_workers_alive(self) -> None:
        for process in getattr(self, "_processes", ()):
            if not process.is_alive() and process.exitcode not in (0, None):
                raise ShardError(
                    f"{process.name} exited with code {process.exitcode} "
                    "without reporting an error"
                )
        for channel in getattr(self, "_remote", {}).values():
            if not channel.alive:
                raise ShardError(
                    f"lost the connection to remote shard {channel.shard} "
                    f"({channel.address})"
                )

    def _drain_fallback(self) -> None:
        """Move fallback results from the compiled sink through the user sink."""
        results = self._compiled_sink.results
        if not results:
            return
        for item in list(results):
            self._sink.accept(item)
        results.clear()

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    def finish(self) -> List[StreamTuple]:
        """Drain the pipeline: flush every shard, merge everything pending.

        Mirrors ``StreamEngine.finish``: partial windows close and their
        results are emitted; the engine stays usable for further pushes.
        """
        self._ensure_open()
        if not self.sharded:
            self._compiled.finish()
            self._drain_fallback()
            return self.results
        self._ship_pending()
        self._flush_token += 1
        token = self._flush_token
        for shard in range(self.workers):
            self._send(shard, ("flush", token))
        self._drain(
            block=True,
            until=lambda: self._outstanding == 0
            and all(self._flushed_tokens.get(s) == token for s in range(self.workers)),
        )
        if isinstance(self._merger, OrderedChunkMerger):
            self._deliver(self._merger.drain())
            for shard in range(self.workers):
                self._deliver(self._ordered_flush.pop(shard, []))
        else:
            self._deliver(self._merger.drain())
        if self._suffix is not None:
            self._suffix.engine.finish()
            leftovers = list(self._suffix_sink.results)
            self._suffix_sink.results.clear()
            for item in leftovers:
                self._sink.accept(item)
        return self.results

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self.sharded or self.backend == "inline":
            return
        for channel in self._remote.values():
            channel.close()
        if not self._processes:
            return
        for q in self._in_queues:
            try:
                q.put(("stop",), timeout=0.5)
            except queue_module.Full:  # pragma: no cover - worker wedged
                pass
        for process in self._processes:
            process.join(timeout=2.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - worker wedged
                process.terminate()
                process.join(timeout=1.0)
        for q in [*self._in_queues, self._out_queue]:
            q.cancel_join_thread()
            q.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Results & introspection
    # ------------------------------------------------------------------
    @property
    def results(self) -> List[StreamTuple]:
        """All merged results delivered to the default sink so far."""
        return list(getattr(self._sink, "results", ()))

    def take(self) -> List[StreamTuple]:
        """Drain and return the collected results."""
        results = getattr(self._sink, "results", None)
        if results is None:
            return []
        out = list(results)
        results.clear()
        return out

    def statistics(self) -> ShardedStatistics:
        """Per-shard operator statistics plus the coordinator's own boxes."""
        coordinator: List[OperatorStats] = []
        if not self.sharded:
            return ShardedStatistics(
                shards={}, coordinator=self._compiled.statistics(detailed=True)
            )
        self._ensure_open()
        self._stats_rows = {shard: None for shard in range(self.workers)}
        for shard in range(self.workers):
            self._send(shard, ("stats",))
        self._drain(
            block=True,
            until=lambda: all(
                self._stats_rows.get(s) is not None for s in range(self.workers)
            ),
        )
        shards = {
            shard: [OperatorStats(*row) for row in rows]
            for shard, rows in self._stats_rows.items()
        }
        if self._suffix is not None:
            coordinator.extend(self._suffix.statistics(detailed=True))
        coordinator.append(
            OperatorStats(
                name=self._sink.name,
                tuples_in=self._sink.tuples_in,
                tuples_out=self._sink.tuples_out,
                batches_in=self._sink.batches_in,
                seconds=self._sink.processing_seconds,
            )
        )
        return ShardedStatistics(
            shards=shards,
            coordinator=coordinator,
            backpressure=self.shard_statistics(),
        )

    def shard_statistics(self) -> Dict[int, ShardBackpressure]:
        """Per-shard backpressure state: queue depth, in-flight, stalls.

        Cheap (no worker round trip), so it is safe to sample in a hot
        monitoring loop; the single-engine fallback returns ``{}``.
        """
        if not self.sharded:
            return {}
        report: Dict[int, ShardBackpressure] = {}
        for shard in range(self.workers):
            channel = self._remote.get(shard)
            queue_depth = 0
            backlog = 0
            if self.backend == "inline":
                transport = "inline"
            elif channel is not None:
                transport = "socket"
                backlog = channel.send_backlog_bytes
            else:
                transport = "queue"
                try:
                    queue_depth = self._in_queues[shard].qsize()
                except NotImplementedError:  # pragma: no cover - macOS
                    queue_depth = -1
            report[shard] = ShardBackpressure(
                shard=shard,
                transport=transport,
                queue_depth=queue_depth,
                in_flight_chunks=self._chunks_sent[shard] - self._chunks_done[shard],
                stalls=self._stalls[shard],
                chunks_sent=self._chunks_sent[shard],
                send_backlog_bytes=backlog,
            )
        return report

    def explain(self) -> str:
        """The sharding decision, runtime configuration and fallback plan."""
        lines = [explain_sharding(self.decision, workers=self.workers)]
        lines.append("")
        lines.append("Runtime")
        lines.append("-------")
        lines.append(f"backend: {self.backend}")
        if self.remote_shards:
            local = self.workers - len(self.remote_shards)
            lines.append(
                f"remote shards: {local}..{self.workers - 1} over TCP "
                f"({', '.join(self.remote_shards)})"
            )
        lines.append(f"partitioner: {self.partitioner!r}")
        lines.append(
            f"chunk_size: {self.chunk_size}, queue_capacity: {self._queue_capacity}"
        )
        lines.append(f"worker execution: mode={self.mode}, batch_size={self.batch_size}")
        if not self.sharded:
            lines.append("")
            lines.append(self._compiled.explain())
        return "\n".join(lines)
