"""Sharded parallel runtime: partitioned multi-process query execution.

The paper targets stream rates a single Python process cannot sustain;
this package adds the horizontal half of that story.  A
:class:`ShardedEngine` partitions source tuples across worker processes
— each running a full :class:`~repro.streams.engine.StreamEngine` on
the shard-local plan segment chosen by
:func:`repro.plan.sharding.split_for_sharding` — and recombines the
outputs through uncertainty-aware merge operators: exact moment/mixture
merge for windowed SUM/AVG/COUNT partials, ordered k-way chunk merge
for row-wise outputs.

>>> from repro.runtime import ShardedEngine
>>> engine = ShardedEngine(query_stream, workers=4)
>>> engine.push_many("sensors", tuples)
>>> results = engine.finish()
>>> engine.close()

The service layer exposes the same capability as
``QuerySession(workers=N)``.
"""

from .engine import ShardBackpressure, ShardedEngine, ShardedStatistics, ShardError
from .merge import MergeProtocolError, OrderedChunkMerger, WindowPartialMerger
from .partition import (
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    compute_adaptive_weights,
    resolve_partitioner,
)
from .shm import RingFullError, ShardShmTransport, ShmRing
from .transport import SocketShardChannel
from .worker import ShardRunner, serve_shard_messages, serve_shard_rings

__all__ = [
    "ShardedEngine",
    "ShardedStatistics",
    "ShardBackpressure",
    "ShardError",
    "ShmRing",
    "ShardShmTransport",
    "RingFullError",
    "SocketShardChannel",
    "serve_shard_messages",
    "serve_shard_rings",
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "resolve_partitioner",
    "compute_adaptive_weights",
    "OrderedChunkMerger",
    "WindowPartialMerger",
    "MergeProtocolError",
    "ShardRunner",
]
