"""Synthetic uncertain tuple streams for experiments and benchmarks.

The Table 2 experiment feeds the aggregation algorithms with tuples
whose per-tuple distributions are "generated from mixture Gaussian
distributions to simulate arbitrary real-world distributions"; this
module builds exactly that workload, plus a few simpler streams used by
examples and tests.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import Gaussian, GaussianMixture, as_rng
from repro.streams import StreamTuple, TupleBatch

__all__ = [
    "random_gaussian_mixture",
    "gmm_tuple_stream",
    "gaussian_tuple_stream",
    "temperature_stream",
    "ma_series_tuple_stream",
    "to_batches",
    "gmm_tuple_batches",
    "gaussian_tuple_batches",
]


def random_gaussian_mixture(
    rng: np.random.Generator,
    max_components: int = 3,
    mean_range: Tuple[float, float] = (0.0, 100.0),
    sigma_range: Tuple[float, float] = (1.0, 10.0),
) -> GaussianMixture:
    """Draw a random Gaussian mixture with 1..``max_components`` components."""
    if max_components < 1:
        raise ValueError("max_components must be at least 1")
    k = int(rng.integers(1, max_components + 1))
    weights = rng.dirichlet(np.ones(k))
    means = rng.uniform(mean_range[0], mean_range[1], size=k)
    sigmas = rng.uniform(sigma_range[0], sigma_range[1], size=k)
    return GaussianMixture(weights, means, sigmas)


def gmm_tuple_stream(
    n_tuples: int,
    attribute: str = "value",
    max_components: int = 3,
    mean_range: Tuple[float, float] = (0.0, 100.0),
    sigma_range: Tuple[float, float] = (1.0, 10.0),
    interval: float = 0.01,
    rng: np.random.Generator | int | None = None,
) -> List[StreamTuple]:
    """Return tuples whose ``attribute`` carries a random Gaussian mixture.

    "The input distributions are different for different tuples"
    (Section 5.1): every tuple draws a fresh mixture.
    """
    if n_tuples < 1:
        raise ValueError("n_tuples must be at least 1")
    rng = as_rng(rng)
    stream = []
    for i in range(n_tuples):
        mixture = random_gaussian_mixture(
            rng, max_components=max_components, mean_range=mean_range, sigma_range=sigma_range
        )
        stream.append(
            StreamTuple(
                timestamp=i * interval,
                values={"sequence": i},
                uncertain={attribute: mixture},
            )
        )
    return stream


def gaussian_tuple_stream(
    n_tuples: int,
    attribute: str = "value",
    mean_range: Tuple[float, float] = (0.0, 100.0),
    sigma_range: Tuple[float, float] = (1.0, 10.0),
    interval: float = 0.01,
    rng: np.random.Generator | int | None = None,
) -> List[StreamTuple]:
    """Return tuples whose ``attribute`` carries a random Gaussian."""
    if n_tuples < 1:
        raise ValueError("n_tuples must be at least 1")
    rng = as_rng(rng)
    stream = []
    for i in range(n_tuples):
        mean = float(rng.uniform(*mean_range))
        sigma = float(rng.uniform(*sigma_range))
        stream.append(
            StreamTuple(
                timestamp=i * interval,
                values={"sequence": i},
                uncertain={attribute: Gaussian(mean, sigma)},
            )
        )
    return stream


def to_batches(stream: Sequence[StreamTuple], batch_size: int) -> List[TupleBatch]:
    """Chunk a tuple stream into :class:`TupleBatch` containers.

    The batches share the tuple objects with ``stream``; only the
    grouping changes, so a workload generated once can feed both the
    tuple-at-a-time and the batch execution paths.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    return [
        TupleBatch(stream[start : start + batch_size])
        for start in range(0, len(stream), batch_size)
    ]


def gmm_tuple_batches(
    n_tuples: int,
    batch_size: int = 1024,
    **kwargs,
) -> List[TupleBatch]:
    """Batched variant of :func:`gmm_tuple_stream` for the batch engine path."""
    return to_batches(gmm_tuple_stream(n_tuples, **kwargs), batch_size)


def gaussian_tuple_batches(
    n_tuples: int,
    batch_size: int = 1024,
    **kwargs,
) -> List[TupleBatch]:
    """Batched variant of :func:`gaussian_tuple_stream` for the batch engine path."""
    return to_batches(gaussian_tuple_stream(n_tuples, **kwargs), batch_size)


def temperature_stream(
    n_tuples: int,
    area_bounds: Tuple[float, float, float, float] = (0.0, 0.0, 100.0, 50.0),
    base_temperature: float = 25.0,
    hot_spot: Optional[Tuple[float, float, float, float]] = (30.0, 20.0, 10.0, 80.0),
    temperature_sigma: float = 2.0,
    location_sigma: float = 0.5,
    interval: float = 0.25,
    rng: np.random.Generator | int | None = None,
) -> List[StreamTuple]:
    """Return a temperature sensor stream for query Q2.

    Each tuple carries an uncertain ``x``, ``y`` sensor location and an
    uncertain ``temp``.  Sensors inside the optional hot spot
    ``(cx, cy, radius, peak)`` report elevated temperatures, so Q2's
    ``temp > 60`` predicate selects them.
    """
    if n_tuples < 1:
        raise ValueError("n_tuples must be at least 1")
    rng = as_rng(rng)
    x_min, y_min, x_max, y_max = area_bounds
    stream = []
    for i in range(n_tuples):
        x = float(rng.uniform(x_min, x_max))
        y = float(rng.uniform(y_min, y_max))
        temperature = base_temperature
        if hot_spot is not None:
            cx, cy, radius, peak = hot_spot
            distance = float(np.hypot(x - cx, y - cy))
            if distance < radius:
                temperature = peak - (peak - base_temperature) * distance / radius
        stream.append(
            StreamTuple(
                timestamp=i * interval,
                values={"sensor_id": f"T{i:04d}"},
                uncertain={
                    "x": Gaussian(x, location_sigma),
                    "y": Gaussian(y, location_sigma),
                    "temp": Gaussian(temperature, temperature_sigma),
                },
            )
        )
    return stream


def ma_series_tuple_stream(
    n_tuples: int,
    coefficients: Sequence[float] = (0.6, 0.3),
    mean: float = 10.0,
    noise_std: float = 1.0,
    observation_sigma: float = 0.5,
    attribute: str = "value",
    interval: float = 0.001,
    rng: np.random.Generator | int | None = None,
) -> List[StreamTuple]:
    """Return a temporally correlated stream following an MA(q) model.

    The realised series values become the tuple means; each tuple's
    distribution is a Gaussian around its realised value with
    ``observation_sigma``.  Used to exercise the correlated-aggregation
    path (time-series CLT) of Section 5.1.
    """
    from repro.radar.timeseries import MAModel

    if n_tuples < 1:
        raise ValueError("n_tuples must be at least 1")
    rng = as_rng(rng)
    model = MAModel(mean=mean, coefficients=tuple(coefficients), noise_std=noise_std)
    series = model.simulate(n_tuples, rng=rng)
    return [
        StreamTuple(
            timestamp=i * interval,
            values={"sequence": i},
            uncertain={attribute: Gaussian(float(series[i]), observation_sigma)},
        )
        for i in range(n_tuples)
    ]
