"""RFID workload builders for the Figure 3 experiments.

Figure 3 measures inference error (in feet, XY plane) and CPU time per
event for a *highly noisy* RFID trace while varying the number of
objects (100 to 10 000) and the number of particles (50 / 100 / 200).
This module packages the world + simulator + T-operator construction
behind one function so the benchmark and the tests share the exact same
workload definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.rfid import (
    DetectionModel,
    MobileReaderSimulator,
    RFIDTransformOperator,
    WarehouseWorld,
)

__all__ = ["RFIDWorkload", "build_rfid_workload", "noisy_detection_model"]


def noisy_detection_model() -> DetectionModel:
    """Return the "highly noisy trace" detection model of Figure 3.

    Compared to the default model, the maximum read rate is lower and
    the logistic roll-off is shallower, so detections are both rarer and
    less informative about distance.
    """
    return DetectionModel(midpoint=10.0, steepness=0.35, max_rate=0.7)


@dataclass
class RFIDWorkload:
    """A ready-to-run RFID inference workload."""

    world: WarehouseWorld
    simulator: MobileReaderSimulator
    operator: RFIDTransformOperator
    n_objects: int
    n_particles: int

    def run(self, n_readings: int) -> None:
        """Process ``n_readings`` scans through the T operator."""
        for reading in self.simulator.readings(n_readings):
            list(self.operator.ingest(reading, reading.timestamp))

    def mean_error(self) -> float:
        """Return the mean XY-plane location error over all objects (feet)."""
        return self.operator.mean_location_error()


def build_rfid_workload(
    n_objects: int,
    n_particles: int,
    area: Tuple[float, float] = (200.0, 100.0),
    use_spatial_index: bool = True,
    use_compression: bool = True,
    move_rate: float = 0.0,
    read_capacity: Optional[int] = 40,
    seed: int = 7,
) -> RFIDWorkload:
    """Build the Figure 3 workload for a given object count and particle budget.

    The warehouse area is fixed while the object count varies, matching
    the paper's setup where density grows with the number of objects.
    Ground-truth motion is disabled by default so the measured error
    isolates the inference approximation.
    """
    if n_objects < 1:
        raise ValueError("n_objects must be at least 1")
    if n_particles < 2:
        raise ValueError("n_particles must be at least 2")
    width, height = area
    world = WarehouseWorld(
        width=width,
        height=height,
        shelf_grid=(10, 5),
        n_objects=n_objects,
        move_rate=move_rate,
        rng=seed,
    )
    detection = noisy_detection_model()
    simulator = MobileReaderSimulator(
        world,
        detection=detection,
        lane_spacing=height / 5.0,
        speed=8.0,
        scan_interval=0.5,
        evolve_world=move_rate > 0,
        read_capacity=read_capacity,
        rng=seed + 1,
    )
    operator = RFIDTransformOperator(
        world,
        detection=detection,
        n_particles=n_particles,
        use_spatial_index=use_spatial_index,
        use_compression=use_compression,
        emit_mode="none",
        rng=seed + 2,
    )
    return RFIDWorkload(
        world=world,
        simulator=simulator,
        operator=operator,
        n_objects=n_objects,
        n_particles=n_particles,
    )
