"""Radar workload builder for the Table 1 experiment.

The paper's Table 1 runs tornado detection over 38 seconds of raw CASA
data (four sector scans) at averaging sizes from 40 to 1000 pulses.
Because neither the May 9th 2007 trace nor a 205 Mb/s ingest path is
available here, the workload is a *scaled* synthetic equivalent: a
lower pulse rate and gate count keep the raw array laptop-sized, while
the sector geometry, the 4-scans-in-38-seconds structure, and the range
of averaging sizes are preserved.  What matters for the reproduction is
the qualitative mechanism -- heavier averaging shrinks the data and the
runtime but erases the vortex signatures -- not the absolute byte
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.radar import (
    PulseGenerator,
    RadarSite,
    SectorScan,
    WeatherScene,
)

__all__ = ["RadarWorkload", "build_table1_workload", "TABLE1_AVERAGING_SIZES"]

#: The averaging sizes evaluated in the paper's Table 1.
TABLE1_AVERAGING_SIZES = (40, 60, 80, 100, 200, 500, 1000)


@dataclass
class RadarWorkload:
    """A ready-to-run radar workload: site, scene and generated scans.

    ``detection_threshold`` is the delta-V (m/s) the tornado detector
    should use for this workload; it is calibrated so that the finest
    averaging size resolves (nearly) all embedded vortices while heavy
    averaging resolves none, mirroring the dynamic range of Table 1.
    """

    site: RadarSite
    scene: WeatherScene
    scans: List[SectorScan]
    duration_seconds: float
    detection_threshold: float = 55.0

    @property
    def n_scans(self) -> int:
        return len(self.scans)

    @property
    def raw_size_bytes(self) -> int:
        return sum(scan.raw_size_bytes for scan in self.scans)


def build_table1_workload(
    duration_seconds: float = 38.0,
    n_scans: int = 4,
    pulse_rate: float = 400.0,
    n_gates: int = 160,
    gate_spacing: float = 90.0,
    sector: Tuple[float, float] = (0.0, 90.0),
    n_vortices: int = 4,
    vortex_ranges_m: Sequence[float] = (5000.0, 8000.0, 11000.0, 14000.0),
    vortex_core_radius: float = 200.0,
    vortex_max_speed: float = 40.0,
    noise_power: float = 0.08,
    spectrum_width: float = 2.0,
    detection_threshold: float = 55.0,
    seed: int = 11,
) -> RadarWorkload:
    """Build the scaled Table 1 workload.

    ``n_scans`` sector sweeps are fit into ``duration_seconds`` by
    choosing the antenna rotation rate accordingly (the paper's trace
    contains 4 sector scans in its 38 seconds).
    """
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    if n_scans < 1:
        raise ValueError("n_scans must be at least 1")
    sector_width = sector[1] - sector[0]
    if sector_width <= 0:
        raise ValueError("sector must have positive width")
    seconds_per_scan = duration_seconds / n_scans
    rotation_rate = sector_width / seconds_per_scan
    # Pick the wavelength so the Nyquist velocity comfortably exceeds the
    # simulated vortex speeds plus background wind at the (scaled-down)
    # pulse rate; see the module docstring for why this substitution is safe.
    wavelength = 4.0 * (2.0 * vortex_max_speed + 10.0) / pulse_rate

    site = RadarSite(
        site_id="SYN1",
        x=0.0,
        y=0.0,
        n_gates=n_gates,
        gate_spacing=gate_spacing,
        pulse_rate=pulse_rate,
        rotation_rate=rotation_rate,
        wavelength=wavelength,
    )
    scene = WeatherScene.tornadic(
        n_vortices=n_vortices,
        ranges_m=vortex_ranges_m,
        core_radius=vortex_core_radius,
        max_speed=vortex_max_speed,
    )
    generator = PulseGenerator(
        site,
        scene,
        sector=sector,
        noise_power=noise_power,
        spectrum_width=spectrum_width,
        rng=seed,
    )
    scans = [
        generator.generate_scan(scan_index=i, start_time=i * generator.seconds_per_scan)
        for i in range(n_scans)
    ]
    return RadarWorkload(
        site=site,
        scene=scene,
        scans=scans,
        duration_seconds=duration_seconds,
        detection_threshold=detection_threshold,
    )
