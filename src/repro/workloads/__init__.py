"""Workload generators shared by benchmarks, examples and tests."""

from .radar_workload import TABLE1_AVERAGING_SIZES, RadarWorkload, build_table1_workload
from .rfid_workload import RFIDWorkload, build_rfid_workload, noisy_detection_model
from .synthetic import (
    gaussian_tuple_batches,
    gaussian_tuple_stream,
    gmm_tuple_batches,
    gmm_tuple_stream,
    ma_series_tuple_stream,
    random_gaussian_mixture,
    temperature_stream,
    to_batches,
)

__all__ = [
    "gmm_tuple_stream",
    "gaussian_tuple_stream",
    "temperature_stream",
    "ma_series_tuple_stream",
    "random_gaussian_mixture",
    "to_batches",
    "gmm_tuple_batches",
    "gaussian_tuple_batches",
    "RFIDWorkload",
    "build_rfid_workload",
    "noisy_detection_model",
    "RadarWorkload",
    "build_table1_workload",
    "TABLE1_AVERAGING_SIZES",
]
