"""Synthetic raw pulse generation (the radar's time-series data).

Section 2.2: each radar emits roughly 2000 pulses per second while
rotating; every pulse is resolved into 832 range gates, and each gate
carries a data item of four 32-bit floats, for about 205 Mb/s of raw
data.  The raw data here are the I/Q (in-phase / quadrature) samples of
the returned signal, from which the signal processor later derives
moment data.

We simulate that process directly: for each pulse and gate the complex
return is

``z[p, g] = A[p, g] * exp(i * phi[p, g]) + noise``

where the phase advances between consecutive pulses by
``4 * pi * v * T / lambda`` (the Doppler shift of the local radial
velocity ``v``), the amplitude follows the scene reflectivity, and the
noise term aggregates the electronic/environmental noise sources the
paper lists.  Spectral broadening (turbulence) appears as random phase
jitter.  This reproduces the property Table 1 depends on: velocity can
be recovered accurately from finely averaged pulses and is smeared by
coarse averaging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import as_rng

from .geometry import RadarSite, beam_positions, polar_to_cartesian
from .scene import WeatherScene

__all__ = ["SectorScan", "PulseBlock", "PulseGenerator", "RAW_BYTES_PER_GATE"]

#: Four 32-bit floats per gate per pulse, as described in Section 2.2.
RAW_BYTES_PER_GATE = 4 * 4


@dataclass(frozen=True)
class PulseBlock:
    """A contiguous block of pulses from one sector scan.

    Attributes
    ----------
    start_time:
        Timestamp of the first pulse in seconds.
    azimuths_deg:
        Azimuth of every pulse, shape ``(n_pulses,)``.
    iq:
        Complex I/Q samples, shape ``(n_pulses, n_gates)``.
    noise_power:
        The (known) receiver noise power used in generation; real
        radars estimate this from blank-sky measurements.
    """

    start_time: float
    azimuths_deg: np.ndarray
    iq: np.ndarray
    noise_power: float

    @property
    def n_pulses(self) -> int:
        return int(self.iq.shape[0])

    @property
    def n_gates(self) -> int:
        return int(self.iq.shape[1])

    @property
    def raw_size_bytes(self) -> int:
        """Return the raw data volume this block represents."""
        return self.n_pulses * self.n_gates * RAW_BYTES_PER_GATE


@dataclass(frozen=True)
class SectorScan:
    """One full sweep of the configured sector (a list of pulse blocks)."""

    scan_index: int
    blocks: Tuple[PulseBlock, ...]

    @property
    def n_pulses(self) -> int:
        return sum(block.n_pulses for block in self.blocks)

    @property
    def raw_size_bytes(self) -> int:
        return sum(block.raw_size_bytes for block in self.blocks)

    def concatenated(self) -> PulseBlock:
        """Return the whole scan as a single pulse block."""
        if len(self.blocks) == 1:
            return self.blocks[0]
        azimuths = np.concatenate([b.azimuths_deg for b in self.blocks])
        iq = np.vstack([b.iq for b in self.blocks])
        return PulseBlock(
            start_time=self.blocks[0].start_time,
            azimuths_deg=azimuths,
            iq=iq,
            noise_power=self.blocks[0].noise_power,
        )


class PulseGenerator:
    """Generates synthetic raw pulse data for one radar and scene.

    Parameters
    ----------
    site:
        Radar location and scanning parameters.
    scene:
        The weather scene providing velocity and reflectivity fields.
    sector:
        ``(start, end)`` azimuth of the scanned sector in degrees.
    noise_power:
        Receiver noise power relative to a 0 dBZ return.
    spectrum_width:
        Intrinsic spectrum width in m/s (turbulence); appears as phase
        jitter between pulses.
    rng:
        Random generator or seed.
    """

    def __init__(
        self,
        site: RadarSite,
        scene: WeatherScene,
        sector: Tuple[float, float] = (0.0, 90.0),
        noise_power: float = 0.05,
        spectrum_width: float = 1.5,
        rng: np.random.Generator | int | None = None,
    ):
        start, end = sector
        if end <= start:
            raise ValueError("sector end azimuth must exceed start azimuth")
        if noise_power < 0:
            raise ValueError("noise_power must be non-negative")
        if spectrum_width < 0:
            raise ValueError("spectrum_width must be non-negative")
        self.site = site
        self.scene = scene
        self.sector = (float(start), float(end))
        self.noise_power = float(noise_power)
        self.spectrum_width = float(spectrum_width)
        self._rng = as_rng(rng)
        self._warn_if_aliasing()

    def _warn_if_aliasing(self) -> None:
        """Raise when the scene's vortex speeds exceed the Nyquist velocity.

        Aliased velocities wrap around and silently destroy the shear
        signatures the Table 1 experiment depends on, so this is an
        error rather than a warning.
        """
        if not self.scene.vortices:
            return
        peak = max(abs(v.max_speed) for v in self.scene.vortices)
        peak += float(np.hypot(*self.scene.background_wind))
        if peak > self.site.nyquist_velocity:
            raise ValueError(
                f"scene velocities (~{peak:.1f} m/s) exceed the Nyquist velocity "
                f"({self.site.nyquist_velocity:.1f} m/s); increase the site wavelength "
                "or pulse rate"
            )

    # ------------------------------------------------------------------
    # Scan geometry
    # ------------------------------------------------------------------
    @property
    def pulses_per_scan(self) -> int:
        """Return the number of pulses in one sweep of the sector."""
        width = self.sector[1] - self.sector[0]
        return max(int(round(width * self.site.pulses_per_degree())), 2)

    @property
    def seconds_per_scan(self) -> float:
        """Return the duration of one sector sweep in seconds."""
        return self.pulses_per_scan / self.site.pulse_rate

    def scans_in(self, duration_seconds: float) -> int:
        """Return how many full sector scans fit in ``duration_seconds``."""
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        return max(int(duration_seconds // self.seconds_per_scan), 1)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate_scan(self, scan_index: int = 0, start_time: float = 0.0) -> SectorScan:
        """Generate the raw pulses of one sector sweep."""
        n_pulses = self.pulses_per_scan
        azimuths = self.sector[0] + (self.sector[1] - self.sector[0]) * (
            np.arange(n_pulses) / n_pulses
        )
        ranges = self.site.gate_ranges()
        # True fields evaluated at every (pulse, gate) cell.
        az_grid = np.repeat(azimuths[:, None], ranges.size, axis=1)
        rng_grid = np.repeat(ranges[None, :], n_pulses, axis=0)
        x, y = polar_to_cartesian(az_grid, rng_grid, self.site)
        velocity = self.scene.radial_velocity(x, y, self.site.x, self.site.y)
        dbz = self.scene.reflectivity(x, y)
        power = 10.0 ** (dbz / 20.0) / 10.0  # arbitrary linear amplitude scale

        prt = 1.0 / self.site.pulse_rate
        wavelength = self.site.wavelength
        doppler_step = 4.0 * math.pi * velocity * prt / wavelength
        jitter_sigma = 4.0 * math.pi * self.spectrum_width * prt / wavelength
        phase_noise = self._rng.normal(0.0, jitter_sigma, size=doppler_step.shape)
        initial_phase = self._rng.uniform(0.0, 2.0 * math.pi, size=ranges.size)
        phase = initial_phase[None, :] + np.cumsum(doppler_step + phase_noise, axis=0)

        noise_sigma = math.sqrt(self.noise_power / 2.0)
        noise = self._rng.normal(0.0, noise_sigma, size=phase.shape) + 1j * self._rng.normal(
            0.0, noise_sigma, size=phase.shape
        )
        iq = power * np.exp(1j * phase) + noise

        block = PulseBlock(
            start_time=start_time,
            azimuths_deg=azimuths,
            iq=iq.astype(np.complex64),
            noise_power=self.noise_power,
        )
        return SectorScan(scan_index=scan_index, blocks=(block,))

    def generate(self, duration_seconds: float) -> List[SectorScan]:
        """Generate all full sector scans that fit in ``duration_seconds``."""
        n_scans = self.scans_in(duration_seconds)
        scans = []
        for i in range(n_scans):
            scans.append(self.generate_scan(scan_index=i, start_time=i * self.seconds_per_scan))
        return scans

    def __iter__(self) -> Iterator[SectorScan]:
        index = 0
        while True:
            yield self.generate_scan(scan_index=index, start_time=index * self.seconds_per_scan)
            index += 1
