"""The radar data capture and transformation (T) operator.

Unlike the RFID case, the raw-to-moment transformation is deterministic
(pulse-pair formulas), so the T operator's job is to attach an
uncertainty description to each transformed value (Section 4.4).  For
every voxel (azimuth block x range gate) it:

1. computes the averaged moment data over ``averaging_size`` pulses,
2. forms the per-pulse-pair instantaneous velocity series for that
   voxel (a short, temporally correlated series),
3. treats that series as an MA process and uses the time-series CLT to
   obtain the distribution of the averaged velocity, and
4. emits one tuple per (sufficiently reflective) voxel carrying the
   velocity distribution plus deterministic azimuth / range /
   reflectivity attributes.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from repro.core.transform import CompressionPolicy, TransformOperator
from repro.distributions import Gaussian
from repro.streams.tuples import StreamTuple

from .clt import mean_distribution_from_series
from .geometry import RadarSite
from .moment import compute_moments
from .pulse_generator import PulseBlock, SectorScan
from .timeseries import identify_ma_order

__all__ = ["RadarTransformOperator", "pulse_pair_velocity_series"]


def pulse_pair_velocity_series(
    iq: np.ndarray, pulse_rate: float, wavelength: float = 0.032
) -> np.ndarray:
    """Return per-pulse-pair instantaneous velocity estimates for one voxel.

    ``iq`` is the length-``N`` complex sample series of one gate inside
    one averaging block; the result has ``N - 1`` entries.  These are
    the correlated "observed velocity series" of Section 4.4.
    """
    iq = np.asarray(iq)
    if iq.ndim != 1 or iq.size < 2:
        raise ValueError("iq must be a one-dimensional series of at least two samples")
    prt = 1.0 / pulse_rate
    lag1 = iq[1:] * np.conj(iq[:-1])
    return np.angle(lag1) * wavelength / (4.0 * math.pi * prt)


class RadarTransformOperator(TransformOperator):
    """T operator turning raw pulse data into voxel tuples with pdfs.

    Parameters
    ----------
    site:
        The radar whose pulses this operator ingests.
    averaging_size:
        Number of consecutive pulses averaged per moment record
        (Table 1's knob).
    min_reflectivity_dbz:
        Voxels below this reflectivity are not emitted (clear air),
        which keeps the tuple stream at a volume the wireless link and
        the central node can handle.
    identify_order:
        When True the MA order of each voxel's velocity series is
        identified from its autocorrelations; when False a fixed
        ``ma_order`` is used (cheaper, the paper's default posture for
        extremely high-volume streams).
    ma_order:
        Fixed MA order used when ``identify_order`` is False.
    """

    def __init__(
        self,
        site: RadarSite,
        averaging_size: int = 40,
        min_reflectivity_dbz: float = 20.0,
        identify_order: bool = False,
        ma_order: int = 2,
        compression: Optional[CompressionPolicy] = None,
        name: Optional[str] = None,
    ):
        super().__init__(compression=compression, raw_attribute="scan", name=name)
        if averaging_size < 2:
            raise ValueError("averaging_size must be at least 2")
        if ma_order < 0:
            raise ValueError("ma_order must be non-negative")
        self.site = site
        self.averaging_size = averaging_size
        self.min_reflectivity_dbz = min_reflectivity_dbz
        self.identify_order = identify_order
        self.ma_order = ma_order
        #: Number of voxels emitted so far (diagnostic).
        self.voxels_emitted = 0

    def transform(self, observation, timestamp: float) -> Iterable[StreamTuple]:
        if isinstance(observation, SectorScan):
            block = observation.concatenated()
        elif isinstance(observation, PulseBlock):
            block = observation
        else:
            raise TypeError(
                f"radar T operator expects a SectorScan or PulseBlock, got {type(observation).__name__}"
            )
        moments = compute_moments(block, self.site, self.averaging_size)
        n_blocks = moments.n_blocks
        usable = n_blocks * self.averaging_size
        iq = block.iq[:usable].reshape(n_blocks, self.averaging_size, moments.n_gates)

        for b in range(n_blocks):
            emit_gates = np.nonzero(moments.reflectivity_dbz[b] >= self.min_reflectivity_dbz)[0]
            for g in emit_gates:
                series = pulse_pair_velocity_series(
                    iq[b, :, g], self.site.pulse_rate, self.site.wavelength
                )
                order = (
                    identify_ma_order(series)
                    if self.identify_order
                    else min(self.ma_order, series.size - 2)
                )
                velocity_dist = mean_distribution_from_series(series, ma_order=max(order, 0))
                self.voxels_emitted += 1
                yield StreamTuple(
                    timestamp=timestamp,
                    values={
                        "site_id": self.site.site_id,
                        "azimuth_deg": float(moments.azimuths_deg[b]),
                        "range_m": float(moments.ranges_m[g]),
                        "reflectivity_dbz": float(moments.reflectivity_dbz[b, g]),
                        "spectrum_width": float(moments.spectrum_width[b, g]),
                        "averaging_size": self.averaging_size,
                    },
                    uncertain={"velocity": velocity_dist},
                )
