"""Time-series modelling of moment-data noise (Section 4.4).

The radar T operator needs to quantify the uncertainty of averaged
moment data without fitting a full ARMA model to every voxel (too slow
for 200 Mb/s streams).  The paper's shortcut is:

1. model short sub-sequences with a pure **moving-average (MA)** model
   -- frequent sampling of the same phenomenon means no autoregression,
   only correlated noise;
2. identify where the MA assumption holds (and its order ``q``) from
   the k-lag sample autocorrelations, computable in at most two scans;
3. rely on the Central Limit Theorem for MA series to characterise
   aggregates, so the MA model never needs to be fitted precisely.

This module provides the autocovariance/autocorrelation estimators, the
MA-order identification rule, an explicit MA model (for simulation and
tests), innovations-algorithm fitting (the "many passes" alternative
the paper wants to avoid at stream speed), and a Ljung-Box whiteness
test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.distributions import as_rng

__all__ = [
    "sample_autocovariance",
    "sample_autocorrelation",
    "identify_ma_order",
    "MAModel",
    "fit_ma_innovations",
    "ljung_box",
]


def sample_autocovariance(series: Sequence[float], max_lag: int) -> np.ndarray:
    """Return the sample autocovariances ``gamma_0 .. gamma_max_lag``.

    Uses the biased (divide by ``n``) estimator, which keeps the implied
    autocovariance sequence positive semi-definite.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 2:
        raise ValueError("series must contain at least two observations")
    if not 0 <= max_lag < n:
        raise ValueError("max_lag must satisfy 0 <= max_lag < len(series)")
    centered = x - x.mean()
    gammas = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        gammas[lag] = np.dot(centered[: n - lag], centered[lag:]) / n
    return gammas


def sample_autocorrelation(series: Sequence[float], max_lag: int) -> np.ndarray:
    """Return the sample autocorrelations ``rho_0 .. rho_max_lag``."""
    gammas = sample_autocovariance(series, max_lag)
    if gammas[0] <= 0:
        raise ValueError("series has zero variance; autocorrelation is undefined")
    return gammas / gammas[0]


def identify_ma_order(
    series: Sequence[float], max_order: int = 10, significance: float = 0.05
) -> int:
    """Identify the MA order ``q`` from the autocorrelation cut-off.

    An MA(q) process has zero autocorrelation beyond lag ``q``; the
    standard identification rule returns the largest lag whose sample
    autocorrelation is significant (outside the ``+- z / sqrt(n)``
    band).  A return value of 0 means the series looks like white noise
    and plain i.i.d. techniques apply.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    max_order = min(max_order, n - 2)
    if max_order < 1:
        return 0
    rho = sample_autocorrelation(x, max_order)
    z = stats.norm.ppf(1.0 - significance / 2.0)
    band = z / math.sqrt(n)
    significant = np.nonzero(np.abs(rho[1:]) > band)[0]
    if significant.size == 0:
        return 0
    return int(significant[-1] + 1)


@dataclass(frozen=True)
class MAModel:
    """A moving-average model ``X_t = mu + e_t + sum_i b_i e_{t-i}``.

    Parameters
    ----------
    mean:
        The constant ``mu`` (the paper's ``C`` plus the noise mean).
    coefficients:
        The MA coefficients ``b_1 .. b_q``.
    noise_std:
        Standard deviation of the innovation ``e_t``.
    """

    mean: float
    coefficients: Tuple[float, ...]
    noise_std: float

    def __post_init__(self) -> None:
        if self.noise_std <= 0:
            raise ValueError("noise_std must be positive")

    @property
    def order(self) -> int:
        return len(self.coefficients)

    def autocovariance(self, lag: int) -> float:
        """Return the theoretical autocovariance at ``lag``."""
        lag = abs(int(lag))
        if lag > self.order:
            return 0.0
        b = np.concatenate([[1.0], np.asarray(self.coefficients, dtype=float)])
        sigma2 = self.noise_std ** 2
        return float(sigma2 * np.dot(b[: b.size - lag], b[lag:]))

    def autocovariances(self, max_lag: Optional[int] = None) -> np.ndarray:
        """Return autocovariances for lags ``0 .. max_lag`` (default ``q``)."""
        max_lag = self.order if max_lag is None else max_lag
        return np.array([self.autocovariance(lag) for lag in range(max_lag + 1)])

    def variance(self) -> float:
        return self.autocovariance(0)

    def simulate(self, n: int, rng=None) -> np.ndarray:
        """Simulate ``n`` observations of the process."""
        if n < 1:
            raise ValueError("n must be at least 1")
        rng = as_rng(rng)
        q = self.order
        noise = rng.normal(0.0, self.noise_std, size=n + q)
        b = np.concatenate([[1.0], np.asarray(self.coefficients, dtype=float)])
        out = np.empty(n)
        for t in range(n):
            window = noise[t : t + q + 1][::-1]
            out[t] = self.mean + float(np.dot(b, window))
        return out


def fit_ma_innovations(series: Sequence[float], order: int) -> MAModel:
    """Fit an MA(q) model with the innovations algorithm.

    This is the "precise fitting" route the paper notes may be too slow
    for full-rate streams; we provide it for offline calibration, tests,
    and the ablation that compares it against the CLT shortcut.
    """
    x = np.asarray(series, dtype=float)
    if order < 1:
        raise ValueError("order must be at least 1")
    if x.size <= order + 1:
        raise ValueError("series is too short for the requested order")
    gammas = sample_autocovariance(x, order)
    # Innovations algorithm (Brockwell & Davis, ch. 8): iterate theta_{m, j}.
    m_steps = max(order * 4, 20)
    gam = sample_autocovariance(x, min(m_steps, x.size - 1))

    def gamma(lag: int) -> float:
        lag = abs(lag)
        return float(gam[lag]) if lag < gam.size else 0.0

    v = np.zeros(m_steps + 1)
    theta = np.zeros((m_steps + 1, m_steps + 1))
    v[0] = gamma(0)
    for m in range(1, m_steps + 1):
        for k in range(m):
            acc = gamma(m - k)
            for j in range(k):
                acc -= theta[k, k - j] * theta[m, m - j] * v[j]
            theta[m, m - k] = acc / v[k] if v[k] > 0 else 0.0
        v[m] = gamma(0) - float(np.sum(theta[m, 1 : m + 1] ** 2 * v[:m][::-1]))
        v[m] = max(v[m], 1e-12)
    coefficients = tuple(float(theta[m_steps, j]) for j in range(1, order + 1))
    return MAModel(mean=float(x.mean()), coefficients=coefficients, noise_std=math.sqrt(v[m_steps]))


def ljung_box(series: Sequence[float], lags: int = 10) -> Tuple[float, float]:
    """Ljung-Box whiteness test; returns ``(statistic, p_value)``.

    A large p-value means the series is compatible with white noise, so
    downstream aggregation can treat the samples as independent.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    lags = min(lags, n - 2)
    if lags < 1:
        raise ValueError("series too short for the Ljung-Box test")
    rho = sample_autocorrelation(x, lags)[1:]
    statistic = n * (n + 2) * float(np.sum(rho ** 2 / (n - np.arange(1, lags + 1))))
    p_value = float(stats.chi2.sf(statistic, df=lags))
    return statistic, p_value
