"""Synthetic weather scenes: wind fields, storm cells, and tornado vortices.

The paper's Table 1 experiment uses 38 seconds of raw CASA data from the
May 9th 2007 tornadic event.  That trace is proprietary to the CASA
project, so we substitute a synthetic scene that preserves the relevant
physics: a background wind field, one or more reflectivity (storm)
cells, and Rankine-vortex tornado signatures whose azimuthal velocity
shear is what the detection algorithm looks for.  Heavier pulse
averaging smears that shear across azimuth, which is exactly the
quality-loss mechanism the paper's experiment demonstrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Vortex", "StormCell", "WeatherScene"]


@dataclass(frozen=True)
class Vortex:
    """A Rankine vortex: solid-body rotation inside ``core_radius``.

    Tangential speed grows linearly with radius inside the core and
    decays as ``core_radius / r`` outside it; the velocity vector is
    perpendicular to the radius from the vortex centre (counterclockwise
    for positive ``max_speed``).
    """

    x: float
    y: float
    core_radius: float
    max_speed: float

    def __post_init__(self) -> None:
        if self.core_radius <= 0:
            raise ValueError("core_radius must be positive")

    def velocity(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the (u, v) wind components induced at points ``(x, y)``."""
        dx = np.asarray(x, dtype=float) - self.x
        dy = np.asarray(y, dtype=float) - self.y
        r = np.hypot(dx, dy)
        safe_r = np.maximum(r, 1e-9)
        inside = r <= self.core_radius
        speed = np.where(
            inside,
            self.max_speed * r / self.core_radius,
            self.max_speed * self.core_radius / safe_r,
        )
        # Unit tangential direction (counterclockwise): (-dy, dx) / r.
        u = -speed * dy / safe_r
        v = speed * dx / safe_r
        return u, v


@dataclass(frozen=True)
class StormCell:
    """A Gaussian reflectivity blob (precipitation core)."""

    x: float
    y: float
    radius: float
    peak_dbz: float = 45.0

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    def reflectivity(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        dx = np.asarray(x, dtype=float) - self.x
        dy = np.asarray(y, dtype=float) - self.y
        r2 = dx * dx + dy * dy
        return self.peak_dbz * np.exp(-0.5 * r2 / self.radius ** 2)


@dataclass
class WeatherScene:
    """Background wind plus storm cells and vortices.

    Parameters
    ----------
    background_wind:
        Uniform ``(u, v)`` wind components in m/s.
    base_dbz:
        Reflectivity floor (clear-air return) in dBZ.
    cells / vortices:
        Storm cells and tornado vortices embedded in the scene.
    """

    background_wind: Tuple[float, float] = (5.0, 2.0)
    base_dbz: float = 8.0
    cells: List[StormCell] = field(default_factory=list)
    vortices: List[Vortex] = field(default_factory=list)

    def wind(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return total ``(u, v)`` wind components at points ``(x, y)``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        u = np.full_like(x, float(self.background_wind[0]))
        v = np.full_like(y, float(self.background_wind[1]))
        for vortex in self.vortices:
            du, dv = vortex.velocity(x, y)
            u = u + du
            v = v + dv
        return u, v

    def radial_velocity(
        self, x: np.ndarray, y: np.ndarray, site_x: float, site_y: float
    ) -> np.ndarray:
        """Return the radial (towards/away from the radar) velocity component.

        Positive values move away from the radar, following the usual
        Doppler convention.
        """
        u, v = self.wind(x, y)
        dx = np.asarray(x, dtype=float) - site_x
        dy = np.asarray(y, dtype=float) - site_y
        r = np.maximum(np.hypot(dx, dy), 1e-9)
        return (u * dx + v * dy) / r

    def reflectivity(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return reflectivity in dBZ at points ``(x, y)``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        dbz = np.full_like(x, float(self.base_dbz))
        for cell in self.cells:
            dbz = np.maximum(dbz, cell.reflectivity(x, y))
        return dbz

    @classmethod
    def tornadic(
        cls,
        n_vortices: int = 4,
        ranges_m: Sequence[float] = (6000.0, 8000.0, 10000.0, 12000.0),
        azimuths_deg: Sequence[float] = (20.0, 40.0, 60.0, 80.0),
        core_radius: float = 350.0,
        max_speed: float = 45.0,
    ) -> WeatherScene:
        """Build the default tornadic scene used by the Table 1 benchmark.

        ``n_vortices`` Rankine vortices are placed at the given ranges
        and azimuths (relative to a radar at the origin looking north),
        each wrapped in a storm cell so there is enough reflectivity for
        the signal to be coherent.
        """
        if n_vortices < 1:
            raise ValueError("need at least one vortex for a tornadic scene")
        scene = cls()
        for i in range(n_vortices):
            rng = float(ranges_m[i % len(ranges_m)])
            az = math.radians(float(azimuths_deg[i % len(azimuths_deg)]))
            x = rng * math.sin(az)
            y = rng * math.cos(az)
            scene.vortices.append(Vortex(x=x, y=y, core_radius=core_radius, max_speed=max_speed))
            scene.cells.append(StormCell(x=x, y=y, radius=6.0 * core_radius, peak_dbz=50.0))
        return scene
