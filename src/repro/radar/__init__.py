"""Hazardous weather monitoring application (Section 2.2 / 4.4).

Synthetic CASA-style radar substrate: scan geometry, weather scenes
with tornado vortices, raw pulse generation, pulse-pair moment
computation with configurable averaging, MA time-series modelling with
CLT aggregation, multi-radar merging, tornado detection, and the radar
data capture and transformation (T) operator.
"""

from .clt import (
    long_run_variance,
    mean_distribution_from_series,
    sum_distribution_from_series,
)
from .detection import DetectionResult, VortexDetection, detect_vortices, run_detection
from .geometry import (
    PolarCell,
    RadarSite,
    beam_positions,
    cartesian_to_polar,
    polar_to_cartesian,
)
from .merge import CartesianGrid, MergedCell, MergedField, merge_moment_fields
from .moment import MOMENT_BYTES_PER_VOXEL, MomentField, compute_moments
from .pulse_generator import RAW_BYTES_PER_GATE, PulseBlock, PulseGenerator, SectorScan
from .scene import StormCell, Vortex, WeatherScene
from .timeseries import (
    MAModel,
    fit_ma_innovations,
    identify_ma_order,
    ljung_box,
    sample_autocorrelation,
    sample_autocovariance,
)
from .transform_operator import RadarTransformOperator, pulse_pair_velocity_series

__all__ = [
    "RadarSite",
    "PolarCell",
    "polar_to_cartesian",
    "cartesian_to_polar",
    "beam_positions",
    "WeatherScene",
    "Vortex",
    "StormCell",
    "PulseGenerator",
    "PulseBlock",
    "SectorScan",
    "RAW_BYTES_PER_GATE",
    "MomentField",
    "compute_moments",
    "MOMENT_BYTES_PER_VOXEL",
    "DetectionResult",
    "VortexDetection",
    "detect_vortices",
    "run_detection",
    "MAModel",
    "sample_autocovariance",
    "sample_autocorrelation",
    "identify_ma_order",
    "fit_ma_innovations",
    "ljung_box",
    "long_run_variance",
    "mean_distribution_from_series",
    "sum_distribution_from_series",
    "CartesianGrid",
    "MergedCell",
    "MergedField",
    "merge_moment_fields",
    "RadarTransformOperator",
    "pulse_pair_velocity_series",
]
