"""Radar scan geometry: polar range/azimuth grids and Cartesian conversion.

A CASA radar scans in polar coordinates: pulses are emitted at a fixed
rate while the antenna rotates, and every pulse is resolved into range
gates along the beam.  Detection algorithms and multi-radar merging
work in Cartesian (or geographic) coordinates, so Section 2.2's merge
step converts polar moment data to a Cartesian grid -- a conversion
whose uneven data density is itself a source of uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["RadarSite", "PolarCell", "polar_to_cartesian", "cartesian_to_polar", "beam_positions"]


@dataclass(frozen=True)
class RadarSite:
    """Location and scanning parameters of one radar node.

    Parameters
    ----------
    site_id:
        Identifier of the radar (e.g. ``"KSAO"``).
    x, y:
        Cartesian position of the radar in meters relative to the
        network origin.
    n_gates:
        Number of range gates per pulse (832 in the CASA testbed).
    gate_spacing:
        Radial distance between gates in meters.
    pulse_rate:
        Pulses per second (approximately 2000 in the testbed).
    rotation_rate:
        Antenna rotation rate in degrees per second.
    wavelength:
        Radar wavelength in meters (X-band ~ 0.032 m).  Scaled-down
        workloads with reduced pulse rates raise this value so the
        Nyquist velocity still covers the simulated wind speeds.
    """

    site_id: str
    x: float = 0.0
    y: float = 0.0
    n_gates: int = 832
    gate_spacing: float = 48.0
    pulse_rate: float = 2000.0
    rotation_rate: float = 18.0
    wavelength: float = 0.032

    def __post_init__(self) -> None:
        if self.n_gates < 1:
            raise ValueError("n_gates must be at least 1")
        if self.gate_spacing <= 0:
            raise ValueError("gate_spacing must be positive")
        if self.pulse_rate <= 0:
            raise ValueError("pulse_rate must be positive")
        if self.rotation_rate <= 0:
            raise ValueError("rotation_rate must be positive")
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")

    @property
    def max_range(self) -> float:
        """Return the maximum unambiguous range in meters."""
        return self.n_gates * self.gate_spacing

    @property
    def nyquist_velocity(self) -> float:
        """Return the maximum unambiguous radial velocity in m/s.

        Velocities beyond ``wavelength * pulse_rate / 4`` alias (wrap
        around), which is why scaled workloads must pick the wavelength
        to match the simulated wind speeds.
        """
        return self.wavelength * self.pulse_rate / 4.0

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    def gate_ranges(self) -> np.ndarray:
        """Return the centre range of every gate in meters."""
        return (np.arange(self.n_gates) + 0.5) * self.gate_spacing

    def pulses_per_degree(self) -> float:
        """Return how many pulses are emitted per degree of rotation."""
        return self.pulse_rate / self.rotation_rate


@dataclass(frozen=True)
class PolarCell:
    """One resolution cell of a radar: an (azimuth, range-gate) pair."""

    azimuth_deg: float
    gate: int
    range_m: float

    def cartesian(self, site: RadarSite) -> Tuple[float, float]:
        return polar_to_cartesian(self.azimuth_deg, self.range_m, site)


def polar_to_cartesian(
    azimuth_deg: float | np.ndarray, range_m: float | np.ndarray, site: RadarSite
) -> Tuple[np.ndarray, np.ndarray]:
    """Convert radar-relative polar coordinates to network Cartesian.

    Azimuth follows the meteorological convention: 0 degrees is north
    (positive y) and angles increase clockwise.
    """
    azimuth = np.radians(np.asarray(azimuth_deg, dtype=float))
    rng = np.asarray(range_m, dtype=float)
    x = site.x + rng * np.sin(azimuth)
    y = site.y + rng * np.cos(azimuth)
    return x, y


def cartesian_to_polar(
    x: float | np.ndarray, y: float | np.ndarray, site: RadarSite
) -> Tuple[np.ndarray, np.ndarray]:
    """Convert network Cartesian coordinates to radar-relative polar."""
    dx = np.asarray(x, dtype=float) - site.x
    dy = np.asarray(y, dtype=float) - site.y
    rng = np.hypot(dx, dy)
    azimuth = np.degrees(np.arctan2(dx, dy)) % 360.0
    return azimuth, rng


def beam_positions(
    site: RadarSite, start_azimuth: float, n_pulses: int
) -> np.ndarray:
    """Return the azimuth (degrees) of each of ``n_pulses`` consecutive pulses."""
    if n_pulses < 1:
        raise ValueError("n_pulses must be at least 1")
    step = site.rotation_rate / site.pulse_rate
    return (start_azimuth + step * np.arange(n_pulses)) % 360.0
