"""Tornado detection from moment data: azimuthal velocity shear signatures.

The operational CASA detection algorithms look for tornado vortex
signatures: adjacent-in-azimuth velocity samples at (roughly) the same
range whose difference (the gate-to-gate shear) is large, i.e. strong
inbound next to strong outbound flow.  We implement that classic
signature detector, which is all Table 1 needs: with finely averaged
moment data the vortex couplet is resolved and detected; with heavy
averaging the couplet is smeared below the shear threshold and the
detector reports nothing.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .geometry import RadarSite
from .moment import MomentField

__all__ = ["VortexDetection", "DetectionResult", "detect_vortices", "run_detection"]


@dataclass(frozen=True)
class VortexDetection:
    """One detected vortex signature."""

    azimuth_deg: float
    range_m: float
    delta_v: float
    n_cells: int

    def position(self, site: RadarSite) -> Tuple[float, float]:
        azimuth = math.radians(self.azimuth_deg)
        return (
            site.x + self.range_m * math.sin(azimuth),
            site.y + self.range_m * math.cos(azimuth),
        )


@dataclass(frozen=True)
class DetectionResult:
    """Detections for one moment field plus algorithm runtime."""

    detections: Tuple[VortexDetection, ...]
    runtime_seconds: float
    averaging_size: int

    @property
    def count(self) -> int:
        return len(self.detections)


def _cluster_hits(
    hits: List[Tuple[int, int, float]],
    azimuths: np.ndarray,
    ranges: np.ndarray,
    azimuth_gap: float,
    range_gap: float,
) -> List[VortexDetection]:
    """Group neighbouring shear hits into one detection each.

    Hits are ``(block_index, gate_index, delta_v)``.  Two hits belong to
    the same cluster when both their azimuth and range separations are
    within the given gaps, which collapses the several cells a single
    vortex lights up into one reported detection.
    """
    clusters: List[List[Tuple[int, int, float]]] = []
    for hit in sorted(hits):
        b, g, dv = hit
        placed = False
        for cluster in clusters:
            cb, cg, _ = cluster[-1]
            if (
                abs(azimuths[b] - azimuths[cb]) <= azimuth_gap
                and abs(ranges[g] - ranges[cg]) <= range_gap
            ):
                cluster.append(hit)
                placed = True
                break
        if not placed:
            clusters.append([hit])

    detections = []
    for cluster in clusters:
        blocks = [b for b, _, _ in cluster]
        gates = [g for _, g, _ in cluster]
        dvs = [dv for _, _, dv in cluster]
        detections.append(
            VortexDetection(
                azimuth_deg=float(np.mean(azimuths[blocks])),
                range_m=float(np.mean(ranges[gates])),
                delta_v=float(np.max(dvs)),
                n_cells=len(cluster),
            )
        )
    return detections


def detect_vortices(
    moments: MomentField,
    site: RadarSite,
    delta_v_threshold: float = 40.0,
    max_signature_width_m: float = 2000.0,
    min_reflectivity_dbz: float = 20.0,
    cluster_azimuth_gap_deg: float = 6.0,
    cluster_range_gap_m: float = 2500.0,
) -> List[VortexDetection]:
    """Find tornado vortex signatures in one moment field.

    For every range gate, the detector slides an azimuthal window whose
    physical arc length is at most ``max_signature_width_m`` (the scale
    of a tornado couplet rather than a storm-scale gradient) and looks
    for a velocity couplet: the difference between the maximum outbound
    and maximum inbound velocity inside the window.  A window is a
    *hit* when that delta-V exceeds ``delta_v_threshold`` m/s and both
    extreme cells carry meaningful reflectivity.  Hits are clustered
    into one detection per vortex.

    Heavier pulse averaging widens the azimuthal spacing of the moment
    cells and averages inbound and outbound flow into the same cell, so
    the measured delta-V collapses and the signature disappears -- the
    degradation Table 1 documents.
    """
    if moments.n_blocks < 2:
        return []
    velocity = moments.velocity
    reflectivity = moments.reflectivity_dbz
    azimuths = moments.azimuths_deg
    ranges = moments.ranges_m
    azimuth_step = moments.azimuth_resolution_deg()
    if not np.isfinite(azimuth_step) or azimuth_step <= 0:
        return []

    hits: List[Tuple[int, int, float]] = []
    refl_ok = reflectivity >= min_reflectivity_dbz
    for g, range_m in enumerate(ranges):
        if range_m <= 0:
            continue
        # Window size (in blocks) whose arc length stays within the
        # tornado couplet scale at this range; at least one neighbour.
        max_width_deg = math.degrees(max_signature_width_m / range_m)
        window = max(int(round(max_width_deg / azimuth_step)), 1)
        column = velocity[:, g]
        usable = refl_ok[:, g]
        if not np.any(usable):
            continue
        for b in range(moments.n_blocks - 1):
            end = min(b + window + 1, moments.n_blocks)
            segment = column[b:end]
            segment_ok = usable[b:end]
            if np.count_nonzero(segment_ok) < 2:
                continue
            values = segment[segment_ok]
            delta_v = float(values.max() - values.min())
            if delta_v >= delta_v_threshold:
                hits.append((b, g, delta_v))
    if not hits:
        return []
    return _cluster_hits(
        hits, azimuths, ranges, cluster_azimuth_gap_deg, cluster_range_gap_m
    )


def run_detection(
    moments: MomentField,
    site: RadarSite,
    **kwargs,
) -> DetectionResult:
    """Run the detector and record its wall-clock runtime (Table 1, column 3)."""
    start = time.perf_counter()
    detections = detect_vortices(moments, site, **kwargs)
    elapsed = time.perf_counter() - start
    return DetectionResult(
        detections=tuple(detections),
        runtime_seconds=elapsed,
        averaging_size=moments.averaging_size,
    )
