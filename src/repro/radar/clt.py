"""Central Limit Theorem aggregation for correlated radar series.

Section 4.4 / 5.1: once a velocity sub-series is identified as MA-like,
the distribution of its average (or sum) follows from the CLT for time
series -- asymptotically Gaussian with a variance determined by the
autocovariances -- without fitting the MA coefficients precisely.  The
mean and variance can be estimated from the sample mean and the sample
autocovariance function in at most two scans of the data.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.distributions import Gaussian

from .timeseries import identify_ma_order, sample_autocovariance

__all__ = ["mean_distribution_from_series", "sum_distribution_from_series", "long_run_variance"]


def long_run_variance(series: Sequence[float], ma_order: Optional[int] = None) -> float:
    """Return the long-run variance ``gamma_0 + 2 * sum_{k<=q} gamma_k``.

    The MA order is identified from the data when not supplied.  The
    long-run variance is what replaces the i.i.d. variance in the CLT
    for dependent data.
    """
    x = np.asarray(series, dtype=float)
    if x.size < 3:
        raise ValueError("series must contain at least three observations")
    if ma_order is None:
        ma_order = identify_ma_order(x)
    ma_order = min(ma_order, x.size - 2)
    gammas = sample_autocovariance(x, ma_order)
    variance = float(gammas[0] + 2.0 * np.sum(gammas[1:]))
    return max(variance, 1e-12)


def mean_distribution_from_series(
    series: Sequence[float], ma_order: Optional[int] = None
) -> Gaussian:
    """Return the asymptotic distribution of the sample mean of an MA series.

    ``mean ~ N(x_bar, long_run_variance / n)``.  This is exactly the
    tuple-level distribution the radar T operator attaches to each
    averaged moment value.
    """
    x = np.asarray(series, dtype=float)
    variance = long_run_variance(x, ma_order) / x.size
    return Gaussian(float(x.mean()), math.sqrt(variance))


def sum_distribution_from_series(
    series: Sequence[float], ma_order: Optional[int] = None
) -> Gaussian:
    """Return the asymptotic distribution of the sum of an MA series."""
    x = np.asarray(series, dtype=float)
    variance = long_run_variance(x, ma_order) * x.size
    return Gaussian(float(x.sum()), math.sqrt(variance))
