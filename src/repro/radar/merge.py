"""Merging moment streams from multiple radars onto a Cartesian grid.

Section 2.2: the central node "converts data from polar coordinates
(centered at each radar) to Cartesian coordinates [...] and fuses (or
in the database terminology, joins) spatially overlapping data from
multiple radars."  The conversion produces uneven data density -- some
Cartesian cells receive many polar samples, some few or none -- which
is itself a source of uncertainty the merged product should expose.

:func:`merge_moment_fields` performs that fusion: every polar voxel is
mapped to a Cartesian cell; cells accumulate inverse-variance-weighted
velocity and reflectivity from all contributing radars; and the output
records, per cell, the merged estimate, its variance, and the number of
contributing samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import Gaussian

from .geometry import RadarSite, polar_to_cartesian
from .moment import MomentField

__all__ = ["CartesianGrid", "MergedCell", "MergedField", "merge_moment_fields"]


@dataclass(frozen=True)
class CartesianGrid:
    """A uniform Cartesian grid over the merged coverage area."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float
    resolution: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError("grid extents must be non-empty")
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")

    @property
    def n_x(self) -> int:
        return int(math.ceil((self.x_max - self.x_min) / self.resolution))

    @property
    def n_y(self) -> int:
        return int(math.ceil((self.y_max - self.y_min) / self.resolution))

    def cell_of(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        ix = np.floor((np.asarray(x, dtype=float) - self.x_min) / self.resolution).astype(int)
        iy = np.floor((np.asarray(y, dtype=float) - self.y_min) / self.resolution).astype(int)
        return ix, iy

    def center_of(self, ix: int, iy: int) -> Tuple[float, float]:
        return (
            self.x_min + (ix + 0.5) * self.resolution,
            self.y_min + (iy + 0.5) * self.resolution,
        )

    def contains(self, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
        return (ix >= 0) & (ix < self.n_x) & (iy >= 0) & (iy < self.n_y)


@dataclass(frozen=True)
class MergedCell:
    """Merged moment data for one Cartesian cell."""

    ix: int
    iy: int
    x: float
    y: float
    velocity_mean: float
    velocity_variance: float
    reflectivity_dbz: float
    n_samples: int
    contributing_sites: Tuple[str, ...]

    def velocity_distribution(self) -> Gaussian:
        """Return the merged velocity as a Gaussian tuple-level distribution."""
        return Gaussian(self.velocity_mean, math.sqrt(max(self.velocity_variance, 1e-12)))


@dataclass(frozen=True)
class MergedField:
    """The merged Cartesian product of several radars' moment fields."""

    grid: CartesianGrid
    cells: Tuple[MergedCell, ...]

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def coverage_fraction(self) -> float:
        """Return the fraction of grid cells that received any data."""
        return self.n_cells / float(self.grid.n_x * self.grid.n_y)

    def density_imbalance(self) -> float:
        """Return max/median sample count across covered cells.

        Large values indicate the uneven data density the paper warns
        about: near-radar cells receive many polar samples while distant
        cells receive few.
        """
        counts = np.array([cell.n_samples for cell in self.cells], dtype=float)
        if counts.size == 0:
            return float("nan")
        median = float(np.median(counts))
        return float(counts.max() / max(median, 1.0))


def merge_moment_fields(
    fields: Sequence[Tuple[MomentField, RadarSite]],
    grid: CartesianGrid,
    velocity_noise_floor: float = 0.25,
    min_reflectivity_dbz: Optional[float] = None,
) -> MergedField:
    """Fuse several radars' moment fields onto a Cartesian grid.

    Each polar voxel contributes its velocity with an inverse-variance
    weight derived from its spectral width (wider spectra mean noisier
    velocity estimates).  Reflectivity is combined with the same
    weights.  Cells receiving no samples are omitted.
    """
    if not fields:
        raise ValueError("at least one (MomentField, RadarSite) pair is required")
    weight_sum: Dict[Tuple[int, int], float] = {}
    velocity_acc: Dict[Tuple[int, int], float] = {}
    velocity_sq_acc: Dict[Tuple[int, int], float] = {}
    reflectivity_acc: Dict[Tuple[int, int], float] = {}
    count: Dict[Tuple[int, int], int] = {}
    sites: Dict[Tuple[int, int], set] = {}

    for moments, site in fields:
        az_grid = np.repeat(moments.azimuths_deg[:, None], moments.n_gates, axis=1)
        rng_grid = np.repeat(moments.ranges_m[None, :], moments.n_blocks, axis=0)
        x, y = polar_to_cartesian(az_grid, rng_grid, site)
        ix, iy = grid.cell_of(x, y)
        inside = grid.contains(ix, iy)
        if min_reflectivity_dbz is not None:
            inside &= moments.reflectivity_dbz >= min_reflectivity_dbz
        variance = np.maximum(moments.spectrum_width ** 2, velocity_noise_floor)
        weights = 1.0 / variance
        for b, g in zip(*np.nonzero(inside)):
            key = (int(ix[b, g]), int(iy[b, g]))
            w = float(weights[b, g])
            v = float(moments.velocity[b, g])
            weight_sum[key] = weight_sum.get(key, 0.0) + w
            velocity_acc[key] = velocity_acc.get(key, 0.0) + w * v
            velocity_sq_acc[key] = velocity_sq_acc.get(key, 0.0) + w * v * v
            reflectivity_acc[key] = (
                reflectivity_acc.get(key, 0.0) + w * float(moments.reflectivity_dbz[b, g])
            )
            count[key] = count.get(key, 0) + 1
            sites.setdefault(key, set()).add(site.site_id)

    cells: List[MergedCell] = []
    for key in sorted(weight_sum):
        total_weight = weight_sum[key]
        mean_v = velocity_acc[key] / total_weight
        # Weighted within-cell scatter plus the estimator variance of the mean.
        scatter = max(velocity_sq_acc[key] / total_weight - mean_v ** 2, 0.0)
        estimator_variance = 1.0 / total_weight
        x, y = grid.center_of(*key)
        cells.append(
            MergedCell(
                ix=key[0],
                iy=key[1],
                x=x,
                y=y,
                velocity_mean=mean_v,
                velocity_variance=scatter + estimator_variance,
                reflectivity_dbz=reflectivity_acc[key] / total_weight,
                n_samples=count[key],
                contributing_sites=tuple(sorted(sites[key])),
            )
        )
    return MergedField(grid=grid, cells=tuple(cells))
