"""Error types for the CQL front end.

Every error carries a source position (1-based line and column) and the
offending token text, so a service hosting many registered queries can
point a user at the exact character that broke — the message format is
stable and covered by golden tests.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["CQLError", "CQLSyntaxError", "CQLSemanticError"]


class CQLError(Exception):
    """Base class for all CQL front-end errors."""


class _PositionedError(CQLError):
    def __init__(
        self,
        message: str,
        line: int,
        column: int,
        token: Optional[str] = None,
    ):
        self.message = message
        self.line = line
        self.column = column
        self.token = token
        super().__init__(str(self))

    _label = "CQL error"

    def __str__(self) -> str:
        where = f"line {self.line}, column {self.column}"
        if self.token is not None:
            return f"{self._label} at {where}: {self.message} (near {self.token!r})"
        return f"{self._label} at {where}: {self.message}"


class CQLSyntaxError(_PositionedError):
    """Raised by the lexer/parser for malformed query text."""

    _label = "CQL syntax error"


class CQLSemanticError(_PositionedError):
    """Raised during lowering for well-formed text that cannot compile.

    Examples: an aggregate in HAVING that does not match the SELECT
    list, a ``WITH PROBABILITY`` qualifier on a deterministic
    comparison, or a reference to an unregistered match function.
    """

    _label = "CQL semantic error"
