"""AST node types for the CQL dialect.

Plain frozen dataclasses produced by :mod:`repro.cql.parser` and
consumed by :mod:`repro.cql.lowering`.  Every node keeps the 1-based
source position of its first token so lowering errors can point at the
query text, and expression nodes know how to render themselves back to
a *canonical* text form — the lowering uses that rendering as the
structural fingerprint of compiled closures, which is what lets two
queries registered from the same text share physical operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

__all__ = [
    "Expr",
    "Literal",
    "Ident",
    "Unary",
    "BinOp",
    "Call",
    "AggregateCall",
    "WindowClause",
    "StreamRef",
    "BandMatchTerm",
    "FuncMatchTerm",
    "JoinClause",
    "Conjunct",
    "SelectItem",
    "StarItem",
    "AggregateItem",
    "DeriveItem",
    "ColumnItem",
    "HavingClauseSyntax",
    "SelectQuery",
    "Query",
]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    line: int
    column: int

    def canonical(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: Union[float, int, str]

    def canonical(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class Ident(Expr):
    """An attribute reference, optionally qualified (``alias.attr``)."""

    name: str
    qualifier: Optional[str] = None

    def canonical(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "-" | "NOT"
    operand: Expr

    def canonical(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.canonical()})"
        return f"({self.op}{self.operand.canonical()})"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # arithmetic, comparison, AND, OR
    left: Expr
    right: Expr

    def canonical(self) -> str:
        return f"({self.left.canonical()} {self.op} {self.right.canonical()})"


@dataclass(frozen=True)
class Call(Expr):
    name: str
    args: Tuple[Expr, ...]

    def canonical(self) -> str:
        return f"{self.name}({', '.join(a.canonical() for a in self.args)})"


# ----------------------------------------------------------------------
# Clauses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateCall:
    """``SUM(weight)`` / ``COUNT(*)`` — function is lower-cased."""

    line: int
    column: int
    function: str
    argument: str  # attribute name, or "*" for COUNT(*)

    def canonical(self) -> str:
        return f"{self.function}({self.argument})"


@dataclass(frozen=True)
class WindowClause:
    """A ``[...]`` window on a stream reference.

    ``kind`` is ``"range"`` (time, sliding unless ``slide`` equals the
    range, which makes it tumbling), ``"rows"`` (count, tumbling) or
    ``"now"``.
    """

    line: int
    column: int
    kind: str
    length: float = 0.0
    slide: Optional[float] = None


@dataclass(frozen=True)
class StreamRef:
    line: int
    column: int
    name: str
    alias: Optional[str] = None
    window: Optional[WindowClause] = None


@dataclass(frozen=True)
class BandMatchTerm:
    """``left.x ~= right.x WITHIN 4.0`` — band equality of uncertain attrs."""

    line: int
    column: int
    left: Ident
    right: Ident
    width: float


@dataclass(frozen=True)
class FuncMatchTerm:
    """``MATCH fn`` — a registered UDF ``fn(left_tuple, right_tuple) -> prob``."""

    line: int
    column: int
    name: str


@dataclass(frozen=True)
class JoinClause:
    line: int
    column: int
    right: StreamRef
    terms: Tuple[Union[BandMatchTerm, FuncMatchTerm], ...]
    min_probability: Optional[float] = None


@dataclass(frozen=True)
class Conjunct:
    """One WHERE conjunct, optionally ``WITH PROBABILITY p``."""

    expr: Expr
    probability: Optional[float] = None


# ----------------------------------------------------------------------
# Select items
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    line: int
    column: int


@dataclass(frozen=True)
class StarItem(SelectItem):
    pass


@dataclass(frozen=True)
class AggregateItem(SelectItem):
    call: AggregateCall = None  # type: ignore[assignment]
    alias: Optional[str] = None


@dataclass(frozen=True)
class DeriveItem(SelectItem):
    expr: Expr = None  # type: ignore[assignment]
    name: str = ""
    uncertain: bool = False


@dataclass(frozen=True)
class ColumnItem(SelectItem):
    name: str = ""
    qualifier: Optional[str] = None


@dataclass(frozen=True)
class HavingClauseSyntax:
    line: int
    column: int
    call: AggregateCall
    threshold: float
    min_probability: Optional[float] = None


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectQuery:
    line: int
    column: int
    items: Tuple[SelectItem, ...]
    source: StreamRef = None  # type: ignore[assignment]
    join: Optional[JoinClause] = None
    where: Tuple[Conjunct, ...] = ()
    group_by: Optional[Expr] = None
    having: Optional[HavingClauseSyntax] = None


@dataclass(frozen=True)
class Query:
    """A full query: one SELECT, or several combined with UNION."""

    selects: Tuple[SelectQuery, ...] = field(default_factory=tuple)

    @property
    def is_union(self) -> bool:
        return len(self.selects) > 1
