"""Lowering: CQL AST → the logical plan IR of :mod:`repro.plan`.

The lowering walks one :class:`~repro.cql.syntax.SelectQuery` at a time
and builds the same node chain the fluent builder would::

    Source → Derive (SELECT expr AS name)
           → [Join]
           → Filter / ProbFilter (WHERE conjuncts, in order)
           → Aggregate (windowed FROM + SELECT aggregate + GROUP BY/HAVING)

so text queries and :class:`~repro.plan.Stream` pipelines compile
through the *same* planner, rewrites, cost model and operators — the
CQL surface adds parsing, not a second execution path.  UNION lowers
each branch and merges them with a :class:`~repro.plan.UnionNode`.

Compiled closures (derive expressions, predicates, group keys, join
match functions) are tagged with a canonical fingerprint derived from
the query text and the identities of any referenced UDFs, so two
queries registered from the same text produce *structurally equal*
plan nodes — which is what lets a
:class:`~repro.service.QuerySession` share their physical operators.

Classification of WHERE conjuncts: a constant comparison on an
attribute the schema declares *uncertain* (or any comparison carrying
``WITH PROBABILITY``) becomes a probabilistic filter evaluated on the
attribute's distribution; everything else compiles to an ordinary
deterministic predicate.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.join import match_probability_band
from repro.core.selection import Comparison
from repro.plan.builder import Stream
from repro.plan.fingerprint import FINGERPRINT_ATTR, callable_fingerprint
from repro.plan.nodes import (
    AggregateNode,
    DeriveNode,
    FilterNode,
    JoinNode,
    LogicalNode,
    LogicalPlan,
    ProbFilterNode,
    SourceNode,
    UnionNode,
)
from repro.core.aggregation import AGGREGATE_FUNCTIONS, HavingClause
from repro.streams.windows import (
    NowWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
    WindowSpec,
)

from .errors import CQLSemanticError
from .parser import parse
from .syntax import (
    AggregateItem,
    BandMatchTerm,
    BinOp,
    Call,
    ColumnItem,
    Conjunct,
    DeriveItem,
    Expr,
    FuncMatchTerm,
    Ident,
    Literal,
    Query,
    SelectQuery,
    StarItem,
    StreamRef,
    Unary,
    WindowClause,
)

__all__ = ["lower_query", "compile_cql", "BUILTIN_FUNCTIONS"]

#: Functions available in every query without registration.
BUILTIN_FUNCTIONS: Dict[str, Callable] = {
    "abs": abs,
    "min": min,
    "max": max,
    "round": round,
    "floor": math.floor,
    "ceil": math.ceil,
    "sqrt": math.sqrt,
}

_COMPARISON_FLIP = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "=", "!=": "!="}


def _constant_number(expr: Expr) -> Optional[float]:
    """The numeric value of a literal constant, handling unary minus."""
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float)):
        return float(expr.value)
    if isinstance(expr, Unary) and expr.op == "-":
        inner = _constant_number(expr.operand)
        return None if inner is None else -inner
    return None


def _tuple_get(item, name: str):
    """Runtime attribute access: deterministic value, else distribution."""
    values = item.values
    if name in values:
        return values[name]
    uncertain = item.uncertain
    if name in uncertain:
        return uncertain[name]
    raise KeyError(f"attribute {name!r} not present on tuple")


class _Scope:
    """Name resolution for one expression context.

    ``aliases`` maps a stream alias to the runtime attribute prefix its
    attributes carry in this context ("" before a join, ``"obj_"``
    after one).  ``uncertain`` is the set of runtime attribute names
    known to be uncertain (None = unknown / open schema).
    """

    def __init__(
        self,
        aliases: Mapping[str, str],
        uncertain: Optional[Set[str]],
        functions: Mapping[str, Callable],
    ):
        self.aliases = dict(aliases)
        self.uncertain = uncertain
        self.functions = functions

    def resolve(self, ident: Ident) -> str:
        if ident.qualifier is None:
            return ident.name
        try:
            prefix = self.aliases[ident.qualifier]
        except KeyError:
            known = ", ".join(sorted(self.aliases)) or "none"
            raise CQLSemanticError(
                f"unknown stream alias {ident.qualifier!r} (in scope: {known})",
                ident.line,
                ident.column,
                ident.qualifier,
            ) from None
        return f"{prefix}{ident.name}"

    def is_uncertain(self, runtime_name: str) -> bool:
        return self.uncertain is not None and runtime_name in self.uncertain

    def function(self, call: Call) -> Callable:
        fn = self.functions.get(call.name)
        if fn is None:
            raise CQLSemanticError(
                f"unknown function {call.name!r}; register it via the "
                "functions mapping",
                call.line,
                call.column,
                call.name,
            )
        return fn


class _CompiledExpr:
    """A compiled expression: closure + referenced names + canonical text."""

    def __init__(self, fn: Callable, uses: Set[str], canonical: str):
        self.fn = fn
        self.uses = uses
        self.canonical = canonical


def _fingerprint_tag(scope: _Scope, canonical: str, udf_names: Sequence[str]) -> tuple:
    udfs = tuple(
        (name, callable_fingerprint(scope.functions[name]))
        for name in sorted(set(udf_names))
    )
    return ("cql-expr", canonical, udfs)


def _compile_expr(expr: Expr, scope: _Scope) -> _CompiledExpr:
    """Compile an expression AST into a tuple-evaluating closure."""
    uses: Set[str] = set()
    udf_names: List[str] = []

    def build(e: Expr) -> Callable:
        if isinstance(e, Literal):
            value = e.value
            return lambda t: value
        if isinstance(e, Ident):
            name = scope.resolve(e)
            uses.add(name)
            return lambda t: _tuple_get(t, name)
        if isinstance(e, Unary):
            inner = build(e.operand)
            if e.op == "NOT":
                return lambda t: not inner(t)
            return lambda t: -inner(t)
        if isinstance(e, Call):
            fn = scope.function(e)
            udf_names.append(e.name)
            args = [build(a) for a in e.args]
            return lambda t: fn(*[a(t) for a in args])
        if isinstance(e, BinOp):
            if e.op == "BETWEEN":
                value = build(e.left)
                assert isinstance(e.right, BinOp)  # parser guarantees low AND high
                low, high = build(e.right.left), build(e.right.right)
                return lambda t: low(t) <= value(t) <= high(t)
            left, right = build(e.left), build(e.right)
            op = e.op
            if op == "AND":
                return lambda t: bool(left(t)) and bool(right(t))
            if op == "OR":
                return lambda t: bool(left(t)) or bool(right(t))
            if op == "+":
                return lambda t: left(t) + right(t)
            if op == "-":
                return lambda t: left(t) - right(t)
            if op == "*":
                return lambda t: left(t) * right(t)
            if op == "/":
                return lambda t: left(t) / right(t)
            if op == ">":
                return lambda t: left(t) > right(t)
            if op == "<":
                return lambda t: left(t) < right(t)
            if op == ">=":
                return lambda t: left(t) >= right(t)
            if op == "<=":
                return lambda t: left(t) <= right(t)
            if op == "=":
                return lambda t: left(t) == right(t)
            if op == "!=":
                return lambda t: left(t) != right(t)
        raise CQLSemanticError(  # pragma: no cover - parser emits no other nodes
            f"cannot compile expression node {type(e).__name__}", e.line, e.column
        )

    fn = build(expr)
    canonical = _canonical_in_scope(expr, scope)
    setattr(fn, FINGERPRINT_ATTR, _fingerprint_tag(scope, canonical, udf_names))
    return _CompiledExpr(fn, uses, canonical)


def _canonical_in_scope(expr: Expr, scope: _Scope) -> str:
    """Canonical text with identifiers resolved to runtime names."""
    if isinstance(expr, Ident):
        return scope.resolve(expr)
    if isinstance(expr, Literal):
        return expr.canonical()
    if isinstance(expr, Unary):
        inner = _canonical_in_scope(expr.operand, scope)
        return f"(NOT {inner})" if expr.op == "NOT" else f"({expr.op}{inner})"
    if isinstance(expr, BinOp):
        left = _canonical_in_scope(expr.left, scope)
        right = _canonical_in_scope(expr.right, scope)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, Call):
        args = ", ".join(_canonical_in_scope(a, scope) for a in expr.args)
        return f"{expr.name}({args})"
    return expr.canonical()


# ----------------------------------------------------------------------
# Windows
# ----------------------------------------------------------------------
def _window_spec(clause: WindowClause) -> WindowSpec:
    if clause.kind == "now":
        return NowWindow()
    if clause.kind == "rows":
        size = int(clause.length)
        if size < 1 or size != clause.length:
            raise CQLSemanticError(
                "[ROWS n] needs a positive whole number of rows",
                clause.line,
                clause.column,
            )
        return TumblingCountWindow(size)
    # RANGE: sliding unless SLIDE equals the range (tumbling).
    if clause.length <= 0:
        raise CQLSemanticError(
            "[RANGE n] needs a positive window length", clause.line, clause.column
        )
    if clause.slide is None:
        return SlidingTimeWindow(clause.length)
    if clause.slide == clause.length:
        return TumblingTimeWindow(clause.length)
    raise CQLSemanticError(
        "only tumbling slides are supported: SLIDE must equal RANGE",
        clause.line,
        clause.column,
    )


# ----------------------------------------------------------------------
# Source resolution
# ----------------------------------------------------------------------
def _as_source_node(name: str, declared) -> SourceNode:
    if isinstance(declared, Stream):
        declared = declared.node
    if not isinstance(declared, SourceNode):
        raise CQLSemanticError(
            f"source {name!r} must be declared as a Stream.source(...) or "
            f"SourceNode, got {type(declared).__name__}",
            1,
            1,
        )
    if declared.name != name:
        raise CQLSemanticError(
            f"source declared under key {name!r} is named {declared.name!r}",
            1,
            1,
        )
    return declared


# ----------------------------------------------------------------------
# The lowering itself
# ----------------------------------------------------------------------
class _Lowerer:
    def __init__(
        self,
        sources: Optional[Mapping[str, Union[Stream, SourceNode]]],
        functions: Optional[Mapping[str, Callable]],
    ):
        self.declared = {
            name: _as_source_node(name, decl) for name, decl in (sources or {}).items()
        }
        self.functions: Dict[str, Callable] = dict(BUILTIN_FUNCTIONS)
        self.functions.update(functions or {})
        # One SourceNode object per source name across the whole query,
        # so UNION branches reading the same stream share it.
        self._source_nodes: Dict[str, SourceNode] = {}

    def source_node(self, ref: StreamRef) -> SourceNode:
        node = self._source_nodes.get(ref.name)
        if node is None:
            node = self.declared.get(ref.name) or SourceNode(name=ref.name)
            self._source_nodes[ref.name] = node
        return node

    # ------------------------------------------------------------------
    def lower(self, query: Query) -> LogicalPlan:
        roots = [self._lower_select(select) for select in query.selects]
        if len(roots) == 1:
            plan = LogicalPlan(outputs=(roots[0],))
        else:
            plan = LogicalPlan(outputs=(UnionNode(sources=tuple(roots)),))
        plan.validate()
        return plan

    # ------------------------------------------------------------------
    def _lower_select(self, select: SelectQuery) -> LogicalNode:
        left_source = self.source_node(select.source)
        left_alias = select.source.alias or select.source.name

        # -- classify select items ---------------------------------------
        derive_items: List[DeriveItem] = []
        aggregate_items: List[AggregateItem] = []
        column_items: List[ColumnItem] = []
        for item in select.items:
            if isinstance(item, StarItem):
                continue
            if isinstance(item, DeriveItem):
                derive_items.append(item)
            elif isinstance(item, AggregateItem):
                aggregate_items.append(item)
            else:
                column_items.append(item)  # type: ignore[arg-type]
        if len(aggregate_items) > 1:
            extra = aggregate_items[1]
            raise CQLSemanticError(
                "only one aggregate per SELECT is supported",
                extra.line,
                extra.column,
                extra.call.canonical(),
            )

        # -- derive stage (pre-join, pre-window) -------------------------
        uncertain: Optional[Set[str]] = (
            set(left_source.uncertain) if left_source.uncertain is not None else None
        )
        pre_scope = _Scope({left_alias: ""}, uncertain, self.functions)
        node: LogicalNode = left_source
        if derive_items:
            values: List[Tuple[str, Callable]] = []
            uncertain_fns: List[Tuple[str, Callable]] = []
            for item in derive_items:
                compiled = _compile_expr(item.expr, pre_scope)
                if item.uncertain:
                    uncertain_fns.append((item.name, compiled.fn))
                    if uncertain is not None:
                        uncertain.add(item.name)
                else:
                    values.append((item.name, compiled.fn))
            node = DeriveNode(
                input=node,
                value_functions=tuple(values),
                uncertain_functions=tuple(uncertain_fns),
            )

        # -- join --------------------------------------------------------
        scope = _Scope({left_alias: ""}, set(uncertain) if uncertain is not None else None,
                       self.functions)
        if select.join is not None:
            if select.source.window is not None:
                raise CQLSemanticError(
                    "a window on the left join input is not supported; the join "
                    "window comes from the joined stream's [RANGE ...]",
                    select.source.window.line,
                    select.source.window.column,
                )
            node, scope = self._lower_join(select, node, left_alias, uncertain)

        # -- WHERE conjuncts ---------------------------------------------
        in_join = select.join is not None
        for conjunct in select.where:
            node = self._lower_conjunct(conjunct, node, scope, in_join)

        # -- windowed aggregation ----------------------------------------
        window_clause = select.source.window
        if aggregate_items:
            node = self._lower_aggregate(
                select, aggregate_items[0], column_items, node, scope, window_clause
            )
        else:
            if select.having is not None:
                raise CQLSemanticError(
                    "HAVING needs a matching aggregate in SELECT",
                    select.having.line,
                    select.having.column,
                )
            if select.group_by is not None:
                expr = select.group_by if isinstance(select.group_by, Expr) else select.group_by[0]
                raise CQLSemanticError(
                    "GROUP BY needs an aggregate in SELECT", expr.line, expr.column
                )
            if window_clause is not None and window_clause.kind != "now":
                raise CQLSemanticError(
                    "a windowed FROM needs an aggregate in SELECT",
                    window_clause.line,
                    window_clause.column,
                )
        return node

    # ------------------------------------------------------------------
    def _lower_join(
        self,
        select: SelectQuery,
        left_node: LogicalNode,
        left_alias: str,
        left_uncertain: Optional[Set[str]],
    ) -> Tuple[LogicalNode, _Scope]:
        join = select.join
        assert join is not None
        right_source = self.source_node(join.right)
        right_alias = join.right.alias or join.right.name
        if right_alias == left_alias:
            raise CQLSemanticError(
                f"both join inputs are called {left_alias!r}; alias one with AS",
                join.right.line,
                join.right.column,
                right_alias,
            )
        window = join.right.window
        if window is None or window.kind != "range" or window.slide is not None:
            where = window or join.right
            raise CQLSemanticError(
                "the joined stream needs a sliding [RANGE n SECONDS] window",
                where.line,
                where.column,
            )
        prefix_left, prefix_right = f"{left_alias}_", f"{right_alias}_"

        branch_scopes = {
            left_alias: _Scope({left_alias: ""}, left_uncertain, self.functions),
            right_alias: _Scope(
                {right_alias: ""},
                set(right_source.uncertain) if right_source.uncertain is not None else None,
                self.functions,
            ),
        }
        match_fn, canonical = self._compile_match(join.terms, left_alias, right_alias,
                                                  branch_scopes)
        min_probability = 0.5 if join.min_probability is None else join.min_probability
        node = JoinNode(
            left=left_node,
            right=right_source,
            on=match_fn,
            window_length=window.length,
            min_probability=min_probability,
            prefix_left=prefix_left,
            prefix_right=prefix_right,
        )
        # Post-join scope: both aliases resolve through their prefixes.
        post_uncertain: Optional[Set[str]] = None
        left_unc = branch_scopes[left_alias].uncertain
        right_unc = branch_scopes[right_alias].uncertain
        if left_unc is not None and right_unc is not None:
            post_uncertain = {f"{prefix_left}{n}" for n in left_unc}
            post_uncertain |= {f"{prefix_right}{n}" for n in right_unc}
        scope = _Scope(
            {left_alias: prefix_left, right_alias: prefix_right},
            post_uncertain,
            self.functions,
        )
        return node, scope

    def _compile_match(
        self,
        terms,
        left_alias: str,
        right_alias: str,
        branch_scopes: Mapping[str, _Scope],
    ) -> Tuple[Callable, str]:
        """Build ``on(left, right) -> probability`` from the ON terms."""
        factors: List[Callable] = []
        canonicals: List[str] = []
        udf_names: List[str] = []
        for term in terms:
            if isinstance(term, FuncMatchTerm):
                fn = self.functions.get(term.name)
                if fn is None:
                    raise CQLSemanticError(
                        f"unknown match function {term.name!r}; register it via "
                        "the functions mapping",
                        term.line,
                        term.column,
                        term.name,
                    )
                factors.append(fn)
                canonicals.append(f"MATCH {term.name}")
                udf_names.append(term.name)
                continue
            assert isinstance(term, BandMatchTerm)
            sides: Dict[str, str] = {}
            for ident in (term.left, term.right):
                if ident.qualifier not in (left_alias, right_alias):
                    raise CQLSemanticError(
                        f"join match terms need both sides qualified with "
                        f"{left_alias!r} or {right_alias!r}",
                        ident.line,
                        ident.column,
                        ident.canonical(),
                    )
                if ident.qualifier in sides:
                    raise CQLSemanticError(
                        "a band match term needs one attribute from each side",
                        ident.line,
                        ident.column,
                        ident.canonical(),
                    )
                sides[ident.qualifier] = ident.name
            left_attr, right_attr = sides[left_alias], sides[right_alias]
            width = term.width

            def band(l, r, _la=left_attr, _ra=right_attr, _w=width):  # noqa: E741
                return match_probability_band(
                    l.distribution(_la), r.distribution(_ra), _w
                )

            factors.append(band)
            canonicals.append(
                f"{left_alias}.{left_attr} ~= {right_alias}.{right_attr} WITHIN {width!r}"
            )

        def on(left, right):
            probability = 1.0
            for factor in factors:
                probability *= factor(left, right)
            return probability

        canonical = " AND ".join(canonicals)
        udfs = tuple(
            (name, callable_fingerprint(self.functions[name]))
            for name in sorted(set(udf_names))
        )
        setattr(on, FINGERPRINT_ATTR, ("cql-match", canonical, udfs))
        return on, canonical

    # ------------------------------------------------------------------
    def _lower_conjunct(
        self,
        conjunct: Conjunct,
        node: LogicalNode,
        scope: _Scope,
        in_join: bool,
    ) -> LogicalNode:
        prob = self._as_prob_filter(conjunct, scope)
        if prob is not None:
            attribute, comparison, threshold, upper = prob
            min_probability = (
                0.5 if conjunct.probability is None else conjunct.probability
            )
            if not 0.0 <= min_probability <= 1.0:
                raise CQLSemanticError(
                    "WITH PROBABILITY needs a value in [0, 1]",
                    conjunct.expr.line,
                    conjunct.expr.column,
                )
            return ProbFilterNode(
                input=node,
                attribute=attribute,
                comparison=comparison,
                threshold=threshold,
                upper=upper,
                min_probability=min_probability,
                # Above a join the annotation is omitted so the planner
                # may push the filter into the join input.
                annotate=None if in_join else "selection_probability",
            )
        if conjunct.probability is not None:
            raise CQLSemanticError(
                "WITH PROBABILITY applies to constant comparisons on uncertain "
                "attributes",
                conjunct.expr.line,
                conjunct.expr.column,
            )
        compiled = _compile_expr(conjunct.expr, scope)
        return FilterNode(
            input=node,
            predicate=compiled.fn,
            uses=frozenset(compiled.uses),
            description=compiled.canonical,
        )

    def _as_prob_filter(
        self, conjunct: Conjunct, scope: _Scope
    ) -> Optional[Tuple[str, Comparison, float, Optional[float]]]:
        """Recognise ``attr cmp number`` / ``attr BETWEEN a AND b`` on an
        uncertain attribute; returns None when the conjunct is an
        ordinary deterministic predicate."""
        expr = conjunct.expr
        if not isinstance(expr, BinOp):
            return None
        if expr.op == "BETWEEN":
            if not isinstance(expr.left, Ident):
                return None
            bounds = expr.right
            assert isinstance(bounds, BinOp)
            low = _constant_number(bounds.left)
            high = _constant_number(bounds.right)
            if low is None or high is None:
                return None
            attribute = scope.resolve(expr.left)
            if conjunct.probability is None and not scope.is_uncertain(attribute):
                return None
            return attribute, Comparison.BETWEEN, low, high
        if expr.op not in (">", "<", ">=", "<="):
            if expr.op in ("=", "!="):
                # Equality on an uncertain attribute has measure zero;
                # only flag it when the attribute is known uncertain.
                if isinstance(expr.left, Ident) and isinstance(expr.right, Literal):
                    attribute = scope.resolve(expr.left)
                    if scope.is_uncertain(attribute):
                        raise CQLSemanticError(
                            f"equality on uncertain attribute {attribute!r} is not "
                            "supported; use BETWEEN or a join match term",
                            expr.line,
                            expr.column,
                            expr.op,
                        )
            return None
        left, right, op = expr.left, expr.right, expr.op
        if not isinstance(left, Ident) and isinstance(right, Ident):
            left, right, op = right, left, _COMPARISON_FLIP[op]
        if not isinstance(left, Ident):
            return None
        threshold = _constant_number(right)
        if threshold is None:
            return None
        attribute = scope.resolve(left)
        if conjunct.probability is None and not scope.is_uncertain(attribute):
            return None
        comparison = Comparison.GREATER if op in (">", ">=") else Comparison.LESS
        return attribute, comparison, threshold, None

    # ------------------------------------------------------------------
    def _lower_aggregate(
        self,
        select: SelectQuery,
        item: AggregateItem,
        column_items: List[ColumnItem],
        node: LogicalNode,
        scope: _Scope,
        window_clause: Optional[WindowClause],
    ) -> LogicalNode:
        call = item.call
        if call.function not in AGGREGATE_FUNCTIONS:  # pragma: no cover - lexer gates
            raise CQLSemanticError(
                f"unsupported aggregate {call.function!r}", call.line, call.column
            )
        if window_clause is None:
            raise CQLSemanticError(
                f"{call.canonical()} needs a windowed FROM clause "
                "([RANGE ...], [ROWS n] or [NOW])",
                call.line,
                call.column,
                call.canonical(),
            )
        window = _window_spec(window_clause)

        group_exprs: List[Expr] = []
        if select.group_by is not None:
            group_exprs = (
                [select.group_by]
                if isinstance(select.group_by, Expr)
                else list(select.group_by)
            )
        key = None
        group_canonicals: List[str] = []
        if group_exprs:
            compiled = [_compile_expr(e, scope) for e in group_exprs]
            group_canonicals = [c.canonical for c in compiled]
            if len(compiled) == 1:
                key = compiled[0].fn
            else:
                fns = [c.fn for c in compiled]

                def key(t, _fns=tuple(fns)):  # noqa: F811
                    return tuple(fn(t) for fn in _fns)

                # The composite tag is built from the members' own tags,
                # which carry the identities of any referenced UDFs —
                # canonical text alone would let two sessions with
                # different UDF bindings falsely share the aggregate.
                setattr(
                    key,
                    FINGERPRINT_ATTR,
                    ("cql-key", tuple(getattr(fn, FINGERPRINT_ATTR) for fn in fns)),
                )

        # Plain columns next to an aggregate must be the GROUP BY key
        # (they surface as the result tuple's "group" attribute).
        for column in column_items:
            canonical = (
                f"{column.qualifier}.{column.name}" if column.qualifier else column.name
            )
            resolved = scope.resolve(
                Ident(column.line, column.column, column.name, column.qualifier)
            )
            if resolved not in group_canonicals and canonical not in group_canonicals:
                raise CQLSemanticError(
                    f"column {canonical!r} selected alongside an aggregate must "
                    "appear in GROUP BY",
                    column.line,
                    column.column,
                    canonical,
                )

        if call.argument == "*":
            if call.function != "count":
                raise CQLSemanticError(
                    f"{call.function.upper()}(*) is not supported; name an attribute",
                    call.line,
                    call.column,
                )
            attribute = "*"
            default_output = "count"
        else:
            parts = call.argument.split(".")
            ident = (
                Ident(call.line, call.column, parts[1], parts[0])
                if len(parts) == 2
                else Ident(call.line, call.column, parts[0])
            )
            attribute = scope.resolve(ident)
            default_output = None

        having = None
        if select.having is not None:
            having_syntax = select.having
            if (
                having_syntax.call.function != call.function
                or having_syntax.call.argument != call.argument
            ):
                raise CQLSemanticError(
                    f"HAVING aggregate {having_syntax.call.canonical()} does not "
                    f"match the SELECT aggregate {call.canonical()}",
                    having_syntax.call.line,
                    having_syntax.call.column,
                    having_syntax.call.canonical(),
                )
            min_probability = (
                0.5
                if having_syntax.min_probability is None
                else having_syntax.min_probability
            )
            having = HavingClause(
                threshold=having_syntax.threshold, min_probability=min_probability
            )

        return AggregateNode(
            input=node,
            window=window,
            attribute=attribute,
            function=call.function,
            strategy=None,  # the planner's cost model chooses
            key=key,
            having=having,
            output_attribute=item.alias or default_output,
        )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def lower_query(
    query: Union[str, Query],
    sources: Optional[Mapping[str, Union[Stream, SourceNode]]] = None,
    functions: Optional[Mapping[str, Callable]] = None,
) -> LogicalPlan:
    """Lower CQL text (or a parsed AST) into a validated logical plan.

    ``sources`` maps stream names to declared
    :meth:`Stream.source <repro.plan.Stream.source>` handles (or
    :class:`SourceNode` objects) — declaring them gives the query
    schema checking, uncertain-attribute classification in WHERE, and
    cost-model hints.  Undeclared names become open-schema sources.
    ``functions`` maps UDF names usable in expressions, ``MATCH``
    terms and GROUP BY keys.
    """
    ast = parse(query) if isinstance(query, str) else query
    return _Lowerer(sources, functions).lower(ast)


def compile_cql(
    query: Union[str, Query],
    sources: Optional[Mapping[str, Union[Stream, SourceNode]]] = None,
    functions: Optional[Mapping[str, Callable]] = None,
    mode: str = "auto",
    batch_size: Optional[int] = None,
    optimize: bool = True,
    planner=None,
):
    """Parse, lower and compile a CQL query; returns a ``CompiledQuery``.

    Equivalent to building the same pipeline with
    :class:`repro.plan.Stream` and calling ``compile()`` — text queries
    run through the identical planner and operators.
    """
    from repro.plan.planner import Planner

    plan = lower_query(query, sources=sources, functions=functions)
    active = planner or Planner()
    return active.compile(plan, mode=mode, batch_size=batch_size, optimize=optimize)
