"""Recursive-descent parser for the CQL-style dialect.

The grammar (EBNF; keywords are case-insensitive, ``--`` starts a line
comment)::

    query        = select , { "UNION" , select } ;
    select       = "SELECT" , select_list ,
                   "FROM" , stream_ref , [ join_clause ] ,
                   [ "WHERE" , conjunct , { "AND" , conjunct } ] ,
                   [ "GROUP" , "BY" , expression , { "," , expression } ] ,
                   [ "HAVING" , having ] ;
    select_list  = "*" | select_item , { "," , select_item } ;
    select_item  = aggregate , [ "AS" , identifier ]
                 | expression , "AS" , [ "UNCERTAIN" ] , identifier
                 | qualified ;
    aggregate    = ( "SUM" | "AVG" | "COUNT" | "MIN" | "MAX" ) ,
                   "(" , ( qualified | "*" ) , ")" ;
    stream_ref   = identifier , [ "AS" , identifier ] , [ window ] ;
    window       = "[" , "NOW" , "]"
                 | "[" , "ROWS" , number , "]"
                 | "[" , "RANGE" , number , [ "SECONDS" ] ,
                         [ "SLIDE" , number , [ "SECONDS" ] ] , "]" ;
    join_clause  = "JOIN" , stream_ref , "ON" , match_term ,
                   { "AND" , match_term } ,
                   [ "MIN" , "PROBABILITY" , number ] ;
    match_term   = "MATCH" , identifier
                 | qualified , "~=" , qualified , "WITHIN" , number ;
    conjunct     = comparison , [ "WITH" , "PROBABILITY" , number ] ;
    comparison   = sum , [ ( ">" | "<" | ">=" | "<=" | "=" | "!=" ) , sum
                         | "BETWEEN" , sum , "AND" , sum ] ;
    having       = aggregate , ">" , number ,
                   [ "WITH" , ( "PROBABILITY" | "CONFIDENCE" ) , number ] ;
    expression   = disjunction ;      (* OR/AND only inside parentheses
                                         at WHERE top level *)
    sum          = product , { ( "+" | "-" ) , product } ;
    product      = unary , { ( "*" | "/" ) , unary } ;
    unary        = [ "-" | "NOT" ] , primary ;
    primary      = number | string | qualified | call
                 | "(" , disjunction , ")" ;
    call         = identifier , "(" , [ disjunction , { "," , disjunction } ] , ")" ;
    qualified    = identifier , [ "." , identifier ] ;

Every :class:`~repro.cql.errors.CQLSyntaxError` carries the 1-based
line/column of the offending token and its text.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from .errors import CQLSyntaxError
from .lexer import Token, tokenize
from .syntax import (
    AggregateCall,
    AggregateItem,
    BandMatchTerm,
    BinOp,
    Call,
    ColumnItem,
    Conjunct,
    DeriveItem,
    Expr,
    FuncMatchTerm,
    HavingClauseSyntax,
    Ident,
    JoinClause,
    Literal,
    Query,
    SelectQuery,
    StarItem,
    StreamRef,
    Unary,
    WindowClause,
)

__all__ = ["parse"]

_AGG_KEYWORDS = ("SUM", "AVG", "COUNT", "MIN", "MAX")
_COMPARISONS = (">", "<", ">=", "<=", "=", "!=")


def parse(text: str) -> Query:
    """Parse CQL text into a :class:`~repro.cql.syntax.Query` AST."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> CQLSyntaxError:
        token = token or self.current
        return CQLSyntaxError(message, token.line, token.column, token.value or None)

    def _expect_keyword(self, *names: str) -> Token:
        if self.current.is_keyword(*names):
            return self._advance()
        expected = " or ".join(names)
        raise self._error(f"expected {expected}, found {self.current.description}")

    def _expect(self, kind: str, value: Optional[str] = None, what: str = "") -> Token:
        token = self.current
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        wanted = what or (value if value is not None else kind)
        raise self._error(f"expected {wanted!r}, found {token.description}")

    def _match_punct(self, value: str) -> bool:
        if self.current.kind == "punct" and self.current.value == value:
            self._advance()
            return True
        return False

    def _match_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _number(self, what: str = "a number") -> float:
        negative = False
        if self.current.kind == "op" and self.current.value == "-":
            self._advance()
            negative = True
        token = self.current
        if token.kind != "number":
            raise self._error(f"expected {what}, found {token.description}")
        self._advance()
        value = float(token.value)
        return -value if negative else value

    def _identifier(self, what: str = "an identifier") -> Token:
        token = self.current
        if token.kind != "ident":
            raise self._error(f"expected {what}, found {token.description}")
        return self._advance()

    def _qualified(self) -> Ident:
        first = self._identifier("an attribute name")
        if self._match_punct("."):
            second = self._identifier("an attribute name after '.'")
            return Ident(first.line, first.column, second.value, qualifier=first.value)
        return Ident(first.line, first.column, first.value)

    # ------------------------------------------------------------------
    # Query structure
    # ------------------------------------------------------------------
    def parse_query(self) -> Query:
        selects = [self._select()]
        while self._match_keyword("UNION"):
            selects.append(self._select())
        if self.current.kind != "eof":
            raise self._error(
                f"expected UNION or end of query, found {self.current.description}"
            )
        return Query(selects=tuple(selects))

    def _select(self) -> SelectQuery:
        start = self._expect_keyword("SELECT")
        items = self._select_list()
        self._expect_keyword("FROM")
        source = self._stream_ref()
        join = self._join_clause() if self.current.is_keyword("JOIN") else None
        where: Tuple[Conjunct, ...] = ()
        if self._match_keyword("WHERE"):
            where = self._conjuncts()
        group_by = None
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            exprs = [self._disjunction()]
            while self._match_punct(","):
                exprs.append(self._disjunction())
            group_by = exprs[0] if len(exprs) == 1 else tuple(exprs)
        having = None
        if self.current.is_keyword("HAVING"):
            having = self._having()
        return SelectQuery(
            line=start.line,
            column=start.column,
            items=items,
            source=source,
            join=join,
            where=where,
            group_by=group_by,  # type: ignore[arg-type]
            having=having,
        )

    def _select_list(self) -> Tuple:
        if self.current.kind == "op" and self.current.value == "*":
            token = self._advance()
            return (StarItem(token.line, token.column),)
        items = [self._select_item()]
        while self._match_punct(","):
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self):
        token = self.current
        if token.is_keyword(*_AGG_KEYWORDS) and self._peek_is_punct(1, "("):
            call = self._aggregate_call()
            alias = None
            if self._match_keyword("AS"):
                alias = self._identifier("an output name after AS").value
            return AggregateItem(token.line, token.column, call=call, alias=alias)
        expr = self._comparison()
        if self._match_keyword("AS"):
            uncertain = bool(self._match_keyword("UNCERTAIN"))
            name = self._identifier("an attribute name after AS").value
            return DeriveItem(
                token.line, token.column, expr=expr, name=name, uncertain=uncertain
            )
        if isinstance(expr, Ident):
            return ColumnItem(
                token.line, token.column, name=expr.name, qualifier=expr.qualifier
            )
        raise self._error(
            "derived select expressions need 'AS <name>'", token
        )

    def _peek_is_punct(self, offset: int, value: str) -> bool:
        index = self._pos + offset
        if index >= len(self._tokens):
            return False
        token = self._tokens[index]
        return token.kind == "punct" and token.value == value

    def _aggregate_call(self) -> AggregateCall:
        token = self._expect_keyword(*_AGG_KEYWORDS)
        self._expect("punct", "(")
        if self.current.kind == "op" and self.current.value == "*":
            self._advance()
            argument = "*"
        else:
            argument = self._qualified().canonical()
        self._expect("punct", ")")
        return AggregateCall(token.line, token.column, token.value.lower(), argument)

    def _stream_ref(self) -> StreamRef:
        name = self._identifier("a stream name")
        alias = None
        if self._match_keyword("AS"):
            alias = self._identifier("a stream alias after AS").value
        window = None
        if self.current.kind == "punct" and self.current.value == "[":
            window = self._window()
        return StreamRef(name.line, name.column, name.value, alias=alias, window=window)

    def _window(self) -> WindowClause:
        start = self._expect("punct", "[")
        if self._match_keyword("NOW"):
            self._expect("punct", "]")
            return WindowClause(start.line, start.column, "now")
        if self._match_keyword("ROWS"):
            count = self._number("a row count")
            self._expect("punct", "]")
            return WindowClause(start.line, start.column, "rows", length=count)
        if self._match_keyword("RANGE"):
            length = self._number("a window length")
            self._match_keyword("SECONDS")
            slide = None
            if self._match_keyword("SLIDE"):
                slide = self._number("a slide length")
                self._match_keyword("SECONDS")
            self._expect("punct", "]")
            return WindowClause(
                start.line, start.column, "range", length=length, slide=slide
            )
        raise self._error(
            f"expected NOW, ROWS or RANGE in window, found {self.current.description}"
        )

    def _join_clause(self) -> JoinClause:
        start = self._expect_keyword("JOIN")
        right = self._stream_ref()
        self._expect_keyword("ON")
        terms = [self._match_term()]
        while self._match_keyword("AND"):
            terms.append(self._match_term())
        min_probability = None
        if self._match_keyword("MIN"):
            self._expect_keyword("PROBABILITY")
            min_probability = self._number("a probability")
        return JoinClause(
            start.line,
            start.column,
            right=right,
            terms=tuple(terms),
            min_probability=min_probability,
        )

    def _match_term(self) -> Union[BandMatchTerm, FuncMatchTerm]:
        if self.current.is_keyword("MATCH"):
            token = self._advance()
            name = self._identifier("a registered match function name")
            return FuncMatchTerm(token.line, token.column, name.value)
        left = self._qualified()
        self._expect("op", "~=", what="~=")
        right = self._qualified()
        self._expect_keyword("WITHIN")
        width = self._number("a band width")
        return BandMatchTerm(left.line, left.column, left=left, right=right, width=width)

    def _conjuncts(self) -> Tuple[Conjunct, ...]:
        conjuncts = [self._conjunct()]
        while self._match_keyword("AND"):
            conjuncts.append(self._conjunct())
        return tuple(conjuncts)

    def _conjunct(self) -> Conjunct:
        expr = self._comparison()
        probability = None
        if self.current.is_keyword("WITH"):
            self._advance()
            self._expect_keyword("PROBABILITY")
            probability = self._number("a probability")
        return Conjunct(expr=expr, probability=probability)

    def _having(self) -> HavingClauseSyntax:
        start = self._expect_keyword("HAVING")
        call = self._aggregate_call()
        op = self.current
        if op.kind != "op" or op.value not in _COMPARISONS:
            raise self._error(f"expected a comparison in HAVING, found {op.description}")
        if op.value != ">":
            raise self._error(
                "HAVING supports only '>' (probabilistic threshold)", op
            )
        self._advance()
        threshold = self._number("a threshold")
        min_probability = None
        if self._match_keyword("WITH"):
            self._expect_keyword("PROBABILITY", "CONFIDENCE")
            min_probability = self._number("a probability")
        return HavingClauseSyntax(
            start.line,
            start.column,
            call=call,
            threshold=threshold,
            min_probability=min_probability,
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _disjunction(self) -> Expr:
        expr = self._conjunction()
        while self.current.is_keyword("OR"):
            token = self._advance()
            right = self._conjunction()
            expr = BinOp(token.line, token.column, "OR", expr, right)
        return expr

    def _conjunction(self) -> Expr:
        expr = self._comparison()
        while self.current.is_keyword("AND"):
            token = self._advance()
            right = self._comparison()
            expr = BinOp(token.line, token.column, "AND", expr, right)
        return expr

    def _comparison(self) -> Expr:
        expr = self._sum()
        token = self.current
        if token.kind == "op" and token.value in _COMPARISONS:
            self._advance()
            right = self._sum()
            return BinOp(token.line, token.column, token.value, expr, right)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._sum()
            self._expect_keyword("AND")
            high = self._sum()
            return BinOp(
                token.line,
                token.column,
                "BETWEEN",
                expr,
                BinOp(token.line, token.column, "AND", low, high),
            )
        return expr

    def _sum(self) -> Expr:
        expr = self._product()
        while self.current.kind == "op" and self.current.value in ("+", "-"):
            token = self._advance()
            right = self._product()
            expr = BinOp(token.line, token.column, token.value, expr, right)
        return expr

    def _product(self) -> Expr:
        expr = self._unary()
        while self.current.kind == "op" and self.current.value in ("*", "/"):
            token = self._advance()
            right = self._unary()
            expr = BinOp(token.line, token.column, token.value, expr, right)
        return expr

    def _unary(self) -> Expr:
        token = self.current
        if token.kind == "op" and token.value == "-":
            self._advance()
            return Unary(token.line, token.column, "-", self._unary())
        if token.is_keyword("NOT"):
            self._advance()
            return Unary(token.line, token.column, "NOT", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self.current
        if token.kind == "number":
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return Literal(token.line, token.column, value)
        if token.kind == "string":
            self._advance()
            return Literal(token.line, token.column, token.value)
        if token.kind == "punct" and token.value == "(":
            self._advance()
            expr = self._disjunction()
            self._expect("punct", ")")
            return expr
        if token.kind == "ident":
            if self._peek_is_punct(1, "("):
                name = self._advance()
                self._expect("punct", "(")
                args: List[Expr] = []
                if not (self.current.kind == "punct" and self.current.value == ")"):
                    args.append(self._disjunction())
                    while self._match_punct(","):
                        args.append(self._disjunction())
                self._expect("punct", ")")
                return Call(name.line, name.column, name.value, tuple(args))
            return self._qualified()
        raise self._error(f"expected an expression, found {token.description}")
