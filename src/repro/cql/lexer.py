"""Tokenizer for the CQL-style continuous-query dialect.

A small hand-written scanner: it tracks 1-based line/column positions
for every token (so parse errors can point at the offending character)
and classifies identifiers against the keyword set case-insensitively —
``select``, ``SELECT`` and ``Select`` are the same keyword, while
identifier tokens preserve their original spelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import CQLSyntaxError

__all__ = ["Token", "KEYWORDS", "tokenize"]

#: Reserved words of the dialect (matched case-insensitively).
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "AS",
        "AND",
        "OR",
        "NOT",
        "UNION",
        "JOIN",
        "ON",
        "WITHIN",
        "WITH",
        "MIN",
        "MAX",
        "PROBABILITY",
        "CONFIDENCE",
        "RANGE",
        "ROWS",
        "NOW",
        "SECONDS",
        "SLIDE",
        "BETWEEN",
        "UNCERTAIN",
        "MATCH",
        "SUM",
        "AVG",
        "COUNT",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("~=", ">=", "<=", "!=", ">", "<", "=", "+", "-", "*", "/")

_PUNCTUATION = {",", "(", ")", "[", "]", "."}


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str  # "keyword" | "ident" | "number" | "string" | "op" | "punct" | "eof"
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    @property
    def description(self) -> str:
        if self.kind == "eof":
            return "end of query"
        return repr(self.value)


def tokenize(text: str) -> List[Token]:
    """Scan ``text`` into tokens (always ending with an ``eof`` token)."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    line, column = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "-" and text.startswith("--", i):
            # SQL-style line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_column = line, column
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\n":
                    break
                j += 1
            if j >= n or text[j] != "'":
                raise CQLSyntaxError(
                    "unterminated string literal", start_line, start_column, "'"
                )
            value = text[i + 1 : j]
            yield Token("string", value, start_line, start_column)
            column += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is punctuation
                    # (qualified names like ``obj.x`` after a number
                    # cannot occur, but be strict anyway).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
            value = text[i:j]
            yield Token("number", value, start_line, start_column)
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("keyword", upper, start_line, start_column)
            else:
                yield Token("ident", word, start_line, start_column)
            column += j - i
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                yield Token("op", op, start_line, start_column)
                i += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCTUATION:
            yield Token("punct", ch, start_line, start_column)
            i += 1
            column += 1
            continue
        raise CQLSyntaxError(
            f"unexpected character {ch!r}", start_line, start_column, ch
        )
    yield Token("eof", "", line, column)
