"""CQL-style textual query front end.

The paper's interface is declarative CQL-like continuous queries (Q1
and Q2 of Section 2) submitted to a long-running engine.  This package
parses that dialect and lowers it into the logical plan IR of
:mod:`repro.plan`, so text queries run through the same planner,
rewrites, cost model and physical operators as pipelines built with
the fluent :class:`~repro.plan.Stream` builder::

    from repro.cql import compile_cql
    from repro.plan import Stream

    query = compile_cql(
        '''
        SELECT area(x) AS area, SUM(weight)
        FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]
        GROUP BY area
        HAVING SUM(weight) > 200 WITH CONFIDENCE 0.5
        ''',
        sources={"rfid": Stream.source("rfid", uncertain=("x", "weight"))},
        functions={"area": lambda x: int(x.mean() // 20.0)},
    )
    query.push_many("rfid", tuples)
    alerts = query.finish()

Most users reach this through :class:`repro.service.QuerySession`,
which hosts many registered text queries over shared streams.

Modules: :mod:`~repro.cql.lexer` (tokens with source positions),
:mod:`~repro.cql.parser` (recursive descent; grammar in its
docstring), :mod:`~repro.cql.syntax` (the AST),
:mod:`~repro.cql.lowering` (AST → logical plan), and
:mod:`~repro.cql.errors`.
"""

from .errors import CQLError, CQLSemanticError, CQLSyntaxError
from .lexer import Token, tokenize
from .lowering import BUILTIN_FUNCTIONS, compile_cql, lower_query
from .parser import parse
from .syntax import Query, SelectQuery

__all__ = [
    "parse",
    "tokenize",
    "Token",
    "Query",
    "SelectQuery",
    "lower_query",
    "compile_cql",
    "BUILTIN_FUNCTIONS",
    "CQLError",
    "CQLSyntaxError",
    "CQLSemanticError",
]
