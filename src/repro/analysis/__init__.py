"""Static analysis for the uncertain-stream system.

Three analyzers under one roof (see :mod:`repro.analysis.cli` for the
``python -m repro.analysis`` gate):

* :mod:`repro.analysis.semantic` — post-parse, pre-lowering CQL
  validation against declared stream schemas;
* :mod:`repro.analysis.contracts` — operator/plan contract linter
  (``supports_batch`` honesty, snapshot protocol, magic uniqueness,
  worker verb-table sync);
* :mod:`repro.analysis.concurrency` — fork-safety and thread
  discipline lint over :mod:`repro.runtime`.

Plus :mod:`repro.analysis.sanitize`, the ``REPRO_SANITIZE=1`` runtime
switch armed by the shm ring and replay log.

This module is imported by hot paths (``repro.runtime.shm``,
``repro.recovery.replay``), so only the tiny leaf modules load eagerly;
the analyzers themselves resolve lazily on first attribute access.
"""

from __future__ import annotations

from .diagnostics import AnalysisError, Diagnostic, Severity, errors, render_all, warnings
from .sanitize import SanitizerError, check, sanitizer_enabled

__all__ = [
    "AnalysisError",
    "Diagnostic",
    "Severity",
    "errors",
    "warnings",
    "render_all",
    "SanitizerError",
    "check",
    "sanitizer_enabled",
    "analyze_query",
    "lint_contracts",
    "lint_concurrency",
    "lint_source",
    "main",
]

_LAZY = {
    "analyze_query": ("repro.analysis.semantic", "analyze_query"),
    "lint_contracts": ("repro.analysis.contracts", "lint_contracts"),
    "lint_concurrency": ("repro.analysis.concurrency", "lint_concurrency"),
    "lint_source": ("repro.analysis.concurrency", "lint_source"),
    "main": ("repro.analysis.cli", "main"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
