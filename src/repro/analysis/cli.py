"""``python -m repro.analysis`` — the static-analysis gate.

Runs the operator/plan contract linter and the runtime concurrency lint
over the installed ``repro`` package, prints every diagnostic in its
stable rendered form, and exits non-zero when any error (or, under
``--strict``, any warning) is found.  CI runs this as a gate job.

CQL semantic analysis is query-shaped rather than repo-shaped, so it is
exercised here only on demand: pass ``--query "SELECT ..."`` (repeat
for several) to validate query text against an open schema, or wire it
through :meth:`repro.service.session.QuerySession.register` with
``strict=True`` in code.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .diagnostics import Diagnostic, errors, warnings

__all__ = ["main"]


def _collect(queries: Sequence[str]) -> List[Diagnostic]:
    from .concurrency import lint_concurrency
    from .contracts import lint_contracts
    from .semantic import analyze_query

    diagnostics: List[Diagnostic] = []
    diagnostics.extend(lint_contracts())
    diagnostics.extend(lint_concurrency())
    for query in queries:
        diagnostics.extend(analyze_query(query))
    return diagnostics


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static-analysis gate: contract linter + concurrency lint "
        "over src/repro, plus optional CQL semantic checks.",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as gate failures too",
    )
    parser.add_argument(
        "--query",
        action="append",
        default=[],
        metavar="CQL",
        help="also semantically analyze this CQL query text (repeatable)",
    )
    args = parser.parse_args(argv)

    diagnostics = _collect(args.query)
    for diagnostic in diagnostics:
        print(diagnostic.render())

    error_count = len(errors(diagnostics))
    warning_count = len(warnings(diagnostics))
    print(
        f"repro.analysis: {error_count} error(s), {warning_count} warning(s)",
        file=sys.stderr,
    )
    if error_count:
        return 1
    if args.strict and warning_count:
        return 1
    return 0
