"""Operator/plan contract linter: codebase invariants as executable checks.

The repo's load-bearing conventions — honest ``supports_batch``
advertisements, the checkpoint snapshot protocol, wire-format magic
uniqueness, coordinator/worker verb-table sync — were enforced only by
code review until this module.  :func:`lint_contracts` turns each into
a diagnostic-producing check that runs over ``src/repro`` itself (the
CLI gate and the self-lint test), so a future PR that breaks a contract
fails loudly instead of corrupting results quietly.

Checks
------
``batch-honesty`` (error)
    A class declares ``supports_batch = True`` as a plain attribute but
    neither it nor any ancestor below :class:`Operator` overrides
    ``process_batch`` — the cost model would route batches into the
    per-tuple fallback while predicting a kernel.
``batch-advertisement`` (warning)
    The mirror image: a class ships its own ``process_batch`` but still
    advertises the inherited ``supports_batch = False``.  Classes that
    express ``supports_batch`` as a property are exempt from both
    directions (they re-check themselves; see
    ``Operator._keeps_process_of``).
``stateful-snapshot`` (error)
    An operator's ``__init__`` creates *accumulating* mutable state (an
    empty ``[]``/``{}``/``set()``/``deque()``/``defaultdict`` — state
    that starts empty and grows during processing) but the class
    implements neither ``state_snapshot`` nor ``state_restore``, so a
    checkpoint would silently drop its contents.  Deliberately
    ephemeral operators go on :data:`STATE_ALLOWLIST` with a reason.
``magic-uniqueness`` (error)
    Two wire-format magic byte strings (``RST1``, ``RCK1``, frame
    magics, batch codecs) share a value, or two frame-kind constants in
    :mod:`repro.net.protocol` share a code point.
``verb-sync`` (error)
    The coordinator sends a worker-protocol verb that
    ``serve_shard_messages``/``serve_shard_rings`` does not handle, the
    two protocol loops handle different verb sets, or a verb crossing
    the transport is missing from the frame codec tables.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import pkgutil
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, Severity

__all__ = [
    "lint_contracts",
    "lint_operator_classes",
    "lint_magic_registry",
    "lint_verb_tables",
    "STATE_ALLOWLIST",
    "BATCH_FALLBACK_ALLOWLIST",
]

#: Operators allowed to hold accumulating mutable state without the
#: snapshot protocol, with the reason they are exempt.  Keys are
#: ``module.QualName``.
STATE_ALLOWLIST: Dict[str, str] = {
    "repro.rfid.transform_operator.RFIDTransformOperator": (
        "_reference_ids is fixed at construction (shelf-tag ids from the "
        "world), not accumulated during processing; the particle-filter "
        "posterior intentionally lives outside the checkpoint protocol"
    ),
}

#: Classes allowed to override ``process_batch`` while advertising
#: ``supports_batch = False`` (e.g. buffered per-tuple semantics).
BATCH_FALLBACK_ALLOWLIST: Dict[str, str] = {}

_DOMAIN = "contract"

#: Constructors of containers that start empty and accumulate.
_ACCUMULATOR_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)


def _diag(rule: str, severity: Severity, message: str, file: str, line: int) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=severity,
        message=message,
        file=file,
        line=line,
        domain=_DOMAIN,
    )


def _repro_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _relpath(path: Path) -> str:
    """Render a path relative to the repo checkout when possible."""
    path = Path(path).resolve()
    root = _repro_root()
    try:
        return str(Path("src/repro") / path.relative_to(root))
    except ValueError:
        return path.name


# ----------------------------------------------------------------------
# Module / source indexing
# ----------------------------------------------------------------------
class _SourceIndex:
    """Cached ``file → (ast tree, source)`` with class-node lookup."""

    def __init__(self) -> None:
        self._trees: Dict[str, Optional[ast.Module]] = {}

    def tree(self, file: str) -> Optional[ast.Module]:
        if file not in self._trees:
            try:
                source = Path(file).read_text()
                self._trees[file] = ast.parse(source, filename=file)
            except (OSError, SyntaxError):
                self._trees[file] = None
        return self._trees[file]

    def class_node(self, cls: type) -> Tuple[Optional[ast.ClassDef], Optional[str], int]:
        """(ClassDef, rendered file path, line) for a class, best effort."""
        try:
            file = inspect.getsourcefile(cls)
        except TypeError:
            file = None
        if file is None:
            return None, None, 0
        tree = self.tree(file)
        rendered = _relpath(Path(file))
        if tree is None:
            return None, rendered, 0
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
                return node, rendered, node.lineno
        return None, rendered, 0


def _import_repro_modules(diagnostics: List[Diagnostic]) -> List:
    """Import every module under ``repro`` (skipping ``__main__`` shims)."""
    import repro

    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.rsplit(".", 1)[-1] == "__main__":
            continue
        try:
            modules.append(importlib.import_module(info.name))
        except Exception as exc:  # noqa: BLE001 - a broken module is a finding
            diagnostics.append(
                _diag(
                    "import-failure",
                    Severity.ERROR,
                    f"module {info.name} failed to import: {exc!r}",
                    file=info.name.replace(".", "/") + ".py",
                    line=0,
                )
            )
    return modules


def _operator_classes(modules: Iterable) -> List[type]:
    from repro.streams.operators.base import Operator

    seen: Set[type] = set()
    classes: List[type] = []
    for module in modules:
        for value in vars(module).values():
            if (
                isinstance(value, type)
                and issubclass(value, Operator)
                and value is not Operator
                and value.__module__ == module.__name__
                and value not in seen
            ):
                seen.add(value)
                classes.append(value)
    return classes


# ----------------------------------------------------------------------
# Operator contracts
# ----------------------------------------------------------------------
def _own_below_operator(cls: type, name: str) -> bool:
    """True when ``name`` is defined on ``cls`` or an ancestor below Operator."""
    from repro.streams.operators.base import Operator

    for base in cls.__mro__:
        if base is Operator:
            return False
        if name in base.__dict__:
            return True
    return False


def _mutable_accumulators(init: ast.FunctionDef) -> List[Tuple[str, int]]:
    """``self.x = <empty container>`` assignments in an ``__init__`` body."""
    found: List[Tuple[str, int]] = []
    for node in ast.walk(init):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if _is_empty_container(value):
                found.append((target.attr, node.lineno))
    return found


def _is_empty_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Set)) and not node.elts:
        return True
    if isinstance(node, ast.Dict) and not node.keys:
        return True
    if isinstance(node, ast.Call):
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in _ACCUMULATOR_CALLS:
            # defaultdict(list) starts empty; list(existing) does not.
            if name in ("defaultdict",):
                return True
            return not node.args and not node.keywords
    return False


def lint_operator_classes(
    classes: Sequence[type],
    state_allowlist: Optional[Dict[str, str]] = None,
    batch_allowlist: Optional[Dict[str, str]] = None,
    index: Optional[_SourceIndex] = None,
) -> List[Diagnostic]:
    """Run the per-class operator contracts over ``classes``."""
    state_allow = STATE_ALLOWLIST if state_allowlist is None else state_allowlist
    batch_allow = (
        BATCH_FALLBACK_ALLOWLIST if batch_allowlist is None else batch_allowlist
    )
    index = index or _SourceIndex()
    diagnostics: List[Diagnostic] = []
    for cls in classes:
        qualname = f"{cls.__module__}.{cls.__qualname__}"
        node, file, line = index.class_node(cls)
        file = file or f"{cls.__module__}.py"

        own_flag = inspect.getattr_static(cls, "supports_batch", None)
        is_property = isinstance(own_flag, property)
        has_kernel = _own_below_operator(cls, "process_batch")

        if not is_property:
            if own_flag is True and not has_kernel:
                diagnostics.append(
                    _diag(
                        "batch-honesty",
                        Severity.ERROR,
                        f"{qualname} advertises supports_batch = True but never "
                        "overrides process_batch; the batch path would run the "
                        "per-tuple fallback while the cost model predicts a "
                        "kernel",
                        file,
                        line,
                    )
                )
            elif has_kernel and not own_flag and qualname not in batch_allow:
                diagnostics.append(
                    _diag(
                        "batch-advertisement",
                        Severity.WARNING,
                        f"{qualname} overrides process_batch but advertises "
                        "supports_batch = False; either advertise the kernel "
                        "(ideally as a self-checking property) or add the class "
                        "to BATCH_FALLBACK_ALLOWLIST with a reason",
                        file,
                        line,
                    )
                )

        if node is not None and "__init__" in cls.__dict__:
            init_node = next(
                (
                    child
                    for child in node.body
                    if isinstance(child, ast.FunctionDef) and child.name == "__init__"
                ),
                None,
            )
            if init_node is not None:
                accumulators = _mutable_accumulators(init_node)
                if accumulators and qualname not in state_allow:
                    has_snapshot = _own_below_operator(cls, "state_snapshot")
                    has_restore = _own_below_operator(cls, "state_restore")
                    if not (has_snapshot and has_restore):
                        attrs = ", ".join(sorted({a for a, _ in accumulators}))
                        missing = [
                            name
                            for name, ok in (
                                ("state_snapshot", has_snapshot),
                                ("state_restore", has_restore),
                            )
                            if not ok
                        ]
                        diagnostics.append(
                            _diag(
                                "stateful-snapshot",
                                Severity.ERROR,
                                f"{qualname} accumulates mutable state in "
                                f"__init__ ({attrs}) but does not implement "
                                f"{' / '.join(missing)}; a checkpoint would "
                                "silently drop its contents — implement the "
                                "snapshot protocol or add the class to "
                                "STATE_ALLOWLIST with a reason",
                                file,
                                accumulators[0][1],
                            )
                        )
    return diagnostics


# ----------------------------------------------------------------------
# Wire-format magic registry
# ----------------------------------------------------------------------
def lint_magic_registry(root: Optional[Path] = None) -> List[Diagnostic]:
    """Every ``*MAGIC*`` byte constant and frame-kind code must be unique."""
    root = Path(root) if root is not None else _repro_root()
    diagnostics: List[Diagnostic] = []
    index = _SourceIndex()

    magics: Dict[bytes, Tuple[str, str, int]] = {}
    for file in sorted(root.rglob("*.py")):
        tree = index.tree(str(file))
        if tree is None:
            continue
        rendered = _relpath(file)
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Name) and "MAGIC" in target.id.upper()):
                    continue
                if not (
                    isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, bytes)
                ):
                    continue
                value = node.value.value
                if value in magics:
                    prior_name, prior_file, prior_line = magics[value]
                    diagnostics.append(
                        _diag(
                            "magic-uniqueness",
                            Severity.ERROR,
                            f"magic {value!r} ({target.id}) collides with "
                            f"{prior_name} at {prior_file}:{prior_line}; every "
                            "wire format needs a distinct magic",
                            rendered,
                            node.lineno,
                        )
                    )
                else:
                    magics[value] = (target.id, rendered, node.lineno)

    protocol_file = root / "net" / "protocol.py"
    tree = index.tree(str(protocol_file))
    if tree is not None:
        rendered = _relpath(protocol_file)
        kinds: Dict[int, Tuple[str, int]] = {}
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Name)
                    and target.id.lstrip("_").isupper()
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                    and not isinstance(node.value.value, bool)
                ):
                    continue
                value = node.value.value
                if value in kinds:
                    prior_name, prior_line = kinds[value]
                    diagnostics.append(
                        _diag(
                            "magic-uniqueness",
                            Severity.ERROR,
                            f"frame kind {target.id} = {value:#x} collides with "
                            f"{prior_name} (line {prior_line}); frame kinds "
                            "must be pairwise distinct",
                            rendered,
                            node.lineno,
                        )
                    )
                else:
                    kinds[value] = (target.id, node.lineno)
    return diagnostics


# ----------------------------------------------------------------------
# Worker-protocol verb tables
# ----------------------------------------------------------------------
def _function_node(tree: ast.Module, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _compared_strings(fn: ast.AST) -> Set[str]:
    """String constants compared with ``==`` anywhere inside ``fn``."""
    verbs: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Compare):
            continue
        if not all(isinstance(op, ast.Eq) for op in node.ops):
            continue
        for operand in [node.left, *node.comparators]:
            if isinstance(operand, ast.Constant) and isinstance(operand.value, str):
                verbs.add(operand.value)
    return verbs


def _tuple_verbs(
    scope: ast.AST, call_names: Set[str]
) -> Dict[str, int]:
    """First-element verb strings of tuple literals passed to ``call_names``.

    Matches both direct calls (``send(("stop",))``) and calls whose
    argument wraps the tuple in another call
    (``reply(encode_worker_message(("stats", ...)))``) — the inner call
    is itself in ``call_names`` and visited by the walk.
    """
    verbs: Dict[str, int] = {}
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name not in call_names:
            continue
        for arg in node.args:
            if (
                isinstance(arg, ast.Tuple)
                and arg.elts
                and isinstance(arg.elts[0], ast.Constant)
                and isinstance(arg.elts[0].value, str)
            ):
                verbs.setdefault(arg.elts[0].value, node.lineno)
    return verbs


def _returned_tuple_verbs(fn: ast.AST) -> Set[str]:
    verbs: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Tuple)
            and node.value.elts
            and isinstance(node.value.elts[0], ast.Constant)
            and isinstance(node.value.elts[0].value, str)
        ):
            verbs.add(node.value.elts[0].value)
    return verbs


def lint_verb_tables(root: Optional[Path] = None) -> List[Diagnostic]:
    """Coordinator, worker loops and frame codec must agree on verbs."""
    root = Path(root) if root is not None else _repro_root()
    index = _SourceIndex()
    diagnostics: List[Diagnostic] = []

    worker_file = root / "runtime" / "worker.py"
    engine_file = root / "runtime" / "engine.py"
    protocol_file = root / "net" / "protocol.py"
    worker_tree = index.tree(str(worker_file))
    engine_tree = index.tree(str(engine_file))
    protocol_tree = index.tree(str(protocol_file))
    if worker_tree is None or engine_tree is None or protocol_tree is None:
        missing = [
            str(f)
            for f, t in (
                (worker_file, worker_tree),
                (engine_file, engine_tree),
                (protocol_file, protocol_tree),
            )
            if t is None
        ]
        return [
            _diag(
                "verb-sync",
                Severity.ERROR,
                f"cannot parse worker-protocol sources: {', '.join(missing)}",
                _relpath(worker_file),
                0,
            )
        ]

    messages_fn = _function_node(worker_tree, "serve_shard_messages")
    rings_fn = _function_node(worker_tree, "serve_shard_rings")
    encode_fn = _function_node(protocol_tree, "encode_worker_message")
    decode_fn = _function_node(protocol_tree, "decode_worker_message")
    for fn, name, file in (
        (messages_fn, "serve_shard_messages", worker_file),
        (rings_fn, "serve_shard_rings", worker_file),
        (encode_fn, "encode_worker_message", protocol_file),
        (decode_fn, "decode_worker_message", protocol_file),
    ):
        if fn is None:
            diagnostics.append(
                _diag(
                    "verb-sync",
                    Severity.ERROR,
                    f"{name} not found in {_relpath(file)}; the worker-protocol "
                    "dispatch moved — update repro.analysis.contracts",
                    _relpath(file),
                    0,
                )
            )
    if diagnostics:
        return diagnostics

    handled_messages = _compared_strings(messages_fn)
    handled_rings = _compared_strings(rings_fn)
    encode_verbs = _compared_strings(encode_fn)
    decode_verbs = _returned_tuple_verbs(decode_fn)
    sent = _tuple_verbs(engine_tree, {"_send", "_encode_worker_message"})
    replies = _tuple_verbs(worker_tree, {"send", "reply", "encode_worker_message"})
    # Replies are worker → parent; requests handled above never return
    # through a reply tuple, so drop any overlap with the handled set.
    reply_verbs = {v for v in replies if v not in ("chunk",)}

    worker_rel = _relpath(worker_file)
    engine_rel = _relpath(engine_file)
    protocol_rel = _relpath(protocol_file)

    for verb, line in sorted(sent.items()):
        for handled, loop in (
            (handled_messages, "serve_shard_messages"),
            (handled_rings, "serve_shard_rings"),
        ):
            if verb not in handled:
                diagnostics.append(
                    _diag(
                        "verb-sync",
                        Severity.ERROR,
                        f"coordinator sends worker verb {verb!r} but {loop} "
                        "does not handle it",
                        engine_rel,
                        line,
                    )
                )
    for verb in sorted(handled_messages ^ handled_rings):
        where = (
            "serve_shard_messages" if verb in handled_messages else "serve_shard_rings"
        )
        other = (
            "serve_shard_rings" if verb in handled_messages else "serve_shard_messages"
        )
        diagnostics.append(
            _diag(
                "verb-sync",
                Severity.ERROR,
                f"worker verb {verb!r} is handled by {where} but not by {other}; "
                "the ring and queue/socket loops must stay in sync",
                worker_rel,
                (messages_fn if verb in handled_messages else rings_fn).lineno,
            )
        )
    for verb in sorted((set(sent) | handled_messages | handled_rings) - encode_verbs):
        diagnostics.append(
            _diag(
                "verb-sync",
                Severity.ERROR,
                f"worker verb {verb!r} has no encode_worker_message entry",
                protocol_rel,
                encode_fn.lineno,
            )
        )
    for verb, line in sorted(replies.items()):
        if verb in reply_verbs and verb not in decode_verbs:
            diagnostics.append(
                _diag(
                    "verb-sync",
                    Severity.ERROR,
                    f"worker reply verb {verb!r} has no decode_worker_message "
                    "entry; the coordinator could never read it",
                    worker_rel,
                    line,
                )
            )
    return diagnostics


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def lint_contracts() -> List[Diagnostic]:
    """Run every contract check over the installed ``repro`` package."""
    diagnostics: List[Diagnostic] = []
    modules = _import_repro_modules(diagnostics)
    index = _SourceIndex()
    diagnostics.extend(lint_operator_classes(_operator_classes(modules), index=index))
    diagnostics.extend(lint_magic_registry())
    diagnostics.extend(lint_verb_tables())
    return diagnostics
