"""Opt-in runtime sanitizer switch (``REPRO_SANITIZE=1``).

TSAN-style wiring: production builds pay nothing, but setting
``REPRO_SANITIZE=1`` in the environment arms invariant assertions at
the two places silent corruption is cheapest to catch —

* the SPSC shared-memory ring (:mod:`repro.runtime.shm`): head/tail
  monotonicity, record-length bounds, end-of-buffer pad discipline;
* the replay log (:mod:`repro.recovery.replay`): seq monotonicity of
  appends and replays.

Violations raise :class:`SanitizerError` (an ``AssertionError``
subclass, so ``pytest`` and plain ``assert``-aware tooling treat it as
an invariant failure, not an operational error).  Instrumented objects
latch the switch at construction — flipping the env var mid-flight
never changes the behaviour of live rings.

CI runs the runtime and recovery suites with the switch on (see
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import os

__all__ = ["SanitizerError", "sanitizer_enabled", "check"]

_FALSY = frozenset({"", "0", "false", "no", "off"})


class SanitizerError(AssertionError):
    """An armed runtime invariant was violated."""


def sanitizer_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value.

    Read from the environment on every call; instrumented objects call
    this once in ``__init__`` and latch the result.
    """
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in _FALSY


def check(condition: bool, message: str) -> None:
    """Raise :class:`SanitizerError` unless ``condition`` holds.

    Callers guard the call site on their latched flag, so the condition
    expression itself is only evaluated in sanitize mode.
    """
    if not condition:
        raise SanitizerError(f"sanitizer: {message}")
