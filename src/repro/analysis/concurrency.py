"""Static fork-safety and thread-discipline lint for :mod:`repro.runtime`.

The sharded engine forks workers (``multiprocessing`` ``"fork"``
context) and then runs reader threads in the parent.  That combination
is safe only under a strict discipline the code comments promise but
nothing enforced until now:

``import-time-thread`` (error)
    A thread started at module import time would exist before *any*
    fork and be silently absent in every child.
``thread-before-fork`` (error)
    Within one function, a ``Thread`` is created before a ``Process``:
    the forked child inherits the lock/queue state of a live thread
    that does not exist in the child — the classic post-fork deadlock.
    The engine starts worker processes first and reader threads after.
``fork-under-lock`` (error)
    A ``Process`` is created inside a ``with <something lock-like>:``
    block; the child snapshots the held lock and any waiter deadlocks.
``sink-delivery-thread`` (error)
    Sink delivery (``_deliver`` / ``_flush_ready``) is reachable from a
    reader-thread target through the class's own method call graph.
    Delivery must stay on the caller's thread so user callbacks never
    race engine internals.
``shm-finalize`` (error)
    A module creates ``SharedMemory(create=True)`` outside a class that
    owns cleanup (``close``/``unlink``), or constructs an shm-owning
    class without a ``weakref.finalize`` safety net anywhere in the
    module — leaked ``/dev/shm`` segments survive interpreter death.
``shared-dict-slot`` (error)
    A method reachable from a reader-thread target (``Thread(target=
    self.X)``) augments a shared container slot in place
    (``self.attr[key] += v``) without an enclosing lock-like ``with``
    block.  The read-modify-write races the main thread's reads and
    other writers; route such accumulation through a metrics-registry
    instrument or serialize it under the owning condition variable.

All checks are pure AST (no imports of the linted code), so they also
run against synthetic sources in tests via :func:`lint_source`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, Severity

__all__ = ["lint_concurrency", "lint_source", "SINK_DELIVERY_METHODS"]

_DOMAIN = "concurrency"

#: Methods that must only ever run on the caller's (user-facing) thread.
SINK_DELIVERY_METHODS = frozenset({"_deliver", "_flush_ready"})

_LOCKY_FRAGMENTS = ("lock", "_cv", "cond", "mutex")


def _diag(rule: str, message: str, file: str, line: int) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=Severity.ERROR,
        message=message,
        file=file,
        line=line,
        domain=_DOMAIN,
    )


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_thread_ctor(node: ast.Call) -> bool:
    return _call_name(node) == "Thread"


def _is_process_ctor(node: ast.Call) -> bool:
    return _call_name(node) == "Process"


def _names_in(expr: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _looks_locky(expr: ast.expr) -> bool:
    for name in _names_in(expr):
        lowered = name.lower()
        if any(fragment in lowered for fragment in _LOCKY_FRAGMENTS):
            return True
    return False


def _function_defs(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# Per-rule passes
# ----------------------------------------------------------------------
def _check_import_time_threads(tree: ast.Module, file: str) -> List[Diagnostic]:
    """Module-scope ``Thread(...).start()`` — alive before any fork."""
    diagnostics: List[Diagnostic] = []
    for stmt in tree.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                break
            if (
                isinstance(node, ast.Call)
                and _call_name(node) == "start"
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Call)
                and _is_thread_ctor(node.func.value)
            ):
                diagnostics.append(
                    _diag(
                        "import-time-thread",
                        "thread started at module import time; it would be "
                        "alive before any fork and silently absent in every "
                        "forked worker",
                        file,
                        node.lineno,
                    )
                )
    return diagnostics


def _check_thread_before_fork(tree: ast.Module, file: str) -> List[Diagnostic]:
    """Within one function, Thread created before Process is created."""
    diagnostics: List[Diagnostic] = []
    for fn in _function_defs(tree):
        thread_lines: List[int] = []
        process_lines: List[int] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                if _is_thread_ctor(node):
                    thread_lines.append(node.lineno)
                elif _is_process_ctor(node):
                    process_lines.append(node.lineno)
        if thread_lines and process_lines and min(thread_lines) < max(process_lines):
            diagnostics.append(
                _diag(
                    "thread-before-fork",
                    f"{fn.name} creates a Thread (line {min(thread_lines)}) "
                    "before forking a Process (line "
                    f"{max(process_lines)}); forked children inherit the "
                    "locked state of live parent threads — start every "
                    "worker process before the first parent thread",
                    file,
                    min(thread_lines),
                )
            )
    return diagnostics


def _check_fork_under_lock(tree: ast.Module, file: str) -> List[Diagnostic]:
    """``Process(...)`` constructed inside a ``with <lock-like>:`` block."""
    diagnostics: List[Diagnostic] = []

    def visit(node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, ast.With):
            locky = [
                item.context_expr
                for item in node.items
                if _looks_locky(item.context_expr)
            ]
            if locky:
                held = held + tuple(
                    sorted(_names_in(locky[0]))[:1] or ("lock",)
                )
        elif isinstance(node, ast.Call) and _is_process_ctor(node) and held:
            diagnostics.append(
                _diag(
                    "fork-under-lock",
                    f"Process created while holding {held[-1]!r}; the forked "
                    "child snapshots the held lock and any of its waiters "
                    "deadlock — fork outside the critical section",
                    file,
                    node.lineno,
                )
            )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, ())
            else:
                visit(child, held)

    visit(tree, ())
    return diagnostics


def _self_call_graph(cls: ast.ClassDef) -> Dict[str, Set[str]]:
    graph: Dict[str, Set[str]] = {}
    for node in cls.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        calls: Set[str] = set()
        for call in ast.walk(node):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "self"
            ):
                calls.add(call.func.attr)
        graph[node.name] = calls
    return graph


def _check_sink_delivery(tree: ast.Module, file: str) -> List[Diagnostic]:
    """Delivery methods must be unreachable from reader-thread targets."""
    diagnostics: List[Diagnostic] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        graph = _self_call_graph(cls)
        for target, line in _thread_targets(cls):
            hit = sorted(_reachable_methods(graph, target) & SINK_DELIVERY_METHODS)
            if hit:
                diagnostics.append(
                    _diag(
                        "sink-delivery-thread",
                        f"reader thread target {cls.name}.{target} can reach "
                        f"sink delivery ({', '.join(hit)}); delivery must stay "
                        "on the caller's thread so user callbacks never race "
                        "engine internals",
                        file,
                        line,
                    )
                )
    return diagnostics


def _thread_targets(cls: ast.ClassDef) -> List[Tuple[str, int]]:
    """``Thread(target=self.X)`` targets created inside a class's methods."""
    targets: List[Tuple[str, int]] = []
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Call) and _is_thread_ctor(node)):
            continue
        for kw in node.keywords:
            if (
                kw.arg == "target"
                and isinstance(kw.value, ast.Attribute)
                and isinstance(kw.value.value, ast.Name)
                and kw.value.value.id == "self"
            ):
                targets.append((kw.value.attr, node.lineno))
    return targets


def _reachable_methods(graph: Dict[str, Set[str]], start: str) -> Set[str]:
    reachable: Set[str] = set()
    frontier = [start]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier.extend(graph.get(name, ()))
    return reachable


def _check_shared_dict_slots(tree: ast.Module, file: str) -> List[Diagnostic]:
    """``self.attr[key] += v`` on a thread-reachable path without a lock."""
    diagnostics: List[Diagnostic] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        targets = _thread_targets(cls)
        if not targets:
            continue
        graph = _self_call_graph(cls)
        threaded: Set[str] = set()
        for target, _ in targets:
            threaded |= _reachable_methods(graph, target)
        methods = {
            node.name: node
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name in sorted(threaded & set(methods)):
            diagnostics.extend(_unlocked_slot_augassigns(methods[name], cls, file))
    return diagnostics


def _unlocked_slot_augassigns(
    fn: ast.AST, cls: ast.ClassDef, file: str
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            if any(_looks_locky(item.context_expr) for item in node.items):
                locked = True
        elif (
            isinstance(node, ast.AugAssign)
            and not locked
            and isinstance(node.target, ast.Subscript)
            and isinstance(node.target.value, ast.Attribute)
            and isinstance(node.target.value.value, ast.Name)
            and node.target.value.value.id == "self"
        ):
            slot = node.target.value.attr
            diagnostics.append(
                _diag(
                    "shared-dict-slot",
                    f"{cls.name}.{fn.name} runs on a reader thread and "
                    f"augments self.{slot}[...] in place without holding a "
                    "lock; the read-modify-write races other threads — use a "
                    "registry instrument or serialize under the owning "
                    "condition variable",
                    file,
                    node.lineno,
                )
            )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) and child is not node:
                continue  # nested defs run on their own caller's thread
            visit(child, locked)

    for stmt in fn.body:
        visit(stmt, False)
    return diagnostics


def _owner_classes(tree: ast.Module) -> Set[str]:
    """Classes that create SharedMemory *and* own cleanup (close+unlink)."""
    owners: Set[str] = set()
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = {
            node.name
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "close" in methods and "unlink" in methods:
            owners.add(cls.name)
    return owners


def _creates_shm(node: ast.Call) -> bool:
    if _call_name(node) != "SharedMemory":
        return False
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in node.keywords
    )


def _check_shm_finalize(
    tree: ast.Module, file: str, owner_names: Set[str]
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    source_has_finalize = any(
        isinstance(node, ast.Attribute) and node.attr == "finalize"
        for node in ast.walk(tree)
    )

    # SharedMemory(create=True) outside an owner class.
    local_owners = _owner_classes(tree)
    owner_spans: List[Tuple[int, int]] = []
    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef) and cls.name in local_owners:
            owner_spans.append((cls.lineno, cls.end_lineno or cls.lineno))
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _creates_shm(node):
            inside_owner = any(
                start <= node.lineno <= end for start, end in owner_spans
            )
            if not inside_owner:
                diagnostics.append(
                    _diag(
                        "shm-finalize",
                        "SharedMemory(create=True) outside a class owning "
                        "cleanup (close + unlink); a leaked segment outlives "
                        "the interpreter in /dev/shm",
                        file,
                        node.lineno,
                    )
                )

    # Constructing an shm-owning class requires a finalize net in-module.
    known_owners = owner_names | local_owners
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and _call_name(node) in known_owners
            and _call_name(node) not in local_owners
            and not source_has_finalize
        ):
            diagnostics.append(
                _diag(
                    "shm-finalize",
                    f"module constructs shm owner {_call_name(node)} but never "
                    "registers a weakref.finalize safety net; an abandoned "
                    "object would leak its /dev/shm segment",
                    file,
                    node.lineno,
                )
            )
            break
    return diagnostics


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    filename: str = "<source>",
    owner_names: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Run every concurrency check against one source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            _diag(
                "parse-failure",
                f"cannot parse {filename}: {exc.msg}",
                filename,
                exc.lineno or 0,
            )
        ]
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_import_time_threads(tree, filename))
    diagnostics.extend(_check_thread_before_fork(tree, filename))
    diagnostics.extend(_check_fork_under_lock(tree, filename))
    diagnostics.extend(_check_sink_delivery(tree, filename))
    diagnostics.extend(_check_shared_dict_slots(tree, filename))
    diagnostics.extend(_check_shm_finalize(tree, filename, owner_names or set()))
    return diagnostics


def _runtime_files(root: Optional[Path]) -> Sequence[Path]:
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    return sorted((Path(root) / "runtime").glob("*.py"))


def lint_concurrency(root: Optional[Path] = None) -> List[Diagnostic]:
    """Run the concurrency lint over every ``repro.runtime`` module.

    Pass 1 collects the names of shm-owner classes across all runtime
    files so pass 2 can flag owner construction in *other* modules that
    lack a ``weakref.finalize`` net.
    """
    files = _runtime_files(root)
    sources: List[Tuple[Path, str]] = []
    owner_names: Set[str] = set()
    for file in files:
        try:
            text = file.read_text()
        except OSError:
            continue
        sources.append((file, text))
        try:
            owner_names |= _owner_classes(ast.parse(text))
        except SyntaxError:
            pass

    from .contracts import _relpath

    diagnostics: List[Diagnostic] = []
    for file, text in sources:
        diagnostics.extend(lint_source(text, _relpath(file), owner_names))
    return diagnostics
