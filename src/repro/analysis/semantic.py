"""Post-parse, pre-lowering semantic analysis of CQL queries.

:func:`analyze_query` walks a parsed :class:`~repro.cql.syntax.Query`
against the *declared* stream schemas and returns a list of
:class:`~repro.analysis.diagnostics.Diagnostic` findings instead of
raising on the first problem.  It catches the class of mistakes the
lowering either cannot see (a typo'd column on a declared stream simply
reads as an open attribute at runtime) or reports one at a time:

``unknown-stream``
    FROM/JOIN references a stream that was never declared — the query
    would silently run against an open-schema source.
``unknown-alias``
    A qualified reference uses an alias that is not in scope.
``unknown-column``
    An attribute reference not in the declared schema, with a
    closest-name suggestion.
``unknown-function``
    A call to a function that is neither built in nor registered.
``uncertain-equality``
    Deterministic ``=``/``!=`` on an attribute declared uncertain —
    a band match (``~=``) or ``BETWEEN`` is almost always what's meant.
``probability-misuse`` / ``probability-on-deterministic``
    ``WITH PROBABILITY`` on a conjunct that is not a constant
    comparison, with a value outside ``[0, 1]``, or over an attribute /
    aggregate the schema declares deterministic.
``window-sanity``
    ``SLIDE`` exceeding ``RANGE`` (tuples between hops would be
    dropped), non-tumbling slides, zero-width ``ROWS``/``RANGE``.
``band-match-width`` / ``band-match-operands`` / ``band-match-deterministic``
    Join ``~=`` terms with a non-positive width, operands not taken one
    from each side, or operands the schema declares deterministic.
``having-mismatch``
    A HAVING aggregate that does not match the SELECT aggregate.

Column checks need a fully declared schema (both ``values`` and
``uncertain``); a stream declared with only its uncertain attributes
keeps open-value semantics and reference checks are skipped, exactly as
in :class:`repro.plan.nodes.StreamSchema`.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Union

from repro.cql.lowering import BUILTIN_FUNCTIONS
from repro.cql.parser import parse
from repro.cql.syntax import (
    AggregateCall,
    AggregateItem,
    BandMatchTerm,
    BinOp,
    Call,
    ColumnItem,
    Conjunct,
    DeriveItem,
    Expr,
    FuncMatchTerm,
    Ident,
    Literal,
    Query,
    SelectQuery,
    StreamRef,
    Unary,
    WindowClause,
)
from repro.plan.builder import Stream
from repro.plan.nodes import SourceNode

from .diagnostics import Diagnostic, Severity

__all__ = ["analyze_query", "suggest"]


def suggest(name: str, candidates: Sequence[str]) -> Optional[str]:
    """The closest declared name to ``name``, if any is close enough."""
    matches = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.6)
    return matches[0] if matches else None


def _suggestion_suffix(name: str, candidates: Sequence[str]) -> str:
    close = suggest(name, candidates)
    return f"; did you mean {close!r}?" if close is not None else ""


class _StreamView:
    """What the analyzer knows about one stream's attributes.

    ``values``/``uncertain`` are ``None`` when that half of the schema
    is undeclared (open).  Derived attributes from the SELECT list are
    added as they are introduced.
    """

    def __init__(self, source: Optional[SourceNode]):
        if source is None:
            self.values: Optional[Set[str]] = None
            self.uncertain: Optional[Set[str]] = None
        else:
            self.values = None if source.values is None else set(source.values)
            self.uncertain = None if source.uncertain is None else set(source.uncertain)

    @property
    def closed(self) -> bool:
        """Both attribute sets declared: unknown references are errors."""
        return self.values is not None and self.uncertain is not None

    @property
    def known(self) -> List[str]:
        names: Set[str] = set()
        if self.values is not None:
            names |= self.values
        if self.uncertain is not None:
            names |= self.uncertain
        return sorted(names)

    def has(self, name: str) -> bool:
        return (self.values is not None and name in self.values) or (
            self.uncertain is not None and name in self.uncertain
        )

    def is_uncertain(self, name: str) -> bool:
        return self.uncertain is not None and name in self.uncertain

    def is_deterministic(self, name: str) -> bool:
        """Known to be a plain value: declared in values, not uncertain."""
        return (
            self.values is not None
            and name in self.values
            and (self.uncertain is None or name not in self.uncertain)
        )

    def add_derived(self, name: str, uncertain: bool) -> None:
        if uncertain:
            if self.uncertain is not None:
                self.uncertain.add(name)
        elif self.values is not None:
            self.values.add(name)


def _as_source(declared) -> Optional[SourceNode]:
    if isinstance(declared, Stream):
        declared = declared.node
    return declared if isinstance(declared, SourceNode) else None


class _Analyzer:
    def __init__(
        self,
        sources: Mapping[str, Union[Stream, SourceNode]],
        functions: Mapping[str, Callable],
    ):
        self.sources: Dict[str, Optional[SourceNode]] = {
            name: _as_source(decl) for name, decl in sources.items()
        }
        self.functions = dict(BUILTIN_FUNCTIONS)
        self.functions.update(functions)
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------
    def report(
        self,
        rule: str,
        severity: Severity,
        message: str,
        line: int,
        column: int,
        token: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                line=line,
                column=column,
                token=token,
            )
        )

    def error(self, rule, message, line, column, token=None) -> None:
        self.report(rule, Severity.ERROR, message, line, column, token)

    def warning(self, rule, message, line, column, token=None) -> None:
        self.report(rule, Severity.WARNING, message, line, column, token)

    # ------------------------------------------------------------------
    def analyze(self, query: Query) -> List[Diagnostic]:
        for select in query.selects:
            self._analyze_select(select)
        return self.diagnostics

    def _stream_view(self, ref: StreamRef) -> _StreamView:
        if ref.name not in self.sources:
            if self.sources:
                self.error(
                    "unknown-stream",
                    f"stream {ref.name!r} is not declared and would run as an "
                    f"open-schema source (declared: "
                    f"{', '.join(sorted(self.sources))})"
                    f"{_suggestion_suffix(ref.name, list(self.sources))}",
                    ref.line,
                    ref.column,
                    ref.name,
                )
            return _StreamView(None)
        return _StreamView(self.sources[ref.name])

    # ------------------------------------------------------------------
    def _analyze_select(self, select: SelectQuery) -> None:
        left_alias = select.source.alias or select.source.name
        left = self._stream_view(select.source)
        views: Dict[str, _StreamView] = {left_alias: left}

        if select.source.window is not None:
            self._check_window(select.source.window)

        # SELECT derive items extend the left stream's view before the
        # join and the window, mirroring the lowering's stage order.
        for item in select.items:
            if isinstance(item, DeriveItem):
                self._walk_expr(item.expr, views)
                left.add_derived(item.name, item.uncertain)

        if select.join is not None:
            right_alias = select.join.right.alias or select.join.right.name
            right = self._stream_view(select.join.right)
            views[right_alias] = right
            if select.join.right.window is not None:
                self._check_window(select.join.right.window)
            self._check_join(select.join, left_alias, right_alias, views)

        for conjunct in select.where:
            self._check_conjunct(conjunct, views)

        group_exprs: List[Expr] = []
        if select.group_by is not None:
            group_exprs = (
                [select.group_by]
                if isinstance(select.group_by, Expr)
                else list(select.group_by)
            )
        for expr in group_exprs:
            self._walk_expr(expr, views)

        aggregate: Optional[AggregateItem] = None
        for item in select.items:
            if isinstance(item, AggregateItem):
                if aggregate is None:
                    aggregate = item
                self._check_aggregate_argument(item.call, views)
            elif isinstance(item, ColumnItem):
                self._check_ident(
                    Ident(item.line, item.column, item.name, item.qualifier), views
                )

        if select.having is not None:
            self._check_having(select.having, aggregate, views)

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def _check_window(self, clause: WindowClause) -> None:
        if clause.kind == "rows":
            if clause.length < 1 or clause.length != int(clause.length):
                self.error(
                    "window-sanity",
                    "[ROWS n] needs a positive whole number of rows, "
                    f"got {clause.length!r}",
                    clause.line,
                    clause.column,
                )
            return
        if clause.kind != "range":
            return
        if clause.length <= 0:
            self.error(
                "window-sanity",
                f"[RANGE n] needs a positive window length, got {clause.length!r}",
                clause.line,
                clause.column,
            )
            return
        if clause.slide is None:
            return
        if clause.slide > clause.length:
            self.error(
                "window-sanity",
                f"SLIDE {clause.slide!r} exceeds RANGE {clause.length!r}: tuples "
                "arriving between window hops would be silently dropped",
                clause.line,
                clause.column,
            )
        elif clause.slide <= 0:
            self.error(
                "window-sanity",
                f"SLIDE needs a positive length, got {clause.slide!r}",
                clause.line,
                clause.column,
            )
        elif clause.slide != clause.length:
            self.error(
                "window-sanity",
                "only tumbling slides are supported: SLIDE must equal RANGE",
                clause.line,
                clause.column,
            )

    # ------------------------------------------------------------------
    # Identifier / expression checks
    # ------------------------------------------------------------------
    def _resolve_view(self, ident: Ident, views: Mapping[str, _StreamView]):
        """(view, attr) for an identifier, reporting unknown aliases."""
        if ident.qualifier is not None:
            view = views.get(ident.qualifier)
            if view is None:
                known = ", ".join(sorted(views)) or "none"
                self.error(
                    "unknown-alias",
                    f"unknown stream alias {ident.qualifier!r} (in scope: {known})"
                    f"{_suggestion_suffix(ident.qualifier, list(views))}",
                    ident.line,
                    ident.column,
                    ident.qualifier,
                )
                return None, ident.name
            return view, ident.name
        if len(views) == 1:
            return next(iter(views.values())), ident.name
        # Unqualified after a join: check against both sides; flag only
        # when every closed side lacks the name.
        for view in views.values():
            if not view.closed or view.has(ident.name):
                return None, ident.name
        candidates = sorted({n for v in views.values() for n in v.known})
        self.error(
            "unknown-column",
            f"unknown attribute {ident.name!r} (known: {', '.join(candidates)})"
            f"{_suggestion_suffix(ident.name, candidates)}",
            ident.line,
            ident.column,
            ident.name,
        )
        return None, ident.name

    def _check_ident(self, ident: Ident, views: Mapping[str, _StreamView]) -> None:
        view, name = self._resolve_view(ident, views)
        if view is None or not view.closed or view.has(name):
            return
        self.error(
            "unknown-column",
            f"unknown attribute {name!r} (known: {', '.join(view.known)})"
            f"{_suggestion_suffix(name, view.known)}",
            ident.line,
            ident.column,
            name,
        )

    def _is_uncertain(self, ident: Ident, views: Mapping[str, _StreamView]) -> bool:
        if ident.qualifier is not None:
            view = views.get(ident.qualifier)
            return view is not None and view.is_uncertain(ident.name)
        return any(view.is_uncertain(ident.name) for view in views.values())

    def _is_deterministic(self, ident: Ident, views: Mapping[str, _StreamView]) -> bool:
        if ident.qualifier is not None:
            view = views.get(ident.qualifier)
            return view is not None and view.is_deterministic(ident.name)
        return any(view.is_deterministic(ident.name) for view in views.values()) and not \
            self._is_uncertain(ident, views)

    def _walk_expr(self, expr: Expr, views: Mapping[str, _StreamView]) -> None:
        if isinstance(expr, Ident):
            self._check_ident(expr, views)
        elif isinstance(expr, Unary):
            self._walk_expr(expr.operand, views)
        elif isinstance(expr, BinOp):
            if expr.op in ("=", "!="):
                self._check_equality(expr, views)
            self._walk_expr(expr.left, views)
            self._walk_expr(expr.right, views)
        elif isinstance(expr, Call):
            if expr.name not in self.functions:
                self.error(
                    "unknown-function",
                    f"unknown function {expr.name!r}; register it via the "
                    f"functions mapping"
                    f"{_suggestion_suffix(expr.name, list(self.functions))}",
                    expr.line,
                    expr.column,
                    expr.name,
                )
            for arg in expr.args:
                self._walk_expr(arg, views)

    def _check_equality(self, expr: BinOp, views: Mapping[str, _StreamView]) -> None:
        for side in (expr.left, expr.right):
            if isinstance(side, Ident) and self._is_uncertain(side, views):
                name = side.canonical()
                self.error(
                    "uncertain-equality",
                    f"deterministic {expr.op!r} on uncertain attribute {name!r} "
                    "matches with probability zero; use BETWEEN, a '~=' band "
                    "match, or WITH PROBABILITY on a range comparison",
                    expr.line,
                    expr.column,
                    expr.op,
                )
                return

    # ------------------------------------------------------------------
    # WHERE conjuncts
    # ------------------------------------------------------------------
    def _comparison_attribute(self, expr: Expr) -> Optional[Ident]:
        """The attribute of a constant comparison / BETWEEN, if it is one."""
        if not isinstance(expr, BinOp):
            return None
        if expr.op == "BETWEEN":
            return expr.left if isinstance(expr.left, Ident) else None
        if expr.op not in (">", "<", ">=", "<=", "=", "!="):
            return None
        left, right = expr.left, expr.right
        if isinstance(left, Ident) and _is_constant(right):
            return left
        if isinstance(right, Ident) and _is_constant(left):
            return right
        return None

    def _check_conjunct(
        self, conjunct: Conjunct, views: Mapping[str, _StreamView]
    ) -> None:
        self._walk_expr(conjunct.expr, views)
        if conjunct.probability is None:
            return
        expr = conjunct.expr
        if not 0.0 <= conjunct.probability <= 1.0:
            self.error(
                "probability-misuse",
                f"WITH PROBABILITY needs a value in [0, 1], "
                f"got {conjunct.probability!r}",
                expr.line,
                expr.column,
            )
        attribute = self._comparison_attribute(expr)
        if attribute is None:
            self.error(
                "probability-misuse",
                "WITH PROBABILITY applies to constant comparisons on uncertain "
                "attributes",
                expr.line,
                expr.column,
            )
            return
        if self._is_deterministic(attribute, views):
            self.warning(
                "probability-on-deterministic",
                f"WITH PROBABILITY on deterministic attribute "
                f"{attribute.canonical()!r}: the comparison is exact and the "
                "qualifier has no effect",
                attribute.line,
                attribute.column,
                attribute.name,
            )

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _check_join(self, join, left_alias, right_alias, views) -> None:
        if join.min_probability is not None and not 0.0 <= join.min_probability <= 1.0:
            self.error(
                "probability-misuse",
                f"MIN PROBABILITY needs a value in [0, 1], "
                f"got {join.min_probability!r}",
                join.line,
                join.column,
            )
        for term in join.terms:
            if isinstance(term, FuncMatchTerm):
                if term.name not in self.functions:
                    self.error(
                        "unknown-function",
                        f"unknown match function {term.name!r}; register it via "
                        f"the functions mapping"
                        f"{_suggestion_suffix(term.name, list(self.functions))}",
                        term.line,
                        term.column,
                        term.name,
                    )
                continue
            self._check_band_term(term, left_alias, right_alias, views)

    def _check_band_term(
        self, term: BandMatchTerm, left_alias, right_alias, views
    ) -> None:
        if term.width <= 0:
            self.error(
                "band-match-width",
                f"a '~=' band match needs a positive WITHIN width, "
                f"got {term.width!r}",
                term.line,
                term.column,
            )
        sides: Set[str] = set()
        for ident in (term.left, term.right):
            if ident.qualifier not in (left_alias, right_alias):
                self.error(
                    "band-match-operands",
                    f"join match terms need both sides qualified with "
                    f"{left_alias!r} or {right_alias!r}",
                    ident.line,
                    ident.column,
                    ident.canonical(),
                )
                continue
            if ident.qualifier in sides:
                self.error(
                    "band-match-operands",
                    "a band match term needs one attribute from each side",
                    ident.line,
                    ident.column,
                    ident.canonical(),
                )
            sides.add(ident.qualifier)
            self._check_ident(ident, views)
            view = views.get(ident.qualifier)
            if view is not None and view.is_deterministic(ident.name):
                self.warning(
                    "band-match-deterministic",
                    f"band match operand {ident.canonical()!r} is declared "
                    "deterministic; '~=' compares distributions",
                    ident.line,
                    ident.column,
                    ident.canonical(),
                )

    # ------------------------------------------------------------------
    # Aggregates / HAVING
    # ------------------------------------------------------------------
    def _check_aggregate_argument(
        self, call: AggregateCall, views: Mapping[str, _StreamView]
    ) -> None:
        if call.argument == "*":
            return
        parts = call.argument.split(".")
        ident = (
            Ident(call.line, call.column, parts[1], parts[0])
            if len(parts) == 2
            else Ident(call.line, call.column, parts[0])
        )
        self._check_ident(ident, views)

    def _aggregate_is_deterministic(
        self, call: AggregateCall, views: Mapping[str, _StreamView]
    ) -> bool:
        if call.argument == "*" or call.function == "count":
            # COUNT can still be probabilistic under tuple existence
            # uncertainty, so it is never flagged.
            return False
        parts = call.argument.split(".")
        ident = (
            Ident(call.line, call.column, parts[1], parts[0])
            if len(parts) == 2
            else Ident(call.line, call.column, parts[0])
        )
        return self._is_deterministic(ident, views)

    def _check_having(self, having, aggregate, views) -> None:
        if aggregate is None:
            self.error(
                "having-mismatch",
                "HAVING needs a matching aggregate in SELECT",
                having.line,
                having.column,
            )
            return
        call = aggregate.call
        if (
            having.call.function != call.function
            or having.call.argument != call.argument
        ):
            self.error(
                "having-mismatch",
                f"HAVING aggregate {having.call.canonical()} does not match "
                f"the SELECT aggregate {call.canonical()}",
                having.call.line,
                having.call.column,
                having.call.canonical(),
            )
            return
        if having.min_probability is not None and not (
            0.0 <= having.min_probability <= 1.0
        ):
            self.error(
                "probability-misuse",
                f"HAVING WITH PROBABILITY must be within [0, 1], "
                f"got {having.min_probability!r}",
                having.call.line,
                having.call.column,
                having.call.canonical(),
            )
            return
        if having.min_probability is not None and self._aggregate_is_deterministic(
            call, views
        ):
            self.warning(
                "probability-on-deterministic",
                f"WITH PROBABILITY over deterministic aggregate "
                f"{call.canonical()}: the threshold test is exact and the "
                "qualifier has no effect",
                having.call.line,
                having.call.column,
                having.call.canonical(),
            )


def _is_constant(expr: Expr) -> bool:
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, Unary) and expr.op == "-":
        return _is_constant(expr.operand)
    if isinstance(expr, BinOp) and expr.op == "AND":  # BETWEEN bounds
        return _is_constant(expr.left) and _is_constant(expr.right)
    return False


def analyze_query(
    query: Union[str, Query],
    sources: Optional[Mapping[str, Union[Stream, SourceNode]]] = None,
    functions: Optional[Mapping[str, Callable]] = None,
) -> List[Diagnostic]:
    """Semantically analyze a CQL query against declared schemas.

    ``query`` is CQL text (parsed here; syntax errors raise
    :class:`~repro.cql.errors.CQLSyntaxError` exactly as ``parse``
    does) or an already-parsed :class:`~repro.cql.syntax.Query`.
    ``sources``/``functions`` mirror
    :func:`repro.cql.lowering.lower_query`.  Returns diagnostics in
    source order; an empty list means the query is clean.
    """
    ast = parse(query) if isinstance(query, str) else query
    return _Analyzer(sources or {}, functions or {}).analyze(ast)
