"""Structured diagnostics shared by every analyzer in :mod:`repro.analysis`.

A :class:`Diagnostic` is one finding: a rule id, a severity, a message
and a source span.  Query-level findings carry a 1-based line/column and
the offending token, rendered in exactly the style of the CQL front
end's :class:`~repro.cql.errors.CQLSyntaxError` goldens (``"<domain>
<severity> at line L, column C: message (near 'tok')"``) so service
logs show one uniform error surface.  Code-level findings (the contract
and concurrency linters) carry a file path instead and render as
``"<domain> <severity> [rule] at file:line: message"``.

The rendered strings are stable and covered by golden tests — update
them deliberately, not accidentally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cql.errors import CQLError

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisError",
    "errors",
    "warnings",
    "render_all",
]


class Severity(enum.Enum):
    """How bad a finding is: errors gate, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding with a source span.

    ``rule`` is a stable kebab-case identifier (``unknown-column``,
    ``batch-honesty``, ...), ``domain`` names the analyzer family that
    produced it (``"CQL semantic"``, ``"contract"``, ``"concurrency"``).
    Query diagnostics set ``line``/``column``/``token``; code
    diagnostics set ``file`` (and ``line``).
    """

    rule: str
    severity: Severity
    message: str
    line: int = 0
    column: int = 0
    token: Optional[str] = None
    file: Optional[str] = None
    domain: str = "CQL semantic"

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        """The stable human-readable form (see module docs)."""
        label = f"{self.domain} {self.severity.value}"
        if self.file is not None:
            return f"{label} [{self.rule}] at {self.file}:{self.line}: {self.message}"
        where = f"line {self.line}, column {self.column}"
        if self.token is not None:
            return f"{label} at {where}: {self.message} (near {self.token!r})"
        return f"{label} at {where}: {self.message}"

    def __str__(self) -> str:
        return self.render()


def errors(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """The error-severity subset, in order."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def warnings(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """The warning-severity subset, in order."""
    return [d for d in diagnostics if d.severity is Severity.WARNING]


def render_all(diagnostics: Sequence[Diagnostic]) -> List[str]:
    """Render every diagnostic to its stable string form."""
    return [d.render() for d in diagnostics]


class AnalysisError(CQLError):
    """A strict registration (or CLI gate) refused on error diagnostics.

    Carries the full diagnostic list; ``str()`` shows the first error
    plus a count, so one glance at a service log names the exact broken
    span while ``.diagnostics`` keeps everything for the caller.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        errs = errors(self.diagnostics)
        if not errs:
            raise ValueError("AnalysisError needs at least one error diagnostic")
        first = errs[0]
        extra = len(errs) - 1
        message = first.render()
        if extra:
            message += f" (+{extra} more error{'s' if extra > 1 else ''})"
        super().__init__(message)
        # Mirror the positioned-error attributes so handlers written for
        # CQLSyntaxError/CQLSemanticError can read a span off this too.
        self.line = first.line
        self.column = first.column
        self.token = first.token
