"""repro: uncertainty-aware high-volume stream processing.

A from-scratch Python reproduction of "Capturing Data Uncertainty in
High-Volume Stream Processing" (Diao et al., CIDR 2009).  The package
is organised as:

* :mod:`repro.distributions` -- continuous random-variable substrate
  (parametric families, particles, characteristic functions, KL
  compression, metrics).
* :mod:`repro.streams` -- box-arrow stream engine (tuples, windows,
  operators, lineage).
* :mod:`repro.core` -- the paper's contribution: T operators and
  uncertainty-aware relational operators.
* :mod:`repro.plan` -- the declarative query layer: a DAG-capable
  builder producing a logical plan IR that a cost-aware planner
  rewrites and lowers onto the stream engine.
* :mod:`repro.cql` -- the textual front end: a CQL-style dialect
  (the paper's Q1/Q2 parse directly) lowered into the same IR.
* :mod:`repro.service` -- the continuous-query service:
  :class:`QuerySession` hosts many registered queries in one engine
  with cross-query subplan sharing.
* :mod:`repro.runtime` -- the sharded parallel runtime:
  :class:`ShardedEngine` partitions tuples across worker processes and
  recombines shard outputs with uncertainty-aware merge operators.
* :mod:`repro.net` -- the network service layer: an asyncio TCP server
  exposing the query session (ingest, CQL registration, result
  subscriptions), wire-protocol clients, and a socket shard transport
  for multi-machine sharding.
* :mod:`repro.obs` -- unified observability: the process-local metrics
  registry every layer reports into, ingest-to-delivery trace
  propagation, and the METRICS / Prometheus / CLI exposition surfaces.
* :mod:`repro.inference` -- particle filtering with the paper's
  optimisations, adaptive particle control, Kalman baseline.
* :mod:`repro.rfid` / :mod:`repro.radar` -- the two motivating
  applications, including their synthetic data substrates.
* :mod:`repro.workloads` -- workload generators for the experiments.
"""

from . import (
    core,
    cql,
    distributions,
    inference,
    net,
    obs,
    plan,
    radar,
    rfid,
    runtime,
    service,
    streams,
    workloads,
)
from .cql import compile_cql
from .runtime import ShardedEngine
from .service import QuerySession

__version__ = "0.1.0"

__all__ = [
    "core",
    "cql",
    "distributions",
    "inference",
    "net",
    "obs",
    "plan",
    "radar",
    "rfid",
    "runtime",
    "service",
    "streams",
    "workloads",
    "QuerySession",
    "ShardedEngine",
    "compile_cql",
    "__version__",
]
